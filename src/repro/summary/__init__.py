"""Interprocedural side-effect summaries (MOD/REF)."""

from repro.summary.modref import ModRefInfo, annotate_call_effects, compute_modref

__all__ = ["ModRefInfo", "annotate_call_effects", "compute_modref"]
