"""Flow-insensitive interprocedural MOD/REF side-effect analysis.

For every procedure ``p`` this computes

- ``MOD(p)``: the variables (in ``p``'s own scope: formals, locals,
  globals) that an invocation of ``p`` *may* modify, and
- ``REF(p)``: the variables it may reference,

by iterating direct effects plus call-site binding (a Cooper–Kennedy
style fixpoint over the call graph; recursion converges because the sets
only grow).

The study found MOD information decisive: "incorporating MOD information
significantly increases the number of constants that can be detected"
(§4.2, Table 3). The :func:`annotate_call_effects` pass is where that
switch lives — it stamps every Call instruction with the set of caller
variables it may define, either filtered by MOD or, when ``modref`` is
None, under the worst-case assumption that every call clobbers every
global and every bindable actual.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.callgraph.callgraph import CallGraph
from repro.ir.instructions import Call, Def, Return, Use
from repro.ir.module import Procedure, Program
from repro.ir.symbols import Variable


class ModRefInfo:
    """MOD and REF sets for every procedure, keyed by procedure name."""

    def __init__(self):
        self.mod: Dict[str, Set[Variable]] = {}
        self.ref: Dict[str, Set[Variable]] = {}

    def may_modify(self, procedure_name: str, var: Variable) -> bool:
        return var in self.mod.get(procedure_name, ())

    def may_reference(self, procedure_name: str, var: Variable) -> bool:
        return var in self.ref.get(procedure_name, ())

    def modified_globals(self, procedure_name: str) -> List[Variable]:
        # MOD sets hash by identity, so raw iteration order varies from
        # run to run. Everything downstream of this order is persisted
        # (phi placement via may_define, return-function targets, cache
        # keys over printed IR), so return a deterministically sorted
        # list instead of the set.
        return sorted(
            (v for v in self.mod.get(procedure_name, ()) if v.is_global),
            key=lambda v: (v.common_block or "", v.name),
        )

    def modified_formals(self, procedure: Procedure) -> List[Variable]:
        mod = self.mod.get(procedure.name, set())
        return [v for v in procedure.formals if v in mod]


def compute_modref(program: Program, callgraph: CallGraph) -> ModRefInfo:
    """Compute MOD/REF to a fixpoint over the call graph."""
    info = ModRefInfo()
    for procedure in program:
        direct_mod, direct_ref = _direct_effects(procedure)
        info.mod[procedure.name] = direct_mod
        info.ref[procedure.name] = direct_ref

    changed = True
    while changed:
        changed = False
        # Visiting callers of recently-changed callees would be slightly
        # faster; a simple sweep is clear and the graphs are small.
        for procedure in callgraph.bottom_up_order():
            mod = info.mod[procedure.name]
            ref = info.ref[procedure.name]
            for site in callgraph.sites_from(procedure):
                callee_mod = info.mod[site.callee.name]
                callee_ref = info.ref[site.callee.name]
                for bound_set, own_set in ((callee_mod, mod), (callee_ref, ref)):
                    for var in _bind_to_caller(site.call, site.callee, bound_set):
                        if var not in own_set:
                            own_set.add(var)
                            changed = True
    return info


def _direct_effects(procedure: Procedure):
    """Variables directly assigned / referenced by the procedure body
    (ignoring call effects, which the fixpoint adds)."""
    mod: Set[Variable] = set()
    ref: Set[Variable] = set()
    for instruction in procedure.cfg.instructions():
        if isinstance(instruction, Call):
            # Only the explicit actuals are direct effects; callee
            # effects flow in through binding during the fixpoint.
            for use in instruction.uses():
                ref.add(use.var)
            for arg in instruction.args:
                if arg.is_array:
                    ref.add(arg.array)
            if instruction.result is not None:
                mod.add(instruction.result.var)
            continue
        for definition in instruction.defs():
            mod.add(definition.var)
        for use in instruction.uses():
            ref.add(use.var)
        array = getattr(instruction, "array", None)
        if array is not None:
            # ArrayStore modifies, ArrayLoad references.
            if instruction.defs():
                ref.add(array)
            else:
                mod.add(array)
    return mod, ref


def _bind_to_caller(call: Call, callee: Procedure, callee_vars: Set[Variable]):
    """Translate a set of callee-scope variables into caller scope at one
    call site: globals map to themselves, formals map through the actual
    arguments (when the actual is a modifiable variable), and callee
    locals vanish."""
    result: Set[Variable] = set()
    for var in callee_vars:
        if var.is_global:
            result.add(var)
    for formal, arg in zip(callee.formals, call.args):
        if formal in callee_vars:
            if arg.is_array:
                result.add(arg.array)
            else:
                bound = arg.bindable_var
                if bound is not None:
                    result.add(bound)
    return result


def annotate_call_effects(
    program: Program,
    callgraph: CallGraph,
    modref: Optional[ModRefInfo] = None,
) -> None:
    """Stamp every Call with its may-define set and entry uses.

    - ``may_define``: Defs for each scalar the call may write — with MOD
      information, the callee's modified globals plus bindable actuals
      whose formal is in MOD(callee); without it, *every* scalar global
      and every bindable actual (the paper's worst-case assumption);
    - ``entry_uses``: one Use per scalar global in the program, recording
      the global's value flowing into the callee (globals are passed
      implicitly at every call site).

    Every Return instruction additionally receives ``exit_uses`` — one
    Use per scalar formal and global — from which return jump functions
    read the values flowing back to callers.

    Must run before SSA construction; idempotent per Call (re-annotation
    replaces earlier slots, which is only safe pre-SSA).
    """
    scalar_globals = program.scalar_globals()
    for procedure in program:
        observable = [f for f in procedure.formals if f.is_scalar]
        observable.extend(scalar_globals)
        for instruction in procedure.cfg.instructions():
            if isinstance(instruction, Return):
                instruction.exit_uses = [Use(v) for v in observable]
        for call in procedure.call_sites():
            callee = program.procedure(call.callee)
            defined: Dict[Variable, Def] = {}
            if modref is None:
                for g in scalar_globals:
                    defined[g] = Def(g)
                for arg in call.args:
                    bound = arg.bindable_var
                    if bound is not None and bound.is_scalar:
                        defined.setdefault(bound, Def(bound))
            else:
                for g in modref.modified_globals(callee.name):
                    if g.is_scalar:
                        defined[g] = Def(g)
                callee_mod = modref.mod.get(callee.name, set())
                for formal, arg in zip(callee.formals, call.args):
                    if formal.is_scalar and formal in callee_mod:
                        bound = arg.bindable_var
                        if bound is not None and bound.is_scalar:
                            defined.setdefault(bound, Def(bound))
            call.may_define = list(defined.values())
            call.entry_uses = [Use(g) for g in scalar_globals]
