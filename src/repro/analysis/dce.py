"""Dead-code elimination over SSA procedures.

Used by *complete propagation* (Table 3): after interprocedural constants
have been substituted, branches with constant conditions are folded,
never-executed blocks removed, and pure definitions with no remaining
uses deleted. Removing dead branches "can potentially eliminate
conflicting definitions of variables and expose additional constants"
(§4.2), which is why the complete-propagation driver re-runs the whole
propagation afterwards.

All transformations preserve SSA form (versions are untouched; phis are
pruned edge-wise and collapse to copies when a single input remains), so
the propagation pipeline can re-run without reconstructing SSA.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.sccp import SCCPResult
from repro.ir.cfg import BasicBlock, ControlFlowGraph
from repro.ir.instructions import (
    ArrayLoad,
    Assign,
    BinOp,
    CondBranch,
    Instruction,
    Jump,
    Phi,
    UnOp,
    Use,
)
from repro.ir.module import Procedure
from repro.ir.symbols import Variable

#: Instruction classes with no side effects: removable when unused.
_PURE = (Assign, BinOp, UnOp, ArrayLoad, Phi)


@dataclass
class DCEStats:
    """What one :func:`eliminate_dead_code` call removed."""

    folded_branches: int = 0
    removed_blocks: int = 0
    removed_instructions: int = 0

    @property
    def changed(self) -> bool:
        return bool(
            self.folded_branches or self.removed_blocks or self.removed_instructions
        )


def eliminate_dead_code(
    procedure: Procedure,
    sccp: Optional[SCCPResult] = None,
    remove_dead_definitions: bool = True,
) -> DCEStats:
    """Fold constant branches (when ``sccp`` results are given), drop
    unreachable blocks, simplify phis, and — unless disabled — delete
    unused pure definitions. Returns statistics; mutates the procedure
    in place.

    Complete propagation passes ``remove_dead_definitions=False``: its
    purpose is removing *unreachable* code (which deletes conflicting
    definitions and call sites), and deleting merely-unused assignments
    would erase the very references the substitution metric counts.
    """
    stats = DCEStats()
    if sccp is not None:
        stats.folded_branches = _fold_constant_branches(procedure, sccp)
    stats.removed_blocks = _remove_unreachable(procedure)
    _simplify_phis(procedure)
    if remove_dead_definitions:
        stats.removed_instructions = _remove_dead_definitions(procedure)
    return stats


def _fold_constant_branches(procedure: Procedure, sccp: SCCPResult) -> int:
    folded = 0
    for block in procedure.cfg.blocks:
        terminator = block.terminator
        if not isinstance(terminator, CondBranch):
            continue
        value = sccp.operand_value(terminator.cond)
        if not value.is_constant:
            continue
        taken = terminator.if_true if value.value != 0 else terminator.if_false
        removed_target = (
            terminator.if_false if value.value != 0 else terminator.if_true
        )
        block.instructions[-1] = Jump(taken, terminator.location)
        folded += 1
        if removed_target is not taken:
            _remove_phi_edge(removed_target, block)
    return folded


def _remove_phi_edge(block: BasicBlock, pred: BasicBlock) -> None:
    for phi in block.phis():
        phi.incoming.pop(pred, None)


def _remove_unreachable(procedure: Procedure) -> int:
    return len(procedure.cfg.remove_unreachable())


def _simplify_phis(procedure: Procedure) -> None:
    """Phis left with exactly one incoming value become copies.

    Converted copies are placed after the remaining phis so the phi
    region stays contiguous at the block head.
    """
    for block in procedure.cfg.blocks:
        phis = block.phis()
        if not phis:
            continue
        kept_phis: List[Instruction] = []
        copies: List[Instruction] = []
        for phi in phis:
            if len(phi.incoming) == 1:
                (operand,) = phi.incoming.values()
                copies.append(Assign(phi.target, operand, phi.location))
            else:
                kept_phis.append(phi)
        if copies:
            rest = block.instructions[len(phis):]
            block.instructions = kept_phis + copies + rest


def _remove_dead_definitions(procedure: Procedure) -> int:
    """Iteratively delete pure instructions none of whose defined SSA
    names are used anywhere (including by phis)."""
    removed_total = 0
    while True:
        use_counts: Dict[Tuple[Variable, Optional[int]], int] = defaultdict(int)
        for instruction in procedure.cfg.instructions():
            for use in instruction.uses():
                use_counts[(use.var, use.version)] += 1
        removed_this_round = 0
        for block in procedure.cfg.blocks:
            kept: List[Instruction] = []
            for instruction in block.instructions:
                if isinstance(instruction, _PURE):
                    defs = instruction.defs()
                    if defs and all(
                        use_counts[(d.var, d.version)] == 0 for d in defs
                    ):
                        removed_this_round += 1
                        continue
                kept.append(instruction)
            block.instructions = kept
        removed_total += removed_this_round
        if removed_this_round == 0:
            return removed_total
