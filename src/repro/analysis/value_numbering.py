"""SSA-based global value numbering producing symbolic expressions.

For every SSA name in a procedure this pass computes a context-
independent :class:`~repro.analysis.expr.Expr` giving its value in terms
of the procedure's *entry values* (formals and globals) and opaque
unknowns. All four forward jump functions, the return jump functions,
and ``gcp(y, s)`` (the paper's intraprocedural constant oracle, §3.1) are
read off these expressions.

Call instructions are interpreted through a :class:`CallSemantics`
object: the IPCP layer supplies one backed by return jump functions; the
default treats every call effect as unknown (the worst-case assumption
the paper describes for the no-MOD configuration's inner analysis).

The pass is a single forward walk in reverse postorder. Phi nodes merge
pessimistically: a phi whose incoming expressions are all available and
structurally equal takes that expression (this is how value numbering
proves that both arms of a branch compute the same value); anything else
— including loop-carried inputs not yet computed — becomes an unknown
tagged by the phi's SSA name, so copies of it still compare equal.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.analysis.expr import (
    ConstExpr,
    EntryExpr,
    Expr,
    UnknownExpr,
    make_binop,
    make_unop,
)
from repro.ir.cfg import BasicBlock
from repro.ir.instructions import (
    ArrayLoad,
    Assign,
    BinOp,
    Call,
    Const,
    Operand,
    Phi,
    Read,
    UnOp,
    Use,
)
from repro.ir.module import Procedure
from repro.ir.symbols import Variable, VarKind

SSAName = Tuple[Variable, int]


class CallSemantics:
    """How value numbering interprets the effects of a call.

    The default implementation knows nothing: every value a call may
    write, and every function result, is unknown. The IPCP layer
    overrides both hooks with return-jump-function evaluation.
    """

    def modified_value(
        self, call: Call, var: Variable, numbering: "ValueNumbering"
    ) -> Optional[Expr]:
        """Value of caller variable ``var`` after ``call`` (``var`` is in
        ``call.may_define``); None means unknown."""
        return None

    def result_value(self, call: Call, numbering: "ValueNumbering") -> Optional[Expr]:
        """Value returned by a function call; None means unknown."""
        return None


class ValueNumbering:
    """Expressions for every SSA name of one procedure."""

    def __init__(self, procedure: Procedure, call_semantics: Optional[CallSemantics] = None):
        self.procedure = procedure
        self.call_semantics = call_semantics or CallSemantics()
        self._table: Dict[SSAName, Expr] = {}
        self._run()

    # -- public queries ------------------------------------------------------

    def ssa_expr(self, var: Variable, version: Optional[int]) -> Expr:
        """The expression for SSA name ``(var, version)``."""
        if version is None or version == 0:
            return self._entry_expr(var)
        existing = self._table.get((var, version))
        if existing is not None:
            return existing
        # Not yet computed (a loop-carried reference): opaque but stable.
        return UnknownExpr(("ssa", var.uid, version))

    def operand_expr(self, operand: Operand) -> Expr:
        """The expression for an instruction operand."""
        if isinstance(operand, Const):
            return ConstExpr(operand.value)
        return self.ssa_expr(operand.var, operand.version)

    def constant_of(self, operand: Operand) -> Optional[int]:
        """The integer value of ``operand`` when value numbering proves it
        constant — the paper's ``gcp`` oracle for one operand."""
        expr = self.operand_expr(operand)
        if isinstance(expr, ConstExpr):
            return expr.value
        return None

    # -- construction -------------------------------------------------------------

    def _entry_expr(self, var: Variable) -> Expr:
        if var.kind in (VarKind.FORMAL, VarKind.GLOBAL):
            return EntryExpr(var)
        # Locals (and the function result) are undefined on entry.
        return UnknownExpr(("undef", var.uid))

    def _run(self) -> None:
        for block in self.procedure.cfg.reverse_postorder():
            for phi in block.phis():
                self._visit_phi(phi)
            for instruction in block.non_phi_instructions():
                self._visit(instruction)

    def _set(self, var: Variable, version: int, expr: Expr) -> None:
        self._table[(var, version)] = expr

    def _opaque(self, var: Variable, version: int) -> Expr:
        return UnknownExpr(("ssa", var.uid, version))

    def _visit_phi(self, phi: Phi) -> None:
        target = phi.target
        exprs = []
        available = True
        for operand in phi.incoming.values():
            if isinstance(operand, Const):
                exprs.append(ConstExpr(operand.value))
                continue
            name = (operand.var, operand.version)
            if operand.version in (None, 0):
                exprs.append(self._entry_expr(operand.var))
            elif name in self._table:
                exprs.append(self._table[name])
            else:
                available = False
                break
        if available and exprs and all(e == exprs[0] for e in exprs):
            self._set(target.var, target.version, exprs[0])
        else:
            self._set(target.var, target.version, self._opaque(target.var, target.version))

    def _visit(self, instruction) -> None:
        if isinstance(instruction, Assign):
            target = instruction.target
            self._set(target.var, target.version, self.operand_expr(instruction.source))
        elif isinstance(instruction, BinOp):
            target = instruction.target
            expr = make_binop(
                instruction.op,
                self.operand_expr(instruction.left),
                self.operand_expr(instruction.right),
            )
            self._set(target.var, target.version, expr)
        elif isinstance(instruction, UnOp):
            target = instruction.target
            expr = make_unop(instruction.op, self.operand_expr(instruction.operand))
            self._set(target.var, target.version, expr)
        elif isinstance(instruction, ArrayLoad):
            target = instruction.target
            # Array contents are never tracked (paper §4, limitation 2).
            self._set(target.var, target.version, self._opaque(target.var, target.version))
        elif isinstance(instruction, Read):
            for target in instruction.targets:
                self._set(target.var, target.version, self._opaque(target.var, target.version))
        elif isinstance(instruction, Call):
            self._visit_call(instruction)
        # Stores, prints, and terminators define nothing.

    def _visit_call(self, call: Call) -> None:
        for definition in call.may_define:
            expr = self.call_semantics.modified_value(call, definition.var, self)
            if expr is None:
                expr = self._opaque(definition.var, definition.version)
            self._set(definition.var, definition.version, expr)
        if call.result is not None:
            expr = self.call_semantics.result_value(call, self)
            if expr is None:
                expr = self._opaque(call.result.var, call.result.version)
            self._set(call.result.var, call.result.version, expr)


def number_values(
    procedure: Procedure, call_semantics: Optional[CallSemantics] = None
) -> ValueNumbering:
    """Convenience constructor matching the other analysis entry points."""
    return ValueNumbering(procedure, call_semantics)
