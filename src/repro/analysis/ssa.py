"""SSA construction over the versioned-variable IR.

Phi placement follows Cytron et al. (iterated dominance frontiers);
renaming is the classic dominator-tree walk with version stacks, done
iteratively to stay safe on deep CFGs.

Version numbering convention:

- version ``0`` of any variable is its *entry value*: the value a formal
  or global has on entry to the procedure, or "undefined" for a local
  used before being assigned;
- every definition site (including phis and call ``may_define`` slots)
  receives a fresh version ≥ 1.

SSA names are ``(Variable, version)`` tuples; :func:`ssa_definitions`
maps each name to its unique defining instruction.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

from repro.ir.cfg import BasicBlock, ControlFlowGraph
from repro.ir.instructions import Def, Instruction, Phi, Use
from repro.ir.module import Procedure
from repro.ir.symbols import Variable
from repro.analysis.dominance import DominatorTree, compute_dominator_tree

SSAName = Tuple[Variable, int]


def construct_ssa(procedure: Procedure) -> DominatorTree:
    """Convert ``procedure`` to SSA form in place; returns the dominator
    tree computed along the way.

    Call instructions must already carry their side-effect annotations
    (``may_define`` / ``entry_uses``) — see
    :func:`repro.summary.modref.annotate_call_effects`.
    """
    cfg = procedure.cfg
    cfg.remove_unreachable()
    domtree = compute_dominator_tree(cfg)
    def_blocks = _collect_definition_sites(cfg)
    _place_phis(cfg, domtree, def_blocks)
    _rename(cfg, domtree)
    return domtree


def _collect_definition_sites(
    cfg: ControlFlowGraph,
) -> Dict[Variable, Set[BasicBlock]]:
    def_blocks: Dict[Variable, Set[BasicBlock]] = defaultdict(set)
    for block in cfg.blocks:
        for instruction in block.instructions:
            for definition in instruction.defs():
                def_blocks[definition.var].add(block)
    return def_blocks


def _place_phis(
    cfg: ControlFlowGraph,
    domtree: DominatorTree,
    def_blocks: Dict[Variable, Set[BasicBlock]],
) -> None:
    predecessors = cfg.predecessors()
    for variable, blocks in def_blocks.items():
        placed: Set[BasicBlock] = set()
        worklist: List[BasicBlock] = list(blocks)
        ever_queued: Set[BasicBlock] = set(worklist)
        while worklist:
            block = worklist.pop()
            for frontier_block in domtree.frontier[block]:
                if frontier_block in placed:
                    continue
                # A join with a single predecessor cannot occur (frontier
                # membership requires >= 2 preds), so a phi is meaningful.
                if len(predecessors[frontier_block]) < 2:
                    continue
                frontier_block.insert_phi(Phi(Def(variable), {}))
                placed.add(frontier_block)
                if frontier_block not in ever_queued:
                    ever_queued.add(frontier_block)
                    worklist.append(frontier_block)


def _rename(cfg: ControlFlowGraph, domtree: DominatorTree) -> None:
    counters: Dict[Variable, int] = defaultdict(int)
    stacks: Dict[Variable, List[int]] = defaultdict(lambda: [0])

    def new_version(definition: Def) -> None:
        counters[definition.var] += 1
        version = counters[definition.var]
        definition.version = version
        stacks[definition.var].append(version)

    # Iterative dominator-tree preorder walk with explicit unwind markers.
    work: List[Tuple[str, BasicBlock]] = [("visit", cfg.entry)]
    pushed_per_block: Dict[BasicBlock, List[Variable]] = {}

    while work:
        action, block = work.pop()
        if action == "leave":
            for variable in pushed_per_block.pop(block, []):
                stacks[variable].pop()
            continue

        pushed: List[Variable] = []
        for phi in block.phis():
            new_version(phi.target)
            pushed.append(phi.target.var)
        for instruction in block.non_phi_instructions():
            for use in instruction.uses():
                use.version = stacks[use.var][-1]
            for definition in instruction.defs():
                new_version(definition)
                pushed.append(definition.var)
        for successor in block.successors():
            for phi in successor.phis():
                variable = phi.target.var
                incoming = Use(variable)
                incoming.version = stacks[variable][-1]
                phi.incoming[block] = incoming
        pushed_per_block[block] = pushed

        work.append(("leave", block))
        for child in reversed(domtree.children[block]):
            work.append(("visit", child))


def ssa_definitions(procedure: Procedure) -> Dict[SSAName, Instruction]:
    """Map each SSA name to its unique defining instruction.

    Entry values (version 0) have no defining instruction and do not
    appear in the map.
    """
    definitions: Dict[SSAName, Instruction] = {}
    for instruction in procedure.cfg.instructions():
        for definition in instruction.defs():
            definitions[(definition.var, definition.version)] = instruction
    return definitions


def verify_ssa(procedure: Procedure) -> List[str]:
    """Check SSA invariants; returns a list of violation descriptions
    (empty when the procedure is valid SSA). Used by tests and as a
    debugging aid after transformation passes."""
    problems: List[str] = []
    seen: Set[SSAName] = set()
    predecessors = procedure.cfg.predecessors()

    for block in procedure.cfg.blocks:
        for instruction in block.instructions:
            for definition in instruction.defs():
                if definition.version is None:
                    problems.append(f"unversioned def of {definition.var.name}")
                    continue
                name = (definition.var, definition.version)
                if name in seen:
                    problems.append(
                        f"multiple definitions of {definition.var.name}."
                        f"{definition.version}"
                    )
                seen.add(name)
            for use in instruction.uses():
                if use.version is None:
                    problems.append(f"unversioned use of {use.var.name}")
        for phi in block.phis():
            preds = set(predecessors[block])
            inputs = set(phi.incoming)
            if inputs != preds:
                problems.append(
                    f"phi for {phi.target.var.name} in {block.name} covers "
                    f"{sorted(b.name for b in inputs)} but predecessors are "
                    f"{sorted(b.name for b in preds)}"
                )
    for block in procedure.cfg.blocks:
        for instruction in block.instructions:
            for use in instruction.uses():
                if use.version and (use.var, use.version) not in seen:
                    problems.append(
                        f"use of undefined SSA name {use.var.name}.{use.version}"
                    )
    return problems
