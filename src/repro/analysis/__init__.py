"""Intraprocedural analyses: dominance, SSA form, value numbering,
sparse conditional constant propagation, and dead-code elimination.

These are the substrates the jump-function implementations are built on
(the study constructs all jump functions "on top of an existing framework
for global value numbering" over SSA, §3).
"""

from repro.analysis.dominance import DominatorTree, compute_dominator_tree
from repro.analysis.dce import eliminate_dead_code
from repro.analysis.sccp import LatticeCell, SCCPResult, run_sccp
from repro.analysis.loops import analyze_loops, find_natural_loops
from repro.analysis.ssa import construct_ssa, verify_ssa
from repro.analysis.ssa_out import destruct_program, destruct_ssa
from repro.analysis.value_numbering import ValueNumbering, number_values

__all__ = [
    "DominatorTree",
    "LatticeCell",
    "SCCPResult",
    "ValueNumbering",
    "compute_dominator_tree",
    "analyze_loops",
    "construct_ssa",
    "destruct_program",
    "destruct_ssa",
    "eliminate_dead_code",
    "find_natural_loops",
    "number_values",
    "run_sccp",
    "verify_ssa",
]
