"""SSA destruction: translate an SSA procedure back to executable form.

The versioned-variable SSA this repository uses makes destruction almost
trivial: every phi merges versions of *one* base variable, and renaming
guaranteed that each phi operand names exactly the version reaching
along its edge — so for ordinary operands the phi is a no-op at runtime
and can simply be deleted. Two cases need real work:

- a phi operand that is a **constant** (introduced by
  :func:`repro.ipcp.substitution.apply_substitution`): the value must be
  materialized with a copy on the incoming edge;
- inserting that copy on a **critical edge** (the predecessor branches
  to multiple successors) requires splitting the edge first, or the copy
  would leak onto the other path.

After destruction the procedure contains no phis and no version
annotations, and the reference interpreter can execute it — which is how
the test suite proves that branch folding and dead-code removal preserve
behaviour.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.ir.cfg import BasicBlock, ControlFlowGraph
from repro.ir.instructions import (
    Assign,
    CondBranch,
    Const,
    Def,
    Jump,
    Phi,
    Use,
)
from repro.ir.module import Procedure, Program


def destruct_ssa(procedure: Procedure) -> int:
    """Remove phis and version annotations in place; returns the number
    of edge copies that had to be materialized."""
    copies = 0
    cfg = procedure.cfg
    for block in list(cfg.blocks):
        phis = block.phis()
        if not phis:
            continue
        for phi in phis:
            copies += _lower_phi(cfg, block, phi)
        block.instructions = [
            i for i in block.instructions if not isinstance(i, Phi)
        ]
    _strip_versions(procedure)
    return copies


def _lower_phi(cfg: ControlFlowGraph, block: BasicBlock, phi: Phi) -> int:
    """Insert copies for phi inputs that are not the naturally reaching
    value (constants, or — defensively — uses of a different variable)."""
    copies = 0
    for pred, operand in list(phi.incoming.items()):
        natural = isinstance(operand, Use) and operand.var is phi.target.var
        if natural:
            continue
        edge_block = _edge_block(cfg, pred, block)
        copy = Assign(Def(phi.target.var), operand, phi.location)
        edge_block.instructions.insert(
            len(edge_block.instructions) - 1, copy
        )
        copies += 1
    return copies


def _edge_block(cfg: ControlFlowGraph, pred: BasicBlock,
                succ: BasicBlock) -> BasicBlock:
    """The block in which an edge copy may be placed: the predecessor
    itself when the edge is its only outgoing edge, otherwise a fresh
    block splitting the critical edge."""
    successors = pred.successors()
    if len(successors) <= 1:
        return pred
    split = cfg.new_block(f"{pred.name}.split")
    split.append(Jump(succ))
    terminator = pred.terminator
    assert isinstance(terminator, CondBranch)
    if terminator.if_true is succ:
        terminator.if_true = split
    if terminator.if_false is succ:
        terminator.if_false = split
    # Redirect any other phis in succ that referenced pred on this edge.
    for phi in succ.phis():
        if pred in phi.incoming:
            phi.incoming[split] = phi.incoming.pop(pred)
    return split


def _strip_versions(procedure: Procedure) -> None:
    for instruction in procedure.cfg.instructions():
        for use in instruction.uses():
            use.version = None
        for definition in instruction.defs():
            definition.version = None


def destruct_program(program: Program) -> int:
    """Destruct every procedure; returns total materialized copies."""
    return sum(destruct_ssa(procedure) for procedure in program)
