"""Dominator trees and dominance frontiers.

Implements the Cooper–Harvey–Kennedy "engineered" iterative algorithm for
immediate dominators and the Cytron et al. dominance-frontier computation
— the standard substrate for SSA construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.cfg import BasicBlock, ControlFlowGraph


class DominatorTree:
    """Immediate dominators, dominator-tree children, and dominance
    frontiers for the reachable portion of a CFG."""

    def __init__(
        self,
        entry: BasicBlock,
        idom: Dict[BasicBlock, Optional[BasicBlock]],
        children: Dict[BasicBlock, List[BasicBlock]],
        frontier: Dict[BasicBlock, Set[BasicBlock]],
        rpo: List[BasicBlock],
    ):
        self.entry = entry
        self.idom = idom
        self.children = children
        self.frontier = frontier
        self.reverse_postorder = rpo

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True iff ``a`` dominates ``b`` (reflexively)."""
        node: Optional[BasicBlock] = b
        while node is not None:
            if node is a:
                return True
            node = self.idom[node]
        return False

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)

    def preorder(self) -> List[BasicBlock]:
        """Dominator-tree preorder (used by SSA renaming)."""
        order: List[BasicBlock] = []
        stack = [self.entry]
        while stack:
            block = stack.pop()
            order.append(block)
            stack.extend(reversed(self.children[block]))
        return order


def compute_dominator_tree(cfg: ControlFlowGraph) -> DominatorTree:
    """Compute the dominator tree and dominance frontiers of ``cfg``.

    Unreachable blocks are ignored (they have no dominator facts).
    """
    rpo = cfg.reverse_postorder()
    order_index = {block: index for index, block in enumerate(rpo)}
    predecessors = cfg.predecessors()

    idom: Dict[BasicBlock, Optional[BasicBlock]] = {cfg.entry: cfg.entry}

    def intersect(a: BasicBlock, b: BasicBlock) -> BasicBlock:
        while a is not b:
            while order_index[a] > order_index[b]:
                a = idom[a]
            while order_index[b] > order_index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for block in rpo:
            if block is cfg.entry:
                continue
            candidates = [
                p for p in predecessors[block] if p in idom and p in order_index
            ]
            if not candidates:
                continue
            new_idom = candidates[0]
            for other in candidates[1:]:
                new_idom = intersect(new_idom, other)
            if idom.get(block) is not new_idom:
                idom[block] = new_idom
                changed = True

    idom[cfg.entry] = None
    children: Dict[BasicBlock, List[BasicBlock]] = {block: [] for block in rpo}
    for block in rpo:
        parent = idom.get(block)
        if parent is not None:
            children[parent].append(block)

    frontier: Dict[BasicBlock, Set[BasicBlock]] = {block: set() for block in rpo}
    for block in rpo:
        preds = [p for p in predecessors[block] if p in order_index]
        if len(preds) >= 2:
            for pred in preds:
                runner = pred
                while runner is not idom[block]:
                    frontier[runner].add(block)
                    runner = idom[runner]

    return DominatorTree(cfg.entry, idom, children, frontier, rpo)
