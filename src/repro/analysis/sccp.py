"""Sparse conditional constant propagation (Wegman–Zadeck) over SSA.

This is the engine behind three different paper roles:

1. the **intraprocedural propagation baseline** (Table 3, last column):
   run with every entry value ⊥;
2. the **final substitution pass**: run with entry values taken from the
   interprocedural ``CONSTANTS`` sets, then count how many source-level
   references were proven constant (the study's effectiveness metric);
3. the **dead-code detector** for complete propagation: blocks never
   marked executable under the discovered constants are removable.

Call effects are interpreted through an :class:`SCCPCallModel`; the IPCP
layer provides one that evaluates return jump functions over the lattice
(the "symbolic expression evaluator" of §4.1).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.ir.cfg import BasicBlock
from repro.ir.instructions import (
    ArrayLoad,
    Assign,
    BinOp,
    Call,
    CondBranch,
    Const,
    Instruction,
    Jump,
    Operand,
    Phi,
    Read,
    UnOp,
    Use,
)
from repro.ir.module import Procedure
from repro.ir.symbols import Variable, VarKind
from repro.lattice import BOTTOM, LatticeValue, TOP, const, meet_all
from repro.analysis.expr import fold_operator

SSAName = Tuple[Variable, int]

#: Alias kept for external readability: one lattice cell per SSA name.
LatticeCell = LatticeValue


class SCCPCallModel:
    """How SCCP interprets call effects; the default is fully pessimistic."""

    def modified_value(
        self,
        call: Call,
        var: Variable,
        operand_value: Callable[[Operand], LatticeValue],
    ) -> LatticeValue:
        """Lattice value of caller variable ``var`` after the call."""
        return BOTTOM

    def result_value(
        self, call: Call, operand_value: Callable[[Operand], LatticeValue]
    ) -> LatticeValue:
        """Lattice value of a function call's result."""
        return BOTTOM


class SCCPResult:
    """Outcome of one SCCP run."""

    def __init__(
        self,
        procedure: Procedure,
        values: Dict[SSAName, LatticeValue],
        executable_blocks: Set[BasicBlock],
        entry_values: Dict[Variable, LatticeValue],
    ):
        self.procedure = procedure
        self._values = values
        self.executable_blocks = executable_blocks
        self.entry_values = entry_values

    def value_of(self, var: Variable, version: Optional[int]) -> LatticeValue:
        """Lattice value of an SSA name."""
        if version is None or version == 0:
            return self.entry_values.get(var, BOTTOM)
        return self._values.get((var, version), TOP)

    def operand_value(self, operand: Operand) -> LatticeValue:
        if isinstance(operand, Const):
            return const(operand.value)
        return self.value_of(operand.var, operand.version)

    def constant_source_references(self) -> List[Use]:
        """Every source-level scalar reference proven constant, in
        executable code — what the substitution pass rewrites and the
        study counts ("the number of constants that this option
        substituted into each program", §4.1).

        An actual argument aliased to a formal the callee may *modify*
        is an address, not a value read: replacing it with a literal
        would sever the writeback, so such references are excluded (both
        from the count and from textual substitution).
        """
        found: List[Use] = []
        for block in self.procedure.cfg.blocks:
            if block not in self.executable_blocks:
                continue
            for instruction in block.instructions:
                if isinstance(instruction, Phi):
                    continue
                modified_actuals = modified_actual_uses(instruction)
                for use in instruction.uses():
                    if use in modified_actuals:
                        continue
                    if use.from_source and self.operand_value(use).is_constant:
                        found.append(use)
        return found

    def dead_blocks(self) -> List[BasicBlock]:
        """Reachable-in-CFG blocks that can never execute under the
        propagated constants."""
        return [
            b
            for b in self.procedure.cfg.blocks
            if b not in self.executable_blocks
        ]


def modified_actual_uses(instruction: Instruction) -> Set[Use]:
    """Uses of a Call that pass a variable the call may write back to."""
    if not isinstance(instruction, Call) or not instruction.may_define:
        return set()
    killed = {definition.var for definition in instruction.may_define}
    return {
        arg.value
        for arg in instruction.args
        if isinstance(arg.value, Use) and arg.value.var in killed
    }


def run_sccp(
    procedure: Procedure,
    entry_values: Optional[Dict[Variable, LatticeValue]] = None,
    call_model: Optional[SCCPCallModel] = None,
    max_visits: Optional[int] = None,
) -> SCCPResult:
    """Run sparse conditional constant propagation on one procedure.

    ``entry_values`` supplies lattice values for version-0 names of
    formals and globals (missing entries default to ⊥ — unknown on
    entry). Locals default to ⊥ as well: an undefined variable may hold
    anything.

    ``max_visits`` bounds instruction evaluations
    (``AnalysisBudget.sccp_visits``); past it the run raises
    :class:`~repro.config.BudgetExceeded` — a partial SCCP result is
    not a fixpoint and must be discarded, so callers fall back to a
    weaker oracle (or no result) for this procedure.
    """
    engine = _SCCPEngine(
        procedure, entry_values or {}, call_model or SCCPCallModel(), max_visits
    )
    engine.run()
    return SCCPResult(
        procedure, engine.values, engine.executable_blocks, engine.entry_values
    )


class _SCCPEngine:
    def __init__(
        self,
        procedure: Procedure,
        entry_values: Dict[Variable, LatticeValue],
        call_model: SCCPCallModel,
        max_visits: Optional[int] = None,
    ):
        self.procedure = procedure
        self.call_model = call_model
        self.max_visits = max_visits
        self.visits = 0
        self.entry_values = dict(entry_values)
        self.values: Dict[SSAName, LatticeValue] = {}
        self.executable_blocks: Set[BasicBlock] = set()
        self._executable_edges: Set[Tuple[BasicBlock, BasicBlock]] = set()
        self._flow_worklist: List[Tuple[Optional[BasicBlock], BasicBlock]] = []
        self._ssa_worklist: List[SSAName] = []
        self._uses_of: Dict[SSAName, List[Tuple[BasicBlock, Instruction]]] = defaultdict(list)
        self._block_of: Dict[Instruction, BasicBlock] = {}
        self._predecessors = procedure.cfg.predecessors()
        self._build_use_lists()

    def _build_use_lists(self) -> None:
        for block in self.procedure.cfg.blocks:
            for instruction in block.instructions:
                self._block_of[instruction] = block
                for use in instruction.uses():
                    if use.version:
                        self._uses_of[(use.var, use.version)].append(
                            (block, instruction)
                        )

    # -- lattice plumbing ------------------------------------------------

    def _value(self, name: SSAName) -> LatticeValue:
        variable, version = name
        if version == 0 or version is None:
            return self.entry_values.get(variable, BOTTOM)
        return self.values.get(name, TOP)

    def operand_value(self, operand: Operand) -> LatticeValue:
        if isinstance(operand, Const):
            return const(operand.value)
        return self._value((operand.var, operand.version))

    def _lower(self, name: SSAName, new_value: LatticeValue) -> None:
        old = self._value(name)
        merged = old.meet(new_value)
        if merged != old:
            self.values[name] = merged
            self._ssa_worklist.append(name)

    # -- main loop ----------------------------------------------------------

    def run(self) -> None:
        self._flow_worklist.append((None, self.procedure.cfg.entry))
        while self._flow_worklist or self._ssa_worklist:
            while self._flow_worklist:
                pred, block = self._flow_worklist.pop()
                self._visit_edge(pred, block)
            while self._ssa_worklist:
                name = self._ssa_worklist.pop()
                for block, instruction in self._uses_of.get(name, ()):
                    if block in self.executable_blocks:
                        self._visit_instruction(block, instruction)

    def _visit_edge(self, pred: Optional[BasicBlock], block: BasicBlock) -> None:
        if pred is not None:
            edge = (pred, block)
            if edge in self._executable_edges:
                # Edge already processed: only phis need re-evaluation.
                for phi in block.phis():
                    self._visit_phi(block, phi)
                return
            self._executable_edges.add(edge)
        first_visit = block not in self.executable_blocks
        self.executable_blocks.add(block)
        for phi in block.phis():
            self._visit_phi(block, phi)
        if first_visit:
            for instruction in block.non_phi_instructions():
                self._visit_instruction(block, instruction)

    def _edge_executable(self, pred: BasicBlock, block: BasicBlock) -> bool:
        return (pred, block) in self._executable_edges or (
            pred is None and block is self.procedure.cfg.entry
        )

    def _visit_phi(self, block: BasicBlock, phi: Phi) -> None:
        incoming_values = []
        for pred, operand in phi.incoming.items():
            if (pred, block) in self._executable_edges:
                incoming_values.append(self.operand_value(operand))
        name = (phi.target.var, phi.target.version)
        self._lower(name, meet_all(incoming_values))

    def _visit_instruction(self, block: BasicBlock, instruction: Instruction) -> None:
        if self.max_visits is not None:
            self.visits += 1
            if self.visits > self.max_visits:
                from repro.config import BudgetExceeded

                raise BudgetExceeded(
                    "sccp", self.max_visits,
                    f"procedure {self.procedure.name!r}",
                )
        if isinstance(instruction, Phi):
            self._visit_phi(block, instruction)
        elif isinstance(instruction, Assign):
            target = instruction.target
            self._lower(
                (target.var, target.version), self.operand_value(instruction.source)
            )
        elif isinstance(instruction, BinOp):
            self._visit_binop(instruction)
        elif isinstance(instruction, UnOp):
            self._visit_unop(instruction)
        elif isinstance(instruction, ArrayLoad):
            target = instruction.target
            self._lower((target.var, target.version), BOTTOM)
        elif isinstance(instruction, Read):
            for target in instruction.targets:
                self._lower((target.var, target.version), BOTTOM)
        elif isinstance(instruction, Call):
            self._visit_call(instruction)
        elif isinstance(instruction, CondBranch):
            self._visit_branch(block, instruction)
        elif isinstance(instruction, Jump):
            self._flow_worklist.append((block, instruction.target))
        # Return/Halt/Print/ArrayStore produce no values and no flow.

    def _visit_binop(self, instruction: BinOp) -> None:
        left = self.operand_value(instruction.left)
        right = self.operand_value(instruction.right)
        name = (instruction.target.var, instruction.target.version)
        if left.is_bottom or right.is_bottom:
            # Some operators have absorbing constants (0 * ⊥ = 0).
            folded = _fold_with_bottom(instruction.op, left, right)
            self._lower(name, folded)
        elif left.is_top or right.is_top:
            pass  # stay optimistic
        else:
            result = fold_operator(instruction.op, [left.value, right.value])
            self._lower(name, BOTTOM if result is None else const(result))

    def _visit_unop(self, instruction: UnOp) -> None:
        operand = self.operand_value(instruction.operand)
        name = (instruction.target.var, instruction.target.version)
        if operand.is_bottom:
            self._lower(name, BOTTOM)
        elif operand.is_constant:
            result = fold_operator(instruction.op, [operand.value])
            self._lower(name, BOTTOM if result is None else const(result))

    def _visit_call(self, call: Call) -> None:
        for definition in call.may_define:
            value = self.call_model.modified_value(
                call, definition.var, self.operand_value
            )
            self._lower((definition.var, definition.version), value)
        if call.result is not None:
            value = self.call_model.result_value(call, self.operand_value)
            self._lower((call.result.var, call.result.version), value)

    def _visit_branch(self, block: BasicBlock, branch: CondBranch) -> None:
        cond = self.operand_value(branch.cond)
        if cond.is_top:
            return
        if cond.is_constant:
            taken = branch.if_true if cond.value != 0 else branch.if_false
            self._flow_worklist.append((block, taken))
        else:
            self._flow_worklist.append((block, branch.if_true))
            self._flow_worklist.append((block, branch.if_false))


def _fold_with_bottom(op: str, left: LatticeValue, right: LatticeValue) -> LatticeValue:
    """Fold operators with an absorbing constant operand even when the
    other side is ⊥ (e.g. ``0 * x == 0``)."""
    if op == "*":
        for side in (left, right):
            if side.is_constant and side.value == 0:
                return const(0)
    if op == "and":
        for side in (left, right):
            if side.is_constant and side.value == 0:
                return const(0)
    if op == "or":
        for side in (left, right):
            if side.is_constant and side.value != 0:
                return const(1)
    return BOTTOM
