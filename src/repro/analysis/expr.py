"""Context-independent symbolic value expressions.

Value numbering (:mod:`repro.analysis.value_numbering`) computes one
:class:`Expr` per SSA name; jump functions are extracted from these
expressions. The representation mirrors the paper's "expression tree ...
converted into a context-independent representation" (§4.1): leaves are
integer constants, *entry values* of the procedure's parameters/globals,
or opaque unknowns; interior nodes are the integer operators.

Smart constructors (:func:`make_binop`, :func:`make_unop`) fold
constants, apply simple algebraic identities, and canonicalize
commutative operand order, so structural equality of Expr objects is a
useful (conservative) value-equality test.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Optional, Tuple

from repro.ir.symbols import Variable

_COMMUTATIVE = {"+", "*", "max", "min", "eq", "ne", "and", "or"}


class Expr:
    """Base class: immutable, hashable symbolic expressions."""

    __slots__ = ()

    def support(self) -> frozenset:
        """The entry variables this expression's value depends on."""
        raise NotImplementedError

    def is_constant(self) -> bool:
        return isinstance(self, ConstExpr)

    def has_unknown(self) -> bool:
        """True when any leaf is an opaque unknown."""
        raise NotImplementedError

    def evaluate(self, env: Dict[Variable, int]) -> Optional[int]:
        """Evaluate under ``env`` (entry variable -> value); None when the
        expression contains unknowns or an unmapped entry variable, or the
        evaluation is undefined (division by zero)."""
        raise NotImplementedError


class ConstExpr(Expr):
    """An integer constant."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = value

    def support(self) -> frozenset:
        return frozenset()

    def has_unknown(self) -> bool:
        return False

    def evaluate(self, env: Dict[Variable, int]) -> Optional[int]:
        return self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ConstExpr) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("c", self.value))

    def __repr__(self) -> str:
        return str(self.value)


class EntryExpr(Expr):
    """The value of a formal parameter or global on entry to the current
    procedure — the unknowns jump functions are expressed over."""

    __slots__ = ("var",)

    def __init__(self, var: Variable):
        self.var = var

    def support(self) -> frozenset:
        return frozenset((self.var,))

    def has_unknown(self) -> bool:
        return False

    def evaluate(self, env: Dict[Variable, int]) -> Optional[int]:
        return env.get(self.var)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, EntryExpr) and other.var is self.var

    def __hash__(self) -> int:
        return hash(("entry", self.var))

    def __repr__(self) -> str:
        return f"entry({self.var.name})"


class UnknownExpr(Expr):
    """An opaque run-time value (READ input, array element, unanalyzable
    call effect, undefined variable). Two unknowns are the same value iff
    they carry the same tag — value numbering tags each source of
    unknownness once, so copies of one unknown still compare equal."""

    __slots__ = ("tag",)

    _tags = itertools.count()

    def __init__(self, tag: Optional[int] = None):
        self.tag = next(UnknownExpr._tags) if tag is None else tag

    def support(self) -> frozenset:
        return frozenset()

    def has_unknown(self) -> bool:
        return True

    def evaluate(self, env: Dict[Variable, int]) -> Optional[int]:
        return None

    def __eq__(self, other: object) -> bool:
        return isinstance(other, UnknownExpr) and other.tag == self.tag

    def __hash__(self) -> int:
        return hash(("u", self.tag))

    def __repr__(self) -> str:
        return f"unknown#{self.tag}"


class OpExpr(Expr):
    """An operator applied to sub-expressions."""

    __slots__ = ("op", "args")

    def __init__(self, op: str, args: Tuple[Expr, ...]):
        self.op = op
        self.args = args

    def support(self) -> frozenset:
        result: frozenset = frozenset()
        for arg in self.args:
            result |= arg.support()
        return result

    def has_unknown(self) -> bool:
        return any(arg.has_unknown() for arg in self.args)

    def evaluate(self, env: Dict[Variable, int]) -> Optional[int]:
        values = []
        for arg in self.args:
            value = arg.evaluate(env)
            if value is None:
                return None
            values.append(value)
        return fold_operator(self.op, values)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, OpExpr)
            and other.op == self.op
            and other.args == self.args
        )

    def __hash__(self) -> int:
        return hash(("op", self.op, self.args))

    def __repr__(self) -> str:
        return f"({self.op} {' '.join(map(repr, self.args))})"


def fold_operator(op: str, values) -> Optional[int]:
    """Evaluate operator ``op`` over concrete integers.

    Comparisons/logicals yield 0/1; division and MOD follow FORTRAN
    (truncation toward zero); division by zero yields None.
    """
    if op == "+":
        return values[0] + values[1]
    if op == "-":
        return values[0] - values[1]
    if op == "*":
        return values[0] * values[1]
    if op == "/":
        a, b = values
        if b == 0:
            return None
        quotient = abs(a) // abs(b)
        return quotient if (a >= 0) == (b >= 0) else -quotient
    if op == "mod":
        a, b = values
        if b == 0:
            return None
        remainder = abs(a) % abs(b)
        return remainder if a >= 0 else -remainder
    if op == "max":
        return max(values)
    if op == "min":
        return min(values)
    if op == "eq":
        return int(values[0] == values[1])
    if op == "ne":
        return int(values[0] != values[1])
    if op == "lt":
        return int(values[0] < values[1])
    if op == "le":
        return int(values[0] <= values[1])
    if op == "gt":
        return int(values[0] > values[1])
    if op == "ge":
        return int(values[0] >= values[1])
    if op == "and":
        return int(bool(values[0]) and bool(values[1]))
    if op == "or":
        return int(bool(values[0]) or bool(values[1]))
    if op == "neg":
        return -values[0]
    if op == "not":
        return int(not values[0])
    if op == "abs":
        return abs(values[0])
    raise ValueError(f"unknown operator {op!r}")


def _sort_key(expr: Expr):
    if isinstance(expr, ConstExpr):
        return (0, expr.value, "")
    if isinstance(expr, EntryExpr):
        return (1, expr.var.uid, expr.var.name)
    if isinstance(expr, UnknownExpr):
        return (2, expr.tag, "")
    return (3, 0, repr(expr))


def make_binop(op: str, left: Expr, right: Expr) -> Expr:
    """Build ``left op right`` with folding and canonicalization."""
    if isinstance(left, ConstExpr) and isinstance(right, ConstExpr):
        folded = fold_operator(op, [left.value, right.value])
        if folded is not None:
            return ConstExpr(folded)
        return UnknownExpr()  # e.g. constant division by zero
    # Algebraic identities that preserve FORTRAN integer semantics.
    if op == "+":
        if isinstance(left, ConstExpr) and left.value == 0:
            return right
        if isinstance(right, ConstExpr) and right.value == 0:
            return left
    elif op == "-":
        if isinstance(right, ConstExpr) and right.value == 0:
            return left
        if left == right and not left.has_unknown():
            return ConstExpr(0)
    elif op == "*":
        for a, b in ((left, right), (right, left)):
            if isinstance(a, ConstExpr):
                if a.value == 0:
                    return ConstExpr(0)
                if a.value == 1:
                    return b
    elif op == "/":
        if isinstance(right, ConstExpr) and right.value == 1:
            return left
    if op in _COMMUTATIVE:
        ordered = tuple(sorted((left, right), key=_sort_key))
        return OpExpr(op, ordered)
    return OpExpr(op, (left, right))


def make_unop(op: str, operand: Expr) -> Expr:
    """Build ``op operand`` with constant folding."""
    if isinstance(operand, ConstExpr):
        folded = fold_operator(op, [operand.value])
        if folded is not None:
            return ConstExpr(folded)
    if op == "neg" and isinstance(operand, OpExpr) and operand.op == "neg":
        return operand.args[0]
    return OpExpr(op, (operand,))


def rewrite_leaves(expr: Expr, rewrite) -> Expr:
    """Rebuild ``expr`` with every leaf passed through ``rewrite`` (a
    function Expr -> Expr returning the leaf unchanged when it has
    nothing to say). Interior nodes are re-canonicalized bottom-up."""
    if isinstance(expr, OpExpr):
        new_args = tuple(rewrite_leaves(arg, rewrite) for arg in expr.args)
        if new_args == expr.args:
            return expr
        if len(new_args) == 1:
            return make_unop(expr.op, new_args[0])
        return make_binop(expr.op, new_args[0], new_args[1])
    return rewrite(expr)


def substitute(expr: Expr, bindings: Dict[Variable, Expr]) -> Expr:
    """Replace entry leaves by the expressions in ``bindings``.

    Entry variables missing from ``bindings`` are left in place. The
    result is re-canonicalized bottom-up, so substituting constants
    folds.
    """
    if isinstance(expr, EntryExpr):
        return bindings.get(expr.var, expr)
    if isinstance(expr, OpExpr):
        new_args = tuple(substitute(arg, bindings) for arg in expr.args)
        if new_args == expr.args:
            return expr
        if len(new_args) == 1:
            return make_unop(expr.op, new_args[0])
        return make_binop(expr.op, new_args[0], new_args[1])
    return expr
