"""Natural-loop detection and induction-variable recognition.

Substrate for the paper's motivating applications (dependence analysis
and parallelization, §1): both need to know which array subscripts and
trip counts are affine in loop induction variables. Loops are found as
back edges to dominators; basic induction variables are header phis of
the form ``i = phi(init, i ± c)`` with a constant step — exactly the
shape DO-loop lowering produces, but recognized generally so GOTO-built
loops qualify too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.dominance import DominatorTree, compute_dominator_tree
from repro.analysis.ssa import ssa_definitions
from repro.ir.cfg import BasicBlock, ControlFlowGraph
from repro.ir.instructions import BinOp, Const, Phi, Use
from repro.ir.module import Procedure
from repro.ir.symbols import Variable


@dataclass
class InductionVariable:
    """A basic induction variable of one loop.

    ``phi`` is the header phi; ``init_operand`` is the value entering
    from outside the loop; ``step`` is the constant added every
    iteration (negative for downward loops).
    """

    phi: Phi
    init_operand: object
    step: int

    @property
    def var(self) -> Variable:
        return self.phi.target.var

    @property
    def ssa_name(self) -> Tuple[Variable, int]:
        return (self.phi.target.var, self.phi.target.version)

    def __repr__(self) -> str:
        return f"IV({self.var.name} step {self.step:+d})"


@dataclass
class NaturalLoop:
    """One natural loop: header plus the body block set."""

    header: BasicBlock
    blocks: Set[BasicBlock] = field(default_factory=set)
    latches: List[BasicBlock] = field(default_factory=list)
    induction_variables: List[InductionVariable] = field(default_factory=list)

    def contains(self, block: BasicBlock) -> bool:
        return block in self.blocks

    def __repr__(self) -> str:
        return f"NaturalLoop({self.header.name}, {len(self.blocks)} blocks)"


def find_natural_loops(
    cfg: ControlFlowGraph, domtree: Optional[DominatorTree] = None
) -> List[NaturalLoop]:
    """All natural loops of ``cfg``, largest-first (one loop per header;
    multiple back edges to one header merge)."""
    domtree = domtree or compute_dominator_tree(cfg)
    predecessors = cfg.predecessors()
    loops: Dict[BasicBlock, NaturalLoop] = {}
    for block in cfg.reverse_postorder():
        for successor in block.successors():
            if domtree.dominates(successor, block):
                loop = loops.setdefault(successor, NaturalLoop(successor))
                loop.latches.append(block)
                _collect_body(loop, block, predecessors)
    for loop in loops.values():
        loop.blocks.add(loop.header)
    return sorted(loops.values(), key=lambda l: -len(l.blocks))


def _collect_body(
    loop: NaturalLoop,
    latch: BasicBlock,
    predecessors: Dict[BasicBlock, List[BasicBlock]],
) -> None:
    """Add all blocks that reach ``latch`` without passing the header."""
    stack = [latch]
    while stack:
        block = stack.pop()
        if block is loop.header or block in loop.blocks:
            continue
        loop.blocks.add(block)
        stack.extend(predecessors.get(block, ()))


def analyze_loops(procedure: Procedure) -> List[NaturalLoop]:
    """Find the loops of one SSA procedure and recognize their basic
    induction variables."""
    domtree = compute_dominator_tree(procedure.cfg)
    loops = find_natural_loops(procedure.cfg, domtree)
    definitions = ssa_definitions(procedure)
    for loop in loops:
        loop.induction_variables = _recognize_induction_variables(
            loop, definitions
        )
    return loops


def _recognize_induction_variables(
    loop: NaturalLoop, definitions
) -> List[InductionVariable]:
    result: List[InductionVariable] = []
    for phi in loop.header.phis():
        outside_values = []
        inside_values = []
        for pred, operand in phi.incoming.items():
            if pred in loop.blocks:
                inside_values.append(operand)
            else:
                outside_values.append(operand)
        if len(outside_values) != 1 or not inside_values:
            continue
        step = _common_step(phi, inside_values, definitions)
        if step is None:
            continue
        result.append(InductionVariable(phi, outside_values[0], step))
    return result


def _common_step(phi: Phi, inside_values, definitions) -> Optional[int]:
    """The constant step if every latch value is ``phi ± c`` with one
    consistent c."""
    steps: Set[int] = set()
    for operand in inside_values:
        if not isinstance(operand, Use):
            return None
        definition = definitions.get((operand.var, operand.version))
        if not isinstance(definition, BinOp) or definition.op not in ("+", "-"):
            return None
        step = _step_of(definition, phi)
        if step is None:
            return None
        steps.add(step)
    if len(steps) == 1:
        return steps.pop()
    return None


def _step_of(definition: BinOp, phi: Phi) -> Optional[int]:
    target = (phi.target.var, phi.target.version)

    def is_phi_use(operand) -> bool:
        return (
            isinstance(operand, Use)
            and (operand.var, operand.version) == target
        )

    if definition.op == "+":
        if is_phi_use(definition.left) and isinstance(definition.right, Const):
            return definition.right.value
        if is_phi_use(definition.right) and isinstance(definition.left, Const):
            return definition.left.value
    elif definition.op == "-":
        if is_phi_use(definition.left) and isinstance(definition.right, Const):
            return -definition.right.value
    return None
