"""Shared helpers for the test and benchmark suites.

Historically ``tests/conftest.py`` and the benchmark modules each
carried their own copy of the parse-and-lower helper; this module is
the single home for those utilities so fixtures are defined once and
imported everywhere (tests, benchmarks, the differential oracle's own
tests).
"""

from __future__ import annotations

from typing import Optional


def lower(text: str, filename: str = "test.f"):
    """Parse and lower MiniFortran text into a Program (not yet SSA)."""
    from repro.frontend.parser import parse_source
    from repro.frontend.source import SourceFile
    from repro.ir.lowering import lower_module

    module = parse_source(text, filename)
    return lower_module(module, SourceFile(filename, text))


def prepared(text: str, config=None):
    """Lower + annotate + SSA, returning (program, callgraph, modref)."""
    from repro.config import AnalysisConfig
    from repro.ipcp.driver import prepare_program

    program = lower(text)
    callgraph, modref = prepare_program(program, config or AnalysisConfig())
    return program, callgraph, modref


#: A small three-procedure program exercising formals, globals, calls,
#: branches, and a loop — used by many structural tests.
TRI_PROGRAM = """
      PROGRAM MAIN
      INTEGER N
      COMMON /BLK/ G1, G2
      N = 100
      G1 = 7
      CALL FOO(N, 5)
      PRINT *, G2
      END

      SUBROUTINE FOO(X, Y)
      INTEGER X, Y, Z
      COMMON /BLK/ G1, G2
      Z = X + Y
      IF (Z .GT. 10) THEN
        G2 = Z
      ELSE
        G2 = 0
      ENDIF
      DO I = 1, Y
        Z = Z + 1
      ENDDO
      CALL BAR(Z)
      RETURN
      END

      SUBROUTINE BAR(A)
      INTEGER A
      COMMON /BLK/ G1, G2
      PRINT *, A + G1
      RETURN
      END
"""


_printed: set = set()


def emit_once(capfd, key: str, text: str, _printed: Optional[set] = None) -> None:
    """Print ``text`` to the real terminal, once per session per key.

    Benchmark modules use this to surface regenerated tables even though
    pytest captures test output (``capfd.disabled()``).
    """
    seen = _printed if _printed is not None else globals()["_printed"]
    if key in seen:
        return
    seen.add(key)
    with capfd.disabled():
        print()
        print(text)
        print()
