"""Pipeline driver for the IPCP-consuming optimization backend.

The pipeline takes an :class:`~repro.ipcp.driver.AnalysisResult` (whose
program is in SSA form) and runs the requested passes:

1. SSA stage, in order ``fold`` -> ``callargs`` -> ``branches`` — each
   backed by one per-procedure SCCP solve seeded with the
   interprocedural CONSTANTS(p) entry lattice (so the passes see exactly
   the facts the paper's propagation proved);
2. SSA destruction (always — the pipeline's contract is an executable,
   phi-free program);
3. post-destruct stage: ``unswitch`` (loop cloning needs no phi surgery
   on the destructed IR).

``--passes`` selects a subset; scheduling order is fixed regardless of
how the subset is spelled, and is reported in canonical order
(:data:`PASS_NAMES`). With verification enabled the IR verifier runs
after every pass, extending the PR 1 verifier contract to repro.opt.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.analysis.sccp import SCCPCallModel, SCCPResult, run_sccp
from repro.analysis.ssa_out import destruct_program
from repro.config import AnalysisConfig
from repro.ipcp.driver import AnalysisResult, analyze_source
from repro.ipcp.return_functions import ReturnFunctionCallModel
from repro.ir.verify import verify_program
from repro.obs import metrics as obs_metrics
from repro.obs import timeline
from repro.obs import trace
from repro.opt import passes as opt_passes
from repro.opt.report import OptReport

#: Canonical pass names, in the order reports list them.
PASS_NAMES: Tuple[str, ...] = ("fold", "branches", "unswitch", "callargs")

#: Execution schedule for the SSA stage: substitution first so DCE sees
#: every literal, call-argument materialization before DCE so freshly
#: dead actual computations are collected in the same run.
_SSA_STAGE: Tuple[str, ...] = ("fold", "callargs", "branches")

#: Function names on :mod:`repro.opt.passes`, looked up late so tests
#: can monkeypatch a deliberately broken pass.
_SSA_PASS_FUNCTIONS: Dict[str, str] = {
    "fold": "fold_constants",
    "callargs": "materialize_call_args",
    "branches": "fold_branches",
}


def parse_passes(spec: Optional[str]) -> Tuple[str, ...]:
    """Parse a ``--passes`` comma list into canonical order; raises
    ValueError naming any unknown pass."""
    if not spec:
        return PASS_NAMES
    names = [name.strip() for name in spec.split(",") if name.strip()]
    unknown = sorted(set(names) - set(PASS_NAMES))
    if unknown:
        raise ValueError(
            f"unknown optimization pass(es): {', '.join(unknown)} "
            f"(available: {', '.join(PASS_NAMES)})"
        )
    if not names:
        return PASS_NAMES
    requested = set(names)
    return tuple(name for name in PASS_NAMES if name in requested)


def _call_model(result: AnalysisResult) -> SCCPCallModel:
    if result.config.use_return_functions and result.return_functions is not None:
        return ReturnFunctionCallModel(result.program, result.return_functions)
    return SCCPCallModel()


def optimize_result(
    result: AnalysisResult,
    passes: Iterable[str] = PASS_NAMES,
    verify: bool = False,
) -> OptReport:
    """Run the pipeline over ``result.program`` (mutating it in place)
    and return the report. On return the program is destructed —
    executable by the reference interpreter, no longer in SSA form."""
    observer = timeline.current_observer()
    if observer is not None:
        import time

        begin = time.perf_counter()
        try:
            return _optimize_result(result, passes, verify)
        finally:
            # Feed the request timeline's "opt" bucket (the daemon's
            # stage breakdown); pass-level detail stays in trace spans.
            observer.record_stage("opt", time.perf_counter() - begin)
    return _optimize_result(result, passes, verify)


def _optimize_result(
    result: AnalysisResult,
    passes: Iterable[str] = PASS_NAMES,
    verify: bool = False,
) -> OptReport:
    program = result.program
    config = result.config
    selected = tuple(passes)
    verify_after = verify or config.verify_ir
    report = OptReport(passes=list(selected), verified=verify_after)

    ssa_passes = [name for name in _SSA_STAGE if name in selected]
    if ssa_passes:
        sccp_results: Dict[str, SCCPResult] = {}
        call_model = _call_model(result)
        with trace.span("opt.sccp"):
            for procedure in program:
                entry = result.constants.entry_lattice(procedure)
                sccp_results[procedure.name] = run_sccp(
                    procedure, entry, call_model,
                    config.budget.sccp_visits,
                )
        for pass_name in ssa_passes:
            pass_function = getattr(opt_passes, _SSA_PASS_FUNCTIONS[pass_name])
            with trace.span(f"opt.{pass_name}"):
                changes = 0
                for procedure in program:
                    changes += pass_function(
                        procedure, sccp_results[procedure.name], report
                    )
            obs_metrics.inc(f"opt_{pass_name}_changes", changes)
            if verify_after:
                verify_program(program, ssa=True, stage=f"opt:{pass_name}")

    with trace.span("opt.destruct"):
        report.edge_copies = destruct_program(program)
        if "branches" in selected:
            for procedure in program:
                opt_passes.cleanup_pass(procedure, "branches", report)
    if verify_after:
        verify_program(program, ssa=False, stage="opt:destruct")

    if "unswitch" in selected:
        with trace.span("opt.unswitch"):
            changes = 0
            for procedure in program:
                changes += opt_passes.unswitch_loops(procedure, report)
                opt_passes.cleanup_pass(procedure, "unswitch", report)
        obs_metrics.inc("opt_unswitch_changes", changes)
        if verify_after:
            verify_program(program, ssa=False, stage="opt:unswitch")

    obs_metrics.inc("opt_pipeline_runs")
    obs_metrics.inc("opt_total_changes", report.total_changes)
    return report


def optimize_source(
    text: str,
    config: Optional[AnalysisConfig] = None,
    filename: str = "<memory>",
    passes: Iterable[str] = PASS_NAMES,
    verify: bool = False,
) -> Tuple[AnalysisResult, OptReport]:
    """Analyze ``text`` fresh (never through the shared memo caches —
    the pipeline mutates the program) and optimize it."""
    result = analyze_source(text, config or AnalysisConfig(), filename)
    report = optimize_result(result, passes, verify)
    return result, report
