"""The individual optimization passes of :mod:`repro.opt`.

Three passes run on the analyzed SSA program — ``fold`` (rewrite uses
whose SCCP value is constant into literals and collapse fully-constant
expressions), ``callargs`` (materialize proven-constant call actuals),
``branches`` (fold constant branches, drop unreachable blocks and dead
pure definitions via :func:`repro.analysis.dce.eliminate_dead_code`) —
and one, ``unswitch``, runs on the destructed (executable) IR where
loop-body cloning needs no phi surgery.

Every pass mutates the procedure in place and reports what it changed
through the shared :class:`~repro.opt.report.OptReport`; the pipeline
driver (:mod:`repro.opt.pipeline`) owns ordering, SSA destruction, and
verification.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.dce import eliminate_dead_code
from repro.analysis.loops import NaturalLoop, find_natural_loops
from repro.analysis.sccp import SCCPResult, modified_actual_uses
from repro.ir.cfg import BasicBlock, ControlFlowGraph
from repro.ir.instructions import (
    ArrayLoad,
    ArrayStore,
    Assign,
    BinOp,
    Call,
    CallArg,
    CondBranch,
    Const,
    Def,
    Halt,
    Instruction,
    Jump,
    Operand,
    Phi,
    Print,
    Read,
    Return,
    UnOp,
    Use,
)
from repro.ir.module import Procedure
from repro.opt.report import OptReport

#: Loops bigger than this are not unswitched (code-size guard).
MAX_UNSWITCH_BLOCKS = 32
#: At most this many unswitches per procedure (exponential-growth guard).
MAX_UNSWITCHES = 4


def _cell_key(var, procedure: Procedure) -> str:
    return f"{var.name.lower()}@{procedure.name.lower()}"


def _substitution_candidates(instruction: Instruction) -> List[Use]:
    """Uses of ``instruction`` that constant folding may rewrite.

    Calls are left to the ``callargs`` pass; Return exit uses and Call
    entry uses are analysis bookkeeping, never substitution targets;
    phis are skipped (matching :func:`repro.ipcp.substitution.apply_substitution`).
    """
    if isinstance(instruction, (Call, Phi)):
        return []
    if isinstance(instruction, Return):
        if isinstance(instruction.value, Use):
            return [instruction.value]
        return []
    return list(instruction.uses())


def fold_constants(
    procedure: Procedure, sccp: SCCPResult, report: OptReport
) -> int:
    """Rewrite constant-valued uses to literals and collapse BinOp/UnOp
    instructions whose result SCCP proved constant into plain assigns.
    Only executable code is touched; returns the number of changes."""
    stats = report.stats("fold")
    changes = 0
    for block in procedure.cfg.blocks:
        if block not in sccp.executable_blocks:
            continue
        for index, instruction in enumerate(block.instructions):
            for use in _substitution_candidates(instruction):
                value = sccp.operand_value(use)
                if not value.is_constant:
                    continue
                if use.version in (None, 0):
                    report.note_used_by(
                        _cell_key(use.var, procedure),
                        f"fold@{procedure.name.lower()}:{block.name}",
                    )
                instruction.replace_operand(use, Const(value.value))
                stats.substituted_uses += 1
                changes += 1
            if isinstance(instruction, (BinOp, UnOp)):
                result = sccp.value_of(
                    instruction.target.var, instruction.target.version
                )
                if result.is_constant:
                    block.instructions[index] = Assign(
                        instruction.target,
                        Const(result.value),
                        instruction.location,
                    )
                    stats.folded_expressions += 1
                    changes += 1
    report.note_procedure("fold", procedure.name, changes)
    return changes


def materialize_call_args(
    procedure: Procedure, sccp: SCCPResult, report: OptReport
) -> int:
    """Rewrite call actuals whose value is a proven constant into
    literals. By-reference actuals the callee may write (their variable
    appears in ``may_define``) keep their aliasing and are skipped."""
    stats = report.stats("callargs")
    changes = 0
    for block in procedure.cfg.blocks:
        if block not in sccp.executable_blocks:
            continue
        for instruction in block.instructions:
            if not isinstance(instruction, Call):
                continue
            skip = modified_actual_uses(instruction)
            for arg in instruction.args:
                use = arg.value
                if not isinstance(use, Use) or use in skip:
                    continue
                value = sccp.operand_value(use)
                if not value.is_constant:
                    continue
                if use.version in (None, 0):
                    report.note_used_by(
                        _cell_key(use.var, procedure),
                        f"callargs@{procedure.name.lower()}:{block.name}",
                    )
                instruction.replace_operand(use, Const(value.value))
                stats.materialized_args += 1
                changes += 1
    report.note_procedure("callargs", procedure.name, changes)
    return changes


def fold_branches(
    procedure: Procedure, sccp: SCCPResult, report: OptReport
) -> int:
    """Constant-branch folding, unreachable-block removal, and dead
    pure-definition elimination (the PR 1 DCE machinery, SSA-preserving)."""
    stats = report.stats("branches")
    dce = eliminate_dead_code(procedure, sccp, remove_dead_definitions=True)
    stats.folded_branches += dce.folded_branches
    stats.removed_blocks += dce.removed_blocks
    stats.removed_instructions += dce.removed_instructions
    changes = dce.folded_branches + dce.removed_blocks + dce.removed_instructions
    report.note_procedure("branches", procedure.name, changes)
    return changes


# -- post-destruct control-flow cleanup ------------------------------------


def simplify_control_flow(procedure: Procedure) -> Tuple[int, int]:
    """Shed the per-iteration residue branch folding and phi lowering
    leave behind on the destructed IR: no-op self copies (a collapsed
    single-input phi becomes ``x = x`` once versions are stripped) and
    empty forwarding blocks (a folded branch leaves ``jump``-only
    blocks on the hot path). Returns (removed_blocks,
    removed_instructions); only meaningful on phi-free programs."""
    cfg = procedure.cfg
    removed_instructions = 0
    for block in cfg.blocks:
        kept: List[Instruction] = []
        for instruction in block.instructions:
            if (
                isinstance(instruction, Assign)
                and isinstance(instruction.source, Use)
                and instruction.source.var is instruction.target.var
            ):
                removed_instructions += 1
                continue
            kept.append(instruction)
        block.instructions = kept

    removed_blocks = 0
    while True:
        forward: Dict[BasicBlock, BasicBlock] = {}
        for block in cfg.blocks:
            if block is cfg.entry or len(block.instructions) != 1:
                continue
            only = block.instructions[0]
            if isinstance(only, Jump) and only.target is not block:
                forward[block] = only.target

        def resolve(block: BasicBlock) -> BasicBlock:
            seen = set()
            while block in forward and block not in seen:
                seen.add(block)
                block = forward[block]
            return block

        retargeted = False
        for block in cfg.blocks:
            terminator = block.terminator
            if isinstance(terminator, Jump):
                target = resolve(terminator.target)
                if target is not terminator.target:
                    terminator.target = target
                    retargeted = True
            elif isinstance(terminator, CondBranch):
                if_true = resolve(terminator.if_true)
                if if_true is not terminator.if_true:
                    terminator.if_true = if_true
                    retargeted = True
                if_false = resolve(terminator.if_false)
                if if_false is not terminator.if_false:
                    terminator.if_false = if_false
                    retargeted = True
        if not retargeted:
            break
        removed_blocks += len(cfg.remove_unreachable())
    return removed_blocks, removed_instructions


def cleanup_pass(procedure: Procedure, pass_name: str,
                 report: OptReport) -> int:
    """Run :func:`simplify_control_flow`, attributing the savings to the
    pass whose residue it collects (``branches`` after destruction,
    ``unswitch`` after loop cloning)."""
    removed_blocks, removed_instructions = simplify_control_flow(procedure)
    stats = report.stats(pass_name)
    stats.removed_blocks += removed_blocks
    stats.removed_instructions += removed_instructions
    changes = removed_blocks + removed_instructions
    report.note_procedure(pass_name, procedure.name, changes)
    return changes


# -- loop unswitching (post-destruct, non-SSA IR) --------------------------


def _clone_operand(operand: Operand) -> Operand:
    if isinstance(operand, Const):
        return Const(operand.value)
    clone = Use(operand.var, operand.location, operand.from_source)
    clone.version = operand.version
    return clone


def _clone_def(definition: Def) -> Def:
    clone = Def(definition.var)
    clone.version = definition.version
    return clone


def _clone_instruction(instruction: Instruction) -> Instruction:
    location = instruction.location
    if isinstance(instruction, Assign):
        return Assign(
            _clone_def(instruction.target),
            _clone_operand(instruction.source), location,
        )
    if isinstance(instruction, BinOp):
        return BinOp(
            _clone_def(instruction.target), instruction.op,
            _clone_operand(instruction.left),
            _clone_operand(instruction.right), location,
        )
    if isinstance(instruction, UnOp):
        return UnOp(
            _clone_def(instruction.target), instruction.op,
            _clone_operand(instruction.operand), location,
        )
    if isinstance(instruction, ArrayLoad):
        return ArrayLoad(
            _clone_def(instruction.target), instruction.array,
            [_clone_operand(index) for index in instruction.indices], location,
        )
    if isinstance(instruction, ArrayStore):
        return ArrayStore(
            instruction.array,
            [_clone_operand(index) for index in instruction.indices],
            _clone_operand(instruction.value), location,
        )
    if isinstance(instruction, Call):
        args = []
        for arg in instruction.args:
            if arg.is_array:
                args.append(CallArg(array=arg.array, location=arg.location))
            else:
                args.append(
                    CallArg(value=_clone_operand(arg.value),
                            location=arg.location)
                )
        clone = Call(
            instruction.callee, args,
            _clone_def(instruction.result) if instruction.result else None,
            location,
        )
        clone.may_define = [_clone_def(d) for d in instruction.may_define]
        clone.entry_uses = [_clone_operand(u) for u in instruction.entry_uses]
        return clone
    if isinstance(instruction, Read):
        return Read([_clone_def(t) for t in instruction.targets], location)
    if isinstance(instruction, Print):
        items = [
            item if isinstance(item, str) else _clone_operand(item)
            for item in instruction.items
        ]
        return Print(items, location)
    if isinstance(instruction, Jump):
        return Jump(instruction.target, location)
    if isinstance(instruction, CondBranch):
        return CondBranch(
            _clone_operand(instruction.cond),
            instruction.if_true, instruction.if_false, location,
        )
    if isinstance(instruction, Return):
        clone = Return(
            _clone_operand(instruction.value)
            if instruction.value is not None else None,
            location,
        )
        clone.exit_uses = [_clone_operand(u) for u in instruction.exit_uses]
        return clone
    if isinstance(instruction, Halt):
        return Halt(location)
    raise TypeError(
        f"cannot clone {type(instruction).__name__} (unswitching runs on "
        "destructed, phi-free IR)"
    )


def _loop_defined_variables(loop: NaturalLoop) -> Set:
    defined = set()
    for block in loop.blocks:
        for instruction in block.instructions:
            for definition in instruction.defs():
                defined.add(definition.var)
    return defined


def _invariant_guard_chain(
    cfg: ControlFlowGraph,
    loop: NaturalLoop,
    defined: Set,
    cond: Use,
) -> Optional[List[Tuple[BasicBlock, Instruction]]]:
    """The instructions to hoist for a loop-invariant guard, or None
    when the guard is not invariant.

    Empty chain: the guard variable is never written inside the loop.
    One-element chain: the guard is a single-def single-use value (the
    comparison temp lowering emits for ``IF (v .op. c)``) computed in
    the loop purely from loop-invariant operands — the defining
    instruction itself is hoisted to the dispatch point."""
    variable = cond.var
    if variable.is_array:
        return None
    if variable not in defined:
        return []
    definitions = []
    uses = 0
    for block in cfg.blocks:
        for instruction in block.instructions:
            for definition in instruction.defs():
                if definition.var is variable:
                    definitions.append((block, instruction))
            for use in instruction.uses():
                if use.var is variable:
                    uses += 1
    if len(definitions) != 1 or uses != 1:
        return None
    def_block, def_instruction = definitions[0]
    if def_block not in loop.blocks:
        return None  # defs() disagreeing with `defined` cannot happen
    if not isinstance(def_instruction, (Assign, BinOp, UnOp)):
        return None
    for use in def_instruction.uses():
        if use.var.is_array or use.var in defined:
            return None
    return [(def_block, def_instruction)]


def _find_unswitch_candidate(
    cfg: ControlFlowGraph,
) -> Optional[
    Tuple[NaturalLoop, BasicBlock, List[Tuple[BasicBlock, Instruction]]]
]:
    """The first loop-invariant non-constant conditional branch inside a
    loop, in deterministic (loop size, block order) order, together with
    the invariant guard computation to hoist."""
    for loop in find_natural_loops(cfg):
        if len(loop.blocks) > MAX_UNSWITCH_BLOCKS:
            continue
        defined = _loop_defined_variables(loop)
        for block in cfg.blocks:
            if block not in loop.blocks:
                continue
            terminator = block.terminator
            if not isinstance(terminator, CondBranch):
                continue
            if terminator.if_true is terminator.if_false:
                continue
            cond = terminator.cond
            if not isinstance(cond, Use):
                continue  # constant guards are the branches pass's job
            chain = _invariant_guard_chain(cfg, loop, defined, cond)
            if chain is None:
                continue
            return loop, block, chain
    return None


def _unswitch(cfg: ControlFlowGraph, loop: NaturalLoop,
              branch_block: BasicBlock,
              chain: List[Tuple[BasicBlock, Instruction]],
              suffix: str) -> None:
    """Specialize ``loop`` on the invariant guard ending ``branch_block``:
    the original loop becomes the guard-true version, a clone becomes the
    guard-false version, and the guard (with its hoisted invariant
    computation ``chain``) is evaluated once at loop entry."""
    terminator = branch_block.terminator
    assert isinstance(terminator, CondBranch)
    for def_block, def_instruction in chain:
        def_block.instructions.remove(def_instruction)
    hoisted = [instruction for _, instruction in chain]
    mapping: Dict[BasicBlock, BasicBlock] = {}
    for old in [b for b in cfg.blocks if b in loop.blocks]:
        mapping[old] = cfg.new_block(f"{old.name}{suffix}")
    for old, new in mapping.items():
        new.instructions = [
            _clone_instruction(instruction) for instruction in old.instructions
        ]
    for new in mapping.values():
        for instruction in new.instructions:
            if isinstance(instruction, Jump):
                instruction.target = mapping.get(
                    instruction.target, instruction.target
                )
            elif isinstance(instruction, CondBranch):
                instruction.if_true = mapping.get(
                    instruction.if_true, instruction.if_true
                )
                instruction.if_false = mapping.get(
                    instruction.if_false, instruction.if_false
                )

    # Specialize: the branch collapses to a jump in each copy.
    clone_block = mapping[branch_block]
    clone_terminator = clone_block.terminator
    assert isinstance(clone_terminator, CondBranch)
    clone_block.instructions[-1] = Jump(
        clone_terminator.if_false, clone_terminator.location
    )
    branch_block.instructions[-1] = Jump(
        terminator.if_true, terminator.location
    )

    # Dispatch once on loop entry.
    header = loop.header
    clone_header = mapping[header]
    guard = _clone_operand(terminator.cond)
    outside = [
        pred for pred in cfg.predecessors().get(header, [])
        if pred not in loop.blocks
    ]
    single_jump_entry = (
        header is not cfg.entry
        and len(outside) == 1
        and isinstance(outside[0].terminator, Jump)
    )
    if single_jump_entry:
        preheader = outside[0]
        preheader.instructions[-1:] = hoisted + [
            CondBranch(guard, header, clone_header,
                       preheader.terminator.location)
        ]
        return
    dispatch = cfg.new_block(f"{header.name}{suffix}.dispatch")
    dispatch.instructions.extend(hoisted)
    dispatch.append(
        CondBranch(guard, header, clone_header, terminator.location)
    )
    for pred in outside:
        pred_terminator = pred.terminator
        if isinstance(pred_terminator, Jump):
            if pred_terminator.target is header:
                pred_terminator.target = dispatch
        elif isinstance(pred_terminator, CondBranch):
            if pred_terminator.if_true is header:
                pred_terminator.if_true = dispatch
            if pred_terminator.if_false is header:
                pred_terminator.if_false = dispatch
    if header is cfg.entry:
        cfg.entry = dispatch
        cfg.blocks.remove(dispatch)
        cfg.blocks.insert(0, dispatch)


def unswitch_loops(procedure: Procedure, report: OptReport) -> int:
    """Hoist loop-invariant conditional guards out of loops by cloning
    the loop per guard value. Runs on destructed (phi-free) IR; each
    specialized copy then sheds its untaken side via unreachable-block
    removal. Returns the number of loops unswitched."""
    stats = report.stats("unswitch")
    changes = 0
    while changes < MAX_UNSWITCHES:
        candidate = _find_unswitch_candidate(procedure.cfg)
        if candidate is None:
            break
        loop, branch_block, chain = candidate
        _unswitch(procedure.cfg, loop, branch_block, chain, f".us{changes}")
        procedure.cfg.remove_unreachable()
        stats.unswitched_loops += 1
        changes += 1
    report.note_procedure("unswitch", procedure.name, changes)
    return changes
