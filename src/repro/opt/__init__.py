"""repro.opt — the IPCP-driven optimization backend.

Closes the loop from the paper's *static* substitution counts to
*measured dynamic* savings: the passes here consume CONSTANTS(p) (via an
SCCP solve seeded with the interprocedural entry lattice) to transform
the IR, and the differential-equivalence harness
(:mod:`repro.oracle.equivalence`) plus ``benchmarks/test_bench_optimize``
prove the transforms sound and quantify the speedup.
"""

from repro.opt.pipeline import (  # noqa: F401
    PASS_NAMES,
    optimize_result,
    optimize_source,
    parse_passes,
)
from repro.opt.report import OptReport, PassStats  # noqa: F401
