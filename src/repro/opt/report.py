"""Results of one optimization-pipeline run.

An :class:`OptReport` is the machine-readable record the CLI renders,
the engine's ``opt`` cache namespace persists, and the optimization
benchmark attributes per-pass savings from. Everything in it is
deterministic for a given (source, config, passes) triple so warm cache
replays are byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


#: PassStats counter fields, in render order.
_COUNTER_FIELDS = (
    ("substituted_uses", "uses substituted"),
    ("folded_expressions", "expressions folded"),
    ("folded_branches", "branches folded"),
    ("removed_blocks", "blocks removed"),
    ("removed_instructions", "instructions removed"),
    ("unswitched_loops", "loops unswitched"),
    ("materialized_args", "call arguments materialized"),
)


@dataclass
class PassStats:
    """What one optimization pass changed, summed over all procedures."""

    name: str
    substituted_uses: int = 0
    folded_expressions: int = 0
    folded_branches: int = 0
    removed_blocks: int = 0
    removed_instructions: int = 0
    unswitched_loops: int = 0
    materialized_args: int = 0

    @property
    def total(self) -> int:
        return sum(getattr(self, field_name) for field_name, _ in _COUNTER_FIELDS)

    @property
    def changed(self) -> bool:
        return self.total > 0

    def as_dict(self) -> Dict[str, int]:
        return {
            field_name: getattr(self, field_name)
            for field_name, _ in _COUNTER_FIELDS
            if getattr(self, field_name)
        }

    def describe(self) -> str:
        parts = [
            f"{getattr(self, field_name)} {label}"
            for field_name, label in _COUNTER_FIELDS
            if getattr(self, field_name)
        ]
        return ", ".join(parts) if parts else "no changes"


@dataclass
class OptReport:
    """One pipeline run: per-pass statistics plus provenance facts."""

    #: Passes that ran, in canonical pipeline order.
    passes: List[str] = field(default_factory=list)
    per_pass: Dict[str, PassStats] = field(default_factory=dict)
    #: procedure name -> pass name -> number of changes in that procedure.
    per_procedure: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: provenance cell key ("var@proc") -> ["fold@proc:block", ...]:
    #: which optimization sites consumed each CONSTANTS(p) entry value.
    used_by: Dict[str, List[str]] = field(default_factory=dict)
    #: Phi-edge copies materialized during SSA destruction.
    edge_copies: int = 0
    #: True when the IR verifier ran after every pass.
    verified: bool = False

    def stats(self, pass_name: str) -> PassStats:
        existing = self.per_pass.get(pass_name)
        if existing is None:
            existing = PassStats(pass_name)
            self.per_pass[pass_name] = existing
        return existing

    def note_procedure(self, pass_name: str, procedure_name: str,
                       changes: int) -> None:
        if changes <= 0:
            return
        per_pass = self.per_procedure.setdefault(procedure_name, {})
        per_pass[pass_name] = per_pass.get(pass_name, 0) + changes

    def note_used_by(self, cell_key: str, fact: str) -> None:
        facts = self.used_by.setdefault(cell_key, [])
        if fact not in facts:
            facts.append(fact)

    @property
    def total_changes(self) -> int:
        return sum(stats.total for stats in self.per_pass.values())

    @property
    def changed(self) -> bool:
        return self.total_changes > 0

    def to_payload(self) -> dict:
        return {
            "passes": list(self.passes),
            "per_pass": {
                name: stats.as_dict() for name, stats in self.per_pass.items()
            },
            "per_procedure": {
                name: dict(counts)
                for name, counts in sorted(self.per_procedure.items())
            },
            "used_by": {
                key: list(facts) for key, facts in sorted(self.used_by.items())
            },
            "edge_copies": self.edge_copies,
            "verified": self.verified,
            "total_changes": self.total_changes,
        }

    def render(self) -> str:
        lines = [f"Optimization: passes {', '.join(self.passes)}"]
        for name in self.passes:
            stats = self.per_pass.get(name)
            lines.append(f"  {name}: {stats.describe() if stats else 'no changes'}")
        if self.per_procedure:
            per_proc = ", ".join(
                f"{name} ({sum(counts.values())})"
                for name, counts in sorted(self.per_procedure.items())
            )
            lines.append(f"  per procedure: {per_proc}")
        if self.edge_copies:
            lines.append(
                f"  {self.edge_copies} phi edge copies materialized during "
                "SSA destruction"
            )
        if self.verified:
            lines.append("  IR verified after every pass")
        lines.append(f"  total: {self.total_changes} changes")
        return "\n".join(lines)
