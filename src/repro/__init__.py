"""repro — Interprocedural constant propagation with jump functions.

A from-scratch implementation of the Callahan–Cooper–Kennedy–Torczon
interprocedural constant propagation framework ("Interprocedural
constant propagation", SIGPLAN '86) together with the jump-function
implementation study of Grove & Torczon (PLDI '93): a MiniFortran
frontend, a CFG/SSA compiler middle end, MOD/REF summaries, four forward
jump function implementations, polynomial return jump functions, the
call-graph propagation solver, and the substitution-count evaluation
harness that regenerates the study's tables.

Quick start::

    from repro import analyze_source, AnalysisConfig, JumpFunctionKind

    result = analyze_source(fortran_text)
    print(result.constants.format_report())
    print(result.substituted_constants, "references substituted")

    cheap = analyze_source(
        fortran_text,
        AnalysisConfig(jump_function=JumpFunctionKind.LITERAL),
    )
"""

from repro.config import (
    AnalysisBudget,
    AnalysisConfig,
    BudgetExceeded,
    JumpFunctionKind,
)
from repro.diagnostics import Diagnostic, DiagnosticEngine, Severity
from repro.frontend.parser import parse_file, parse_source
from repro.ipcp.driver import (
    AnalysisResult,
    analyze_file,
    analyze_file_resilient,
    analyze_program,
    analyze_source,
    analyze_source_resilient,
)
from repro.ipcp.resilience import Demotion, ResilienceReport
from repro.ir.verify import VerificationError, verify_procedure, verify_program
from repro.lattice import BOTTOM, TOP, LatticeValue, const, meet_all

__version__ = "1.0.0"

__all__ = [
    "AnalysisBudget",
    "AnalysisConfig",
    "AnalysisResult",
    "BOTTOM",
    "BudgetExceeded",
    "Demotion",
    "Diagnostic",
    "DiagnosticEngine",
    "JumpFunctionKind",
    "LatticeValue",
    "ResilienceReport",
    "Severity",
    "TOP",
    "VerificationError",
    "analyze_file",
    "analyze_file_resilient",
    "analyze_program",
    "analyze_source",
    "analyze_source_resilient",
    "const",
    "meet_all",
    "parse_file",
    "parse_source",
    "verify_procedure",
    "verify_program",
    "__version__",
]
