"""Metrics registry: named counters, gauges, and histograms.

This replaces the old ``repro.profiling.GLOBAL_COUNTERS`` module dict.
Instrumentation points that used to ``profiling.bump("parses")`` now
increment a :class:`Counter` in the process-wide default registry (the
``profiling`` shims still exist and forward here, so call sites and
tests did not have to move at once).

What the registry adds over a bare dict:

- **typed instruments** — counters only go up; gauges hold a level;
  histograms record a distribution into fixed buckets;
- **snapshot / delta / merge** — a batch worker snapshots the registry
  before each file and ships the per-file *delta* back, so per-file
  reports never over-report process-lifetime totals (the old
  ``GLOBAL_COUNTERS`` leak), and the parent merges worker deltas into
  one batch aggregate;
- **Prometheus text export** — ``repro analyze/batch --metrics FILE``
  writes the standard exposition format, scrapable as-is.

Counter updates are plain ``+=`` under the GIL, same tolerance the old
dict had; cross-file isolation comes from snapshot/delta, not from
locking.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Default histogram buckets (seconds-flavored, but histograms are
#: unit-agnostic): powers-of-ten ladder wide enough for per-file wall
#: times and per-run solver visit counts alike.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0,
    500.0, 1000.0, 5000.0,
)


class Counter:
    """Monotonically increasing named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A level that can move both ways (pool size, queue depth)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket distribution (non-cumulative storage; the
    Prometheus renderer accumulates)."""

    __slots__ = ("name", "buckets", "counts", "sum", "count")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.name = name
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts: List[int] = [0] * (len(self.buckets) + 1)  # +1 = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def quantile(self, q: float) -> Optional[float]:
        """Prometheus-style bucket quantile: the upper bound of the
        first bucket whose cumulative count reaches ``q * count``.
        Returns None on an empty histogram; observations past the last
        finite bound clamp to it (the +Inf bucket has no upper edge)."""
        return quantile_from_counts(self.buckets, self.counts, self.count, q)

    def percentiles(
        self, quantiles: Sequence[float] = (0.5, 0.95, 0.99)
    ) -> Dict[str, Optional[float]]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` convenience for
        report/SLO surfaces."""
        return {
            f"p{round(q * 100, 6):g}": self.quantile(q) for q in quantiles
        }


def quantile_from_counts(
    buckets: Sequence[float],
    counts: Sequence[int],
    count: int,
    q: float,
) -> Optional[float]:
    """Bucket-quantile shared by live :class:`Histogram` objects and
    snapshot payloads (``{"buckets", "counts", "count"}``) read back
    from artifacts. See :meth:`Histogram.quantile`."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], not {q!r}")
    if count <= 0:
        return None
    target = q * count
    cumulative = 0
    for bound, bucket_count in zip(buckets, counts):
        cumulative += bucket_count
        if cumulative and cumulative >= target:
            return float(bound)
    # Only +Inf observations remain; clamp to the largest finite bound.
    return float(buckets[-1])


class MetricsRegistry:
    """All instruments of one scope (process, or one test's sandbox)."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument access (get-or-create) -----------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, buckets)
        return instrument

    def get_histogram(self, name: str) -> Optional[Histogram]:
        """Existing histogram ``name`` or None — a read-only probe that
        never materialises an empty instrument (unlike
        :meth:`histogram`)."""
        return self._histograms.get(name)

    # -- conveniences --------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def value(self, name: str) -> int:
        """Current value of counter ``name`` (0 when never incremented)."""
        instrument = self._counters.get(name)
        return instrument.value if instrument is not None else 0

    def counters(self) -> Dict[str, int]:
        """Counter name -> value map (non-zero entries only, sorted)."""
        return {
            name: c.value
            for name, c in sorted(self._counters.items())
            if c.value
        }

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- snapshot / delta / merge (the batch-worker protocol) ----------------

    def snapshot(self) -> dict:
        """JSON-able full state; pairs with :meth:`delta_since` and
        :meth:`merge`."""
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {n: g.value for n, g in self._gauges.items()},
            "histograms": {
                n: {
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                }
                for n, h in self._histograms.items()
            },
        }

    def delta_since(self, snapshot: Mapping) -> dict:
        """What changed since ``snapshot`` — the per-file isolation
        primitive: counters and histograms subtract, gauges report
        their current level. Zero-delta entries are dropped."""
        base_counters = snapshot.get("counters", {})
        counters = {
            name: counter.value - base_counters.get(name, 0)
            for name, counter in self._counters.items()
            if counter.value - base_counters.get(name, 0)
        }
        base_hists = snapshot.get("histograms", {})
        histograms = {}
        for name, hist in self._histograms.items():
            base = base_hists.get(name)
            if base is not None and list(base.get("buckets", [])) == list(
                hist.buckets
            ):
                counts = [
                    current - previous
                    for current, previous in zip(hist.counts, base["counts"])
                ]
                total = hist.count - base.get("count", 0)
                weight = hist.sum - base.get("sum", 0.0)
            else:
                counts = list(hist.counts)
                total = hist.count
                weight = hist.sum
            if total:
                histograms[name] = {
                    "buckets": list(hist.buckets),
                    "counts": counts,
                    "sum": weight,
                    "count": total,
                }
        return {
            "counters": counters,
            "gauges": {n: g.value for n, g in self._gauges.items()},
            "histograms": histograms,
        }

    def merge(self, snapshot: Mapping) -> None:
        """Fold a snapshot/delta into this registry: counters and
        histograms add; gauges keep the maximum level (the useful
        cross-worker semantics for peaks like pool size)."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name)
            if name not in self._gauges or value > gauge.value:
                gauge.set(value)
        for name, payload in snapshot.get("histograms", {}).items():
            hist = self.histogram(name, payload.get("buckets", DEFAULT_BUCKETS))
            if list(hist.buckets) == list(payload.get("buckets", [])):
                for index, count in enumerate(payload.get("counts", [])):
                    if index < len(hist.counts):
                        hist.counts[index] += count
            hist.sum += payload.get("sum", 0.0)
            hist.count += payload.get("count", 0)

    # -- Prometheus text exposition ------------------------------------------

    def to_prometheus(self, prefix: str = "repro_") -> str:
        """Standard text exposition format (one HELP/TYPE pair per
        metric), ready for ``--metrics FILE``."""
        lines: List[str] = []
        for name in sorted(self._counters):
            metric = _sanitize(prefix + name)
            lines.append(f"# HELP {metric} repro counter {name}")
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {self._counters[name].value}")
        for name in sorted(self._gauges):
            metric = _sanitize(prefix + name)
            lines.append(f"# HELP {metric} repro gauge {name}")
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_format_float(self._gauges[name].value)}")
        for name in sorted(self._histograms):
            hist = self._histograms[name]
            metric = _sanitize(prefix + name)
            lines.append(f"# HELP {metric} repro histogram {name}")
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for bound, count in zip(hist.buckets, hist.counts):
                cumulative += count
                lines.append(
                    f'{metric}_bucket{{le="{_format_float(bound)}"}} '
                    f"{cumulative}"
                )
            cumulative += hist.counts[-1]
            lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{metric}_sum {_format_float(hist.sum)}")
            lines.append(f"{metric}_count {hist.count}")
        return "\n".join(lines) + ("\n" if lines else "")


def _sanitize(name: str) -> str:
    """Prometheus metric names admit ``[a-zA-Z_:][a-zA-Z0-9_:]*``."""
    cleaned = "".join(
        ch if ch.isalnum() or ch in "_:" else "_" for ch in name
    )
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned or "_"


def _format_float(value: float) -> str:
    """Render without a trailing ``.0`` for integral values (keeps the
    exposition stable and diff-friendly)."""
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


#: The process-wide registry every instrumentation point shares —
#: what ``repro.profiling.bump`` now writes to and ``--metrics``
#: exports.
_DEFAULT = MetricsRegistry()

#: Thread-scoped override (a stack, so scopes nest). When a thread has
#: pushed a scope, *its* instrumentation lands in the scoped registry
#: instead of the process-wide one — this is what lets the batch thread
#: executor run files concurrently and still report exact per-file
#: deltas: snapshot/delta over the shared registry would attribute a
#: sibling thread's counters to the wrong file.
_SCOPED = threading.local()


def default_registry() -> MetricsRegistry:
    stack = getattr(_SCOPED, "stack", None)
    if stack:
        return stack[-1]
    return _DEFAULT


def global_registry() -> MetricsRegistry:
    """The process-wide registry, bypassing any thread scope."""
    return _DEFAULT


def push_scope() -> MetricsRegistry:
    """Route this thread's instrumentation into a fresh registry until
    the matching :func:`pop_scope`."""
    stack = getattr(_SCOPED, "stack", None)
    if stack is None:
        stack = _SCOPED.stack = []
    registry = MetricsRegistry()
    stack.append(registry)
    return registry


def pop_scope(merge: bool = True) -> MetricsRegistry:
    """End this thread's innermost scope. With ``merge`` (the default)
    the scoped totals are folded into the enclosing registry, so
    process-lifetime accounting still sees everything."""
    stack = getattr(_SCOPED, "stack", None)
    if not stack:
        raise RuntimeError("pop_scope without a matching push_scope")
    registry = stack.pop()
    if merge:
        default_registry().merge(registry.snapshot())
    return registry


def inc(name: str, amount: int = 1) -> None:
    default_registry().inc(name, amount)


def observe(name: str, value: float) -> None:
    default_registry().observe(name, value)


def value(name: str) -> int:
    return default_registry().value(name)


def snapshot() -> dict:
    return default_registry().snapshot()


def delta_since(snap: Mapping) -> dict:
    return default_registry().delta_since(snap)


def reset() -> None:
    default_registry().reset()
