"""Observability layer: structured tracing, metrics, and constant
provenance.

Three pillars, each usable on its own and all wired through the
pipeline (frontend -> solver -> engine -> batch -> CLI):

- :mod:`repro.obs.trace` — nested spans and typed instant events,
  exported as Chrome trace-event JSON (``--trace FILE``; loads in
  Perfetto / ``chrome://tracing``). Zero-cost when disabled: hot call
  sites guard on the module flag ``trace.ENABLED`` and allocate
  nothing.
- :mod:`repro.obs.metrics` — a registry of named counters, gauges, and
  histograms replacing the old ``profiling.GLOBAL_COUNTERS`` dict;
  snapshot/delta/merge across batch workers and Prometheus text export
  (``--metrics FILE``).
- :mod:`repro.obs.provenance` — per-cell derivation trees for the
  CONSTANTS sets: which jump-function applications along which
  call-graph edges produced each value, which call-site meet killed a
  would-be constant, and which demotions coarsened it
  (``repro analyze --explain NAME@PROC``).

See ``docs/OBSERVABILITY.md`` for the event taxonomy and output
formats.
"""

from repro.obs import metrics, trace
from repro.obs.provenance import ConstantProvenance, build_provenance

__all__ = [
    "ConstantProvenance",
    "build_provenance",
    "metrics",
    "trace",
]
