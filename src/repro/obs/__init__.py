"""Observability layer: structured tracing, metrics, and constant
provenance.

Three pillars, each usable on its own and all wired through the
pipeline (frontend -> solver -> engine -> batch -> CLI):

- :mod:`repro.obs.trace` — nested spans and typed instant events,
  exported as Chrome trace-event JSON (``--trace FILE``; loads in
  Perfetto / ``chrome://tracing``). Zero-cost when disabled: hot call
  sites guard on the module flag ``trace.ENABLED`` and allocate
  nothing.
- :mod:`repro.obs.metrics` — a registry of named counters, gauges, and
  histograms replacing the old ``profiling.GLOBAL_COUNTERS`` dict;
  snapshot/delta/merge across batch workers and Prometheus text export
  (``--metrics FILE``).
- :mod:`repro.obs.provenance` — per-cell derivation trees for the
  CONSTANTS sets: which jump-function applications along which
  call-graph edges produced each value, which call-site meet killed a
  would-be constant, and which demotions coarsened it
  (``repro analyze --explain NAME@PROC``).

Request-scoped telemetry rides on top of those pillars:

- :mod:`repro.obs.context` — ``request_id``/``trace_id`` correlation
  context, propagated across threads and pool-worker processes;
- :mod:`repro.obs.log` — leveled, schema-versioned JSON-lines logging
  (``--log FILE|-``) where every record carries the correlation ids;
- :mod:`repro.obs.timeline` — per-request stage accounting (queue /
  parse / solve / opt / render), the live ring buffer behind
  ``repro top`` and the daemon's ``obs`` op, and the offline
  ``repro obs report`` artifact joiner.

See ``docs/OBSERVABILITY.md`` for the event taxonomy and output
formats.
"""

from repro.obs import context, log, metrics, timeline, trace
from repro.obs.provenance import ConstantProvenance, build_provenance

__all__ = [
    "ConstantProvenance",
    "build_provenance",
    "context",
    "log",
    "metrics",
    "timeline",
    "trace",
]
