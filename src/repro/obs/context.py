"""Request-scoped correlation context: ``request_id`` / ``trace_id``.

One :class:`RequestContext` identifies the unit of work every telemetry
record should correlate on — a daemon request (``r000042``), a CLI
invocation (``cli-analyze``), or a batch file. The structured log
(:mod:`repro.obs.log`) stamps both ids on every record; the tracer's
flow events (:mod:`repro.obs.trace`) use :func:`flow_id` to stitch a
request's worker spans back to its root span.

Storage mirrors the engine's worker-state layering
(:mod:`repro.engine.parallel`): a module global under a
``threading.local`` override. The module global is what fork-context
pool workers inherit copy-on-write and what an engine's own worker
threads fall through to; the thread-local is what keeps concurrent
batch threads (and the daemon's connection-handler threads) from
reading a sibling's context. ``threading.local`` survives fork for the
forking thread itself, so a dispatcher that calls
:func:`set_context` covers both layers for its children.

Crossing a *spawn* (or any pickled) process boundary needs the ids
shipped explicitly — :meth:`RequestContext.ids` / :func:`from_ids` are
the wire format, and ``repro.engine.parallel._ctx_call`` is the
carrier.
"""

from __future__ import annotations

import threading
import zlib
from contextlib import contextmanager
from typing import Iterator, Optional, Tuple


class RequestContext:
    """The correlation ids of one unit of work.

    ``trace_id`` groups many requests of one session (a daemon run, a
    CLI invocation); it defaults to the ``request_id`` so a lone
    context is still fully correlated.
    """

    __slots__ = ("request_id", "trace_id")

    def __init__(self, request_id: str, trace_id: Optional[str] = None):
        self.request_id = request_id
        self.trace_id = trace_id if trace_id is not None else request_id

    def ids(self) -> Tuple[str, str]:
        """The picklable wire form (pairs with :func:`from_ids`)."""
        return (self.request_id, self.trace_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RequestContext(request_id={self.request_id!r}, "
            f"trace_id={self.trace_id!r})"
        )


_GLOBAL: Optional[RequestContext] = None
_TLS = threading.local()


def set_context(context: Optional[RequestContext]) -> None:
    """Install ``context`` for this thread *and* as the process global
    (what fork children and fresh worker threads inherit)."""
    global _GLOBAL
    _GLOBAL = context
    _TLS.context = context


def set_thread_context(context: Optional[RequestContext]) -> None:
    """Install (or clear) only this thread's context, leaving the
    global for other threads — the batch-thread / connection-handler
    isolation primitive."""
    _TLS.context = context


def current() -> Optional[RequestContext]:
    context = getattr(_TLS, "context", None)
    if context is not None:
        return context
    return _GLOBAL


def current_ids() -> Optional[Tuple[str, str]]:
    """``(request_id, trace_id)`` of the current context, or None —
    what a pool submission ships across the process boundary."""
    context = current()
    return context.ids() if context is not None else None


def from_ids(ids: Optional[Tuple[str, str]]) -> Optional[RequestContext]:
    if ids is None:
        return None
    return RequestContext(ids[0], ids[1])


def clear() -> None:
    """Drop both layers (end of a session, test teardown)."""
    set_context(None)


def flow_id(request_id: str) -> int:
    """A stable non-zero integer id for Chrome-trace flow events,
    derived from the request id so every process computes the same
    value without coordination."""
    return (zlib.crc32(request_id.encode("utf-8")) & 0xFFFFFFFF) or 1


@contextmanager
def request(
    request_id: str,
    trace_id: Optional[str] = None,
    thread_only: bool = False,
) -> Iterator[RequestContext]:
    """Scope a context over a ``with`` block, restoring whatever was
    installed before (per-thread when ``thread_only``)."""
    installer = set_thread_context if thread_only else set_context
    previous = current()
    context = RequestContext(request_id, trace_id)
    installer(context)
    try:
        yield context
    finally:
        installer(previous)
