"""Structured logging: leveled, schema-versioned JSON lines.

One record per line, machine-readable end to end::

    {"v": 1, "ts": 1723111845.201, "level": "info",
     "event": "request.start", "pid": 4242,
     "request_id": "r000007", "trace_id": "s-4242",
     "op": "analyze", "path": "prog.f", "queue_ms": 0.4}

Every record carries the correlation ids of the current
:mod:`repro.obs.context` — that is the join key across the daemon's
log, its Chrome trace (span/flow ``request_id`` args), and per-request
metrics deltas, and what ``repro obs report`` joins on. Records
emitted with no context installed fall back to ``request_id="-"``;
long-lived processes install a session context ("server", "cli-...")
at startup so that never happens in practice.

Zero-cost-when-disabled, same contract as :mod:`repro.obs.trace`
(bench-gated in ``benchmarks/test_observability_overhead.py``): hot
call sites guard on the module flag ``log.ENABLED`` before building
any field dict, the module helpers are no-ops without a logger, and no
logger object exists until :func:`enable` runs.

Rate limiting is per event name: after ``max_per_event`` records of
one event, further ones are dropped and counted; :func:`disable`
emits one ``log.suppressed`` summary record per throttled event, so a
flooded log is visibly truncated rather than silently partial (and
the cap keeps the artifact bounded and deterministic, unlike a
time-windowed limiter).
"""

from __future__ import annotations

import io
import json
import os
import sys
import threading
import time
from typing import Any, Dict, List, Optional

from repro.obs import context as _context

#: Hot-path guard; only ever True while a logger is installed.
ENABLED: bool = False

_LOGGER: Optional["Logger"] = None

#: Version tag of the record shape. 1 = v/ts/level/event/pid/
#: request_id/trace_id plus free-form event fields.
LOG_SCHEMA_VERSION = 1

#: Severity order (records below the logger's level are dropped).
LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warn": 30, "error": 40}

#: Default per-event-name record cap (see module docstring).
DEFAULT_MAX_PER_EVENT = 10_000

#: Keys the logger owns; event fields may override the correlation
#: pair (a handler thread attributing a record to a request it has not
#: installed) but never the envelope itself.
_ENVELOPE_KEYS = ("v", "ts", "level", "event", "pid")


class Logger:
    """Writes JSONL records for one enable()..disable() window."""

    def __init__(
        self,
        destination,
        level: str = "info",
        max_per_event: int = DEFAULT_MAX_PER_EVENT,
        clock=time.time,
    ):
        if level not in LEVELS:
            raise ValueError(
                f"unknown log level {level!r} (known: "
                f"{', '.join(sorted(LEVELS))})"
            )
        self.level = level
        self.level_no = LEVELS[level]
        self.max_per_event = max_per_event
        self._clock = clock
        self._lock = threading.Lock()
        self._emitted: Dict[str, int] = {}
        self._suppressed: Dict[str, int] = {}
        self.records_written = 0
        if isinstance(destination, str):
            if destination == "-":
                # stdout carries the subcommands' reports; the log
                # stream goes to stderr so the two never interleave.
                self._stream = sys.stderr
                self._owns_stream = False
            else:
                self._stream = open(destination, "w", encoding="utf-8")
                self._owns_stream = True
        else:
            self._stream = destination
            self._owns_stream = False

    # -- emission ------------------------------------------------------------

    def emit(self, level: str, event: str, fields: Dict[str, Any]) -> None:
        if LEVELS.get(level, 0) < self.level_no:
            return
        count = self._emitted.get(event, 0)
        if count >= self.max_per_event:
            self._suppressed[event] = self._suppressed.get(event, 0) + 1
            return
        self._emitted[event] = count + 1
        self._write(level, event, fields)

    def _write(self, level: str, event: str, fields: Dict[str, Any]) -> None:
        context = _context.current()
        record: Dict[str, Any] = {
            "v": LOG_SCHEMA_VERSION,
            "ts": round(self._clock(), 6),
            "level": level,
            "event": event,
            "pid": os.getpid(),
            "request_id": (
                context.request_id if context is not None else "-"
            ),
            "trace_id": context.trace_id if context is not None else "-",
        }
        for key, value in fields.items():
            if key not in _ENVELOPE_KEYS:
                record[key] = value
        line = json.dumps(record, separators=(",", ":"), default=str)
        with self._lock:
            try:
                self._stream.write(line + "\n")
                self._stream.flush()
            except (OSError, ValueError):
                return  # a torn log stream must never take the host down
            self.records_written += 1

    def finish(self) -> None:
        """Emit the suppression summary and release the stream."""
        for event in sorted(self._suppressed):
            self._write(
                "warn",
                "log.suppressed",
                {
                    "suppressed_event": event,
                    "dropped": self._suppressed[event],
                    "max_per_event": self.max_per_event,
                },
            )
        self._suppressed.clear()
        if self._owns_stream:
            try:
                self._stream.close()
            except OSError:
                pass


# -- module-level API ---------------------------------------------------------


def enable(
    destination,
    level: str = "info",
    max_per_event: int = DEFAULT_MAX_PER_EVENT,
    clock=time.time,
) -> Logger:
    """Install a fresh logger (path, ``"-"`` for stderr, or a stream)
    and flip :data:`ENABLED`. Returns it."""
    global _LOGGER, ENABLED
    if _LOGGER is not None:
        disable()
    _LOGGER = Logger(
        destination, level=level, max_per_event=max_per_event, clock=clock
    )
    ENABLED = True
    return _LOGGER


def disable() -> Optional[Logger]:
    """Flush the suppression summary, remove the logger, return it."""
    global _LOGGER, ENABLED
    logger = _LOGGER
    _LOGGER = None
    ENABLED = False
    if logger is not None:
        logger.finish()
    return logger


def active() -> Optional[Logger]:
    return _LOGGER


def emit(level: str, event: str, **fields: Any) -> None:
    """One record. Hot call sites guard with ``if log.ENABLED:`` so
    field dicts are never built when disabled."""
    logger = _LOGGER
    if logger is not None:
        logger.emit(level, event, fields)


def debug(event: str, **fields: Any) -> None:
    logger = _LOGGER
    if logger is not None:
        logger.emit("debug", event, fields)


def info(event: str, **fields: Any) -> None:
    logger = _LOGGER
    if logger is not None:
        logger.emit("info", event, fields)


def warn(event: str, **fields: Any) -> None:
    logger = _LOGGER
    if logger is not None:
        logger.emit("warn", event, fields)


def error(event: str, **fields: Any) -> None:
    logger = _LOGGER
    if logger is not None:
        logger.emit("error", event, fields)


# -- schema validation and reading (tests, CI, repro obs report) --------------


def validate_log_records(lines) -> List[str]:
    """Validate JSONL log lines; returns a list of problems (empty
    means every record is schema-conformant and correlated)."""
    problems: List[str] = []
    for index, line in enumerate(lines):
        if isinstance(line, bytes):
            line = line.decode("utf-8", errors="replace")
        stripped = line.strip()
        if not stripped:
            continue
        where = f"line {index + 1}"
        try:
            record = json.loads(stripped)
        except ValueError as err:
            problems.append(f"{where}: not JSON ({err})")
            continue
        if not isinstance(record, dict):
            problems.append(f"{where}: record is not an object")
            continue
        if record.get("v") != LOG_SCHEMA_VERSION:
            problems.append(
                f"{where}: schema version {record.get('v')!r} != "
                f"{LOG_SCHEMA_VERSION}"
            )
        for field in ("ts", "level", "event", "pid",
                      "request_id", "trace_id"):
            if field not in record:
                problems.append(f"{where}: missing {field!r}")
        level = record.get("level")
        if level is not None and level not in LEVELS:
            problems.append(f"{where}: unknown level {level!r}")
        for field in ("request_id", "trace_id"):
            value = record.get(field)
            if field in record and (
                not isinstance(value, str) or not value
            ):
                problems.append(
                    f"{where}: {field!r} must be a non-empty string"
                )
        if not isinstance(record.get("event", ""), str):
            problems.append(f"{where}: 'event' must be a string")
    return problems


def read_records(source) -> List[dict]:
    """Parse a JSONL log (path or stream) into record dicts,
    skipping blank lines. Raises ValueError on a non-JSON line."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return read_records(handle)
    if isinstance(source, (bytes, str)):  # pragma: no cover - guarded above
        source = io.StringIO(source)
    records: List[dict] = []
    for line in source:
        stripped = line.strip()
        if stripped:
            records.append(json.loads(stripped))
    return records
