"""Per-request latency accounting: stage timelines, a live ring
buffer, and the offline artifact joiner behind ``repro obs report``.

A :class:`RequestTimeline` follows one request through the daemon and
segments its wall time into the stage buckets the SLO surfaces report
on::

    queue  — admission to dispatch (measured by the dispatcher)
    parse  — frontend stages (parse, lower)
    solve  — IPCP stages (prepare, jump functions, propagate,
             substitution)
    opt    — optimization pipeline (opt.* passes)
    render — everything else inside the request (response encoding,
             cache serialization): total minus the accounted buckets

Raw stage timings come from the same :func:`repro.profiling.maybe_stage`
chokepoint the profiler uses: the active timeline registers itself as a
thread-scoped *observer* (:func:`push_observer`), so stage attribution
is exact even with concurrent requests in flight. Nested stages (the
``fingerprint`` stage runs inside ``return_functions``) are recorded
raw but excluded from bucket sums, so buckets never double-count.

Completed timelines land in a :class:`TimelineRing` — the fixed-size
time series behind ``repro top`` and the daemon's ``obs`` protocol op.

The bottom half of the module is the offline side: classify saved
telemetry artifacts (JSONL log / Chrome trace / Prometheus text), join
them by ``request_id``, and render one per-request breakdown table —
``repro obs report``.
"""

from __future__ import annotations

import json
import re
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs import metrics as _metrics

#: Frontend stages (repro.ipcp.driver naming).
PARSE_STAGES = ("parse", "lower")

#: Solver stages. ``fingerprint`` is deliberately absent: it runs
#: nested inside ``return_functions`` and would double-count.
SOLVE_STAGES = (
    "prepare",
    "return_functions",
    "forward_functions",
    "propagate",
    "substitution",
)

#: The buckets a breakdown reports, in render order.
BUCKETS = ("queue", "parse", "solve", "opt", "render")


def classify_stage(name: str) -> Optional[str]:
    """Bucket for a raw stage name, or None for stages that are part
    of an already-counted enclosing stage (``fingerprint``) or unknown."""
    if name in PARSE_STAGES:
        return "parse"
    if name in SOLVE_STAGES:
        return "solve"
    if name == "opt" or name.startswith("opt."):
        return "opt"
    return None


class RequestTimeline:
    """Stage accounting for one request (also the stage observer)."""

    __slots__ = (
        "request_id",
        "op",
        "path",
        "queue_s",
        "stages",
        "status",
        "replayed",
        "total_s",
        "started_at",
        "_start",
    )

    def __init__(
        self,
        request_id: str,
        op: str = "",
        path: str = "",
        queue_s: float = 0.0,
    ):
        self.request_id = request_id
        self.op = op
        self.path = path
        self.queue_s = queue_s
        self.stages: Dict[str, float] = {}
        self.status = "pending"
        self.replayed = False
        self.total_s = 0.0
        self.started_at = time.time()
        self._start = time.perf_counter()

    # -- observer protocol (called from profiling.maybe_stage) ---------------

    def record_stage(self, name: str, seconds: float) -> None:
        self.stages[name] = self.stages.get(name, 0.0) + seconds

    # -- lifecycle -----------------------------------------------------------

    def finish(self, status: str, replayed: bool = False) -> None:
        self.status = status
        self.replayed = replayed
        self.total_s = time.perf_counter() - self._start

    def buckets(self) -> Dict[str, float]:
        """Bucketed seconds; ``render`` absorbs whatever the raw
        stages did not account for (never negative)."""
        sums = {"parse": 0.0, "solve": 0.0, "opt": 0.0}
        for name, seconds in self.stages.items():
            bucket = classify_stage(name)
            if bucket is not None:
                sums[bucket] += seconds
        accounted = sums["parse"] + sums["solve"] + sums["opt"]
        return {
            "queue": self.queue_s,
            "parse": sums["parse"],
            "solve": sums["solve"],
            "opt": sums["opt"],
            "render": max(0.0, self.total_s - accounted),
        }

    def entry(self) -> Dict[str, Any]:
        """Flat millisecond record for the ring buffer, the
        ``request.end`` log record, and the slow-request dump."""
        buckets = self.buckets()
        record: Dict[str, Any] = {
            "request_id": self.request_id,
            "op": self.op,
            "path": self.path,
            "status": self.status,
            "replayed": self.replayed,
            "ts": round(self.started_at, 6),
        }
        for bucket in BUCKETS:
            record[f"{bucket}_ms"] = round(buckets[bucket] * 1000.0, 3)
        record["total_ms"] = round(
            (self.queue_s + self.total_s) * 1000.0, 3
        )
        return record


# -- thread-scoped observer stack ---------------------------------------------

_OBSERVERS = threading.local()


def push_observer(observer: RequestTimeline) -> None:
    """Route this thread's stage timings into ``observer`` until the
    matching :func:`pop_observer` (a stack, so nesting works — e.g. a
    request that re-enters the engine)."""
    stack = getattr(_OBSERVERS, "stack", None)
    if stack is None:
        stack = _OBSERVERS.stack = []
    stack.append(observer)


def pop_observer() -> RequestTimeline:
    stack = getattr(_OBSERVERS, "stack", None)
    if not stack:
        raise RuntimeError("pop_observer without a matching push_observer")
    return stack.pop()


def current_observer() -> Optional[RequestTimeline]:
    """The innermost observer of this thread, or None. Checked on the
    hot stage path, so it must stay one TLS load + a truth test."""
    stack = getattr(_OBSERVERS, "stack", None)
    return stack[-1] if stack else None


# -- the live time series -----------------------------------------------------


class TimelineRing:
    """Fixed-capacity ring of completed request entries (newest kept),
    safe for one writer thread + concurrent readers."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("ring capacity must be >= 1")
        self.capacity = capacity
        self._entries: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self.total_added = 0

    def add(self, entry: Dict[str, Any]) -> None:
        with self._lock:
            self._entries.append(entry)
            self.total_added += 1
            if len(self._entries) > self.capacity:
                del self._entries[: len(self._entries) - self.capacity]

    def entries(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Oldest→newest; ``limit`` keeps the newest N."""
        with self._lock:
            entries = list(self._entries)
        if limit is not None and limit >= 0:
            entries = entries[len(entries) - min(limit, len(entries)):]
        return entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


# -- offline artifact analysis (repro obs report) -----------------------------


def classify_artifact(text: str) -> str:
    """``"trace"`` / ``"log"`` / ``"metrics"`` / ``"unknown"`` from
    content alone, so report arguments need no flags."""
    stripped = text.lstrip()
    if not stripped:
        return "unknown"
    if stripped.startswith("{"):
        try:
            payload = json.loads(stripped.split("\n", 1)[0])
        except ValueError:
            payload = None
        if isinstance(payload, dict):
            if "traceEvents" in payload:
                return "trace"
            if "v" in payload and "event" in payload:
                return "log"
        # multi-line pretty-printed JSON: try the whole text
        try:
            payload = json.loads(stripped)
        except ValueError:
            return "unknown"
        return "trace" if isinstance(payload, dict) and "traceEvents" in payload else "unknown"
    if stripped.startswith("#") or re.match(r"^[a-zA-Z_:]", stripped):
        return "metrics"
    return "unknown"


def load_artifact(path: str) -> Tuple[str, Any]:
    """Read + classify + parse one artifact file. Returns
    ``(kind, parsed)`` where parsed is trace payload dict / list of
    log records / prometheus text."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    kind = classify_artifact(text)
    if kind == "trace":
        return kind, json.loads(text)
    if kind == "log":
        records = []
        for line in text.splitlines():
            line = line.strip()
            if line:
                records.append(json.loads(line))
        return kind, records
    return kind, text


_PROM_BUCKET = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)_bucket\{le="(?P<le>[^"]+)"\}\s+'
    r"(?P<value>\d+)\s*$"
)
_PROM_COUNT = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)_count\s+(?P<value>\d+)\s*$"
)


def parse_prometheus_histograms(text: str) -> Dict[str, dict]:
    """Histogram payloads (``{"buckets", "counts", "count"}``, bucket
    counts de-cumulated) from Prometheus text exposition — enough to
    recompute quantiles offline."""
    cumulative: Dict[str, List[Tuple[float, int]]] = {}
    totals: Dict[str, int] = {}
    for line in text.splitlines():
        match = _PROM_BUCKET.match(line)
        if match:
            name = match.group("name")
            le = match.group("le")
            bound = float("inf") if le == "+Inf" else float(le)
            cumulative.setdefault(name, []).append(
                (bound, int(match.group("value")))
            )
            continue
        match = _PROM_COUNT.match(line)
        if match:
            totals[match.group("name")] = int(match.group("value"))
    histograms: Dict[str, dict] = {}
    for name, pairs in cumulative.items():
        pairs.sort(key=lambda item: item[0])
        finite = [(bound, value) for bound, value in pairs if bound != float("inf")]
        counts: List[int] = []
        previous = 0
        for _, value in finite:
            counts.append(value - previous)
            previous = value
        total = totals.get(name, pairs[-1][1] if pairs else 0)
        counts.append(total - previous)  # the +Inf bucket
        histograms[name] = {
            "buckets": [bound for bound, _ in finite],
            "counts": counts,
            "count": total,
        }
    return histograms


def build_report(artifacts: Iterable[Tuple[str, Any]]) -> Dict[str, Any]:
    """Join parsed artifacts by request_id.

    Returns ``{"requests": [row...], "histograms": {...}}`` where each
    row is a per-request breakdown assembled preferentially from the
    log's ``request.end`` record, with the trace contributing the root
    span duration and the number of worker processes flow-linked to the
    request.
    """
    rows: Dict[str, Dict[str, Any]] = {}
    histograms: Dict[str, dict] = {}

    def row(request_id: str) -> Dict[str, Any]:
        existing = rows.get(request_id)
        if existing is None:
            existing = rows[request_id] = {
                "request_id": request_id,
                "sources": set(),
            }
        return existing

    for kind, parsed in artifacts:
        if kind == "log":
            for record in parsed:
                request_id = record.get("request_id")
                if not request_id or request_id == "-":
                    continue
                event = record.get("event", "")
                if event == "request.start":
                    target = row(request_id)
                    target.setdefault("op", record.get("op", ""))
                    target.setdefault("path", record.get("path", ""))
                    target["sources"].add("log")
                elif event in ("request.end", "request.slow"):
                    target = row(request_id)
                    target["sources"].add("log")
                    for field in (
                        "op", "path", "status", "replayed",
                        "queue_ms", "parse_ms", "solve_ms", "opt_ms",
                        "render_ms", "total_ms",
                    ):
                        if field in record:
                            target[field] = record[field]
                    if event == "request.slow":
                        target["slow"] = True
                elif event == "cli.start":
                    target = row(request_id)
                    target.setdefault("op", record.get("command", ""))
                    target["sources"].add("log")
                elif event == "cli.end":
                    target = row(request_id)
                    target["sources"].add("log")
                    code = record.get("exit_code")
                    target.setdefault(
                        "status",
                        "ok" if code == 0 else f"exit {code}",
                    )
        elif kind == "trace":
            events = parsed.get("traceEvents", [])
            flow_to_request: Dict[Any, str] = {}
            for event in events:
                if event.get("ph") == "s" and "id" in event:
                    request_id = (event.get("args") or {}).get("request_id")
                    if request_id:
                        flow_to_request[event["id"]] = request_id
            worker_pids: Dict[str, set] = {}
            for event in events:
                phase = event.get("ph")
                args = event.get("args") or {}
                if phase == "X" and args.get("request_id"):
                    target = row(args["request_id"])
                    target["sources"].add("trace")
                    target["trace_total_ms"] = round(
                        event.get("dur", 0) / 1000.0, 3
                    )
                    if args.get("op"):
                        target.setdefault("op", args["op"])
                    if args.get("path"):
                        target.setdefault("path", args["path"])
                    if not target.get("op"):
                        target["op"] = event.get("name", "")
                elif phase in ("t", "f") and event.get("id") in flow_to_request:
                    request_id = flow_to_request[event["id"]]
                    worker_pids.setdefault(request_id, set()).add(
                        event.get("pid")
                    )
            for request_id, pids in worker_pids.items():
                target = row(request_id)
                target["sources"].add("trace")
                target["workers"] = len(pids)
        elif kind == "metrics":
            for name, payload in parse_prometheus_histograms(parsed).items():
                histograms[name] = payload

    ordered = [rows[key] for key in sorted(rows)]
    for target in ordered:
        target["sources"] = "".join(
            flag for flag, source in (("L", "log"), ("T", "trace"))
            if source in target["sources"]
        )
    return {"requests": ordered, "histograms": histograms}


def _format_ms(value: Any) -> str:
    if value is None or value == "":
        return "-"
    return f"{float(value):.1f}"


def render_report(report: Dict[str, Any]) -> str:
    """The ``repro obs report`` table: one line per request plus a
    quantile footer for any histograms found in metrics artifacts."""
    lines: List[str] = []
    header = (
        f"{'request':<10} {'op':<16} {'status':<8} {'src':<4} "
        f"{'queue':>8} {'parse':>8} {'solve':>8} {'opt':>8} "
        f"{'render':>8} {'total':>9}  path"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for target in report.get("requests", []):
        total = target.get("total_ms", target.get("trace_total_ms"))
        flags = target.get("sources", "")
        if target.get("slow"):
            flags += "!"
        lines.append(
            f"{target.get('request_id', '?'):<10} "
            f"{str(target.get('op', '')):<16} "
            f"{str(target.get('status', '?')):<8} "
            f"{flags:<4} "
            f"{_format_ms(target.get('queue_ms')):>8} "
            f"{_format_ms(target.get('parse_ms')):>8} "
            f"{_format_ms(target.get('solve_ms')):>8} "
            f"{_format_ms(target.get('opt_ms')):>8} "
            f"{_format_ms(target.get('render_ms')):>8} "
            f"{_format_ms(total):>9}  "
            f"{target.get('path', '')}"
        )
    if not report.get("requests"):
        lines.append("(no correlated requests found)")
    histograms = report.get("histograms", {})
    latency = {
        name: payload
        for name, payload in sorted(histograms.items())
        if "seconds" in name
    }
    if latency:
        lines.append("")
        lines.append("latency quantiles (from metrics artifacts):")
        for name, payload in latency.items():
            quantiles = []
            for q, label in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
                value = _metrics.quantile_from_counts(
                    payload["buckets"], payload["counts"],
                    payload["count"], q,
                )
                quantiles.append(
                    f"{label}<={value * 1000.0:g}ms"
                    if value is not None else f"{label}=-"
                )
            lines.append(
                f"  {name}: count={payload['count']} "
                + " ".join(quantiles)
            )
    return "\n".join(lines) + "\n"
