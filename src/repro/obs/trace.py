"""Structured tracing: nested spans and typed instant events.

Events are stored directly in Chrome trace-event form (plain dicts, so
they pickle across process-pool boundaries) and export via
:func:`to_chrome` as a JSON object Perfetto / ``chrome://tracing``
loads as-is. Spans become ``"ph": "X"`` complete events (``ts`` +
``dur``); point events (a meet reaching bottom, a cache miss, a
demotion) become ``"ph": "i"`` instants. Timestamps are microseconds
from ``time.perf_counter_ns() // 1000``, the unit the trace-event
format specifies.

Zero-cost-when-disabled contract (bench-gated in
``benchmarks/test_bench_pipeline.py``):

- hot call sites guard on the module flag ``trace.ENABLED`` before
  building any attribute dict — ``if trace.ENABLED:
  trace.instant(...)`` costs one global load and a branch;
- ``span()`` returns the shared :data:`_NULL_SPAN` singleton when
  disabled — no object allocation per call;
- there is no tracer instance at all until :func:`enable` runs.

Track layout: each OS thread gets its own ``tid`` track; each worker
process gets its own ``pid`` track (the parent adopts child events
verbatim via :meth:`Tracer.adopt`, keeping the child's pid), so
parallel runs render as parallel tracks in Perfetto.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

#: Hot-path guard. Call sites check this module attribute before doing
#: any event-building work; it is only ever True while a tracer is
#: installed.
ENABLED: bool = False

_TRACER: Optional["Tracer"] = None


def _now_us() -> int:
    return time.perf_counter_ns() // 1000


def _tid() -> int:
    get_native = getattr(threading, "get_native_id", None)
    return get_native() if get_native is not None else threading.get_ident()


class Tracer:
    """Accumulates Chrome trace events for one enable()..disable()
    window (plus any worker events adopted into it)."""

    def __init__(self) -> None:
        self.owner_pid = os.getpid()
        self.events: List[Dict[str, Any]] = []

    # -- emission ------------------------------------------------------------

    def instant(self, event_name: str, **attrs: Any) -> None:
        event: Dict[str, Any] = {
            "name": event_name,
            "ph": "i",
            "s": "t",
            "ts": _now_us(),
            "pid": os.getpid(),
            "tid": _tid(),
        }
        if attrs:
            event["args"] = attrs
        self.events.append(event)

    def complete(
        self,
        event_name: str,
        start_us: int,
        duration_us: int,
        attrs: Optional[dict],
    ) -> None:
        event: Dict[str, Any] = {
            "name": event_name,
            "ph": "X",
            "ts": start_us,
            "dur": duration_us,
            "pid": os.getpid(),
            "tid": _tid(),
        }
        if attrs:
            event["args"] = attrs
        self.events.append(event)

    def flow(self, event_name: str, phase: str, flow_id: int, **attrs: Any) -> None:
        """Chrome flow event: ``phase`` is ``"s"`` (start, at the
        request's root span), ``"t"`` (step, inside each worker span it
        passes through), or ``"f"`` (finish). All events sharing one
        ``flow_id`` render as connecting arrows across pid/tid tracks —
        the cross-process stitching primitive."""
        if phase not in ("s", "t", "f"):
            raise ValueError(f"flow phase must be 's', 't' or 'f', not {phase!r}")
        event: Dict[str, Any] = {
            "name": event_name,
            "ph": phase,
            "id": flow_id,
            "ts": _now_us(),
            "pid": os.getpid(),
            "tid": _tid(),
        }
        if phase == "f":
            # bind the finish to the enclosing slice's end, the
            # rendering Perfetto expects for request-shaped flows
            event["bp"] = "e"
        if attrs:
            event["args"] = attrs
        self.events.append(event)

    # -- worker shipping -----------------------------------------------------

    def event_count(self) -> int:
        return len(self.events)

    def events_since(self, marker: int) -> List[Dict[str, Any]]:
        """Events appended after ``marker`` (a prior
        :meth:`event_count`) — what a pool worker ships back."""
        return self.events[marker:]

    def adopt(self, events: List[Dict[str, Any]]) -> None:
        """Fold worker events in verbatim: the child's pid/tid are kept
        so each worker renders as its own Perfetto track."""
        self.events.extend(events)

    # -- export --------------------------------------------------------------

    def to_chrome(self) -> Dict[str, Any]:
        """The ``{"traceEvents": [...]}`` object Perfetto loads. Adds
        process_name metadata for every pid seen so tracks are
        labelled."""
        pids = sorted({event["pid"] for event in self.events})
        metadata = [
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": 0,
                "args": {
                    "name": "repro"
                    if pid == self.owner_pid
                    else f"repro worker {pid}"
                },
            }
            for pid in pids
        ]
        return {
            "traceEvents": metadata + self.events,
            "displayTimeUnit": "ms",
        }


class _Span:
    """Live span: records entry time, appends one "X" event on exit."""

    __slots__ = ("_name", "_attrs", "_start")

    def __init__(self, name: str, attrs: Optional[dict]):
        self._name = name
        self._attrs = attrs
        self._start = 0

    def __enter__(self) -> "_Span":
        self._start = _now_us()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        tracer = _TRACER
        if tracer is not None:
            tracer.complete(
                self._name, self._start, _now_us() - self._start, self._attrs
            )


class _NullSpan:
    """Shared no-op span for the disabled path (never allocated per
    call)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


# -- module-level API ---------------------------------------------------------


def enable() -> Tracer:
    """Install a fresh tracer and flip :data:`ENABLED`. Returns it."""
    global _TRACER, ENABLED
    _TRACER = Tracer()
    ENABLED = True
    return _TRACER


def disable() -> Optional[Tracer]:
    """Remove the tracer (returning it, so callers can still export)."""
    global _TRACER, ENABLED
    tracer = _TRACER
    _TRACER = None
    ENABLED = False
    return tracer


def active() -> Optional[Tracer]:
    return _TRACER


def span(event_name: str, **attrs: Any):
    """Context manager timing a region. Returns the no-op singleton
    when tracing is disabled. (The first argument is positional-only in
    spirit — attributes named ``name`` are welcome in ``attrs``.)"""
    if not ENABLED:
        return _NULL_SPAN
    return _Span(event_name, attrs or None)


def instant(event_name: str, **attrs: Any) -> None:
    """Point event. Callers on hot paths should guard with
    ``if trace.ENABLED:`` so attribute dicts are never built when
    disabled."""
    tracer = _TRACER
    if tracer is not None:
        tracer.instant(event_name, **attrs)


def flow(event_name: str, phase: str, flow_id: int, **attrs: Any) -> None:
    """Flow event (see :meth:`Tracer.flow`). Guard hot call sites with
    ``if trace.ENABLED:`` as with :func:`instant`."""
    tracer = _TRACER
    if tracer is not None:
        tracer.flow(event_name, phase, flow_id, **attrs)


@contextmanager
def session() -> Iterator[Tracer]:
    """enable()/disable() bracket for tests and CLI entry points."""
    tracer = enable()
    try:
        yield tracer
    finally:
        disable()


# -- schema validation (shared by tests and the CI smoke job) -----------------


def validate_chrome_trace(payload: Any) -> List[str]:
    """Validate a Chrome trace-event JSON object; returns a list of
    problems (empty means Perfetto-loadable). Checks the fields the
    format requires (ts/pid/tid everywhere, dur on "X" events) and
    that complete events nest properly per (pid, tid) track."""
    problems: List[str] = []
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        return ["top-level object must be a dict with a 'traceEvents' key"]
    events = payload["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' must be a list"]
    spans_by_track: Dict[tuple, List[tuple]] = {}
    flow_starts: Dict[Any, int] = {}
    flow_steps: List[tuple] = []
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event #{index} is not an object")
            continue
        where = f"event #{index} ({event.get('name', '?')!r})"
        for field in ("name", "ph", "ts", "pid", "tid"):
            if field not in event:
                problems.append(f"{where}: missing {field!r}")
        phase = event.get("ph")
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                problems.append(f"{where}: 'X' event needs dur >= 0")
            else:
                track = (event.get("pid"), event.get("tid"))
                spans_by_track.setdefault(track, []).append(
                    (event.get("ts", 0), duration, event.get("name"))
                )
        elif phase in ("s", "t", "f"):
            if "id" not in event:
                problems.append(f"{where}: flow event needs an 'id'")
            elif phase == "s":
                flow_starts[event["id"]] = flow_starts.get(event["id"], 0) + 1
            else:
                flow_steps.append((where, event["id"]))
        elif phase not in ("i", "I", "M", "C", "B", "E"):
            problems.append(f"{where}: unknown phase {phase!r}")
    for flow_id, count in sorted(flow_starts.items(), key=str):
        if count > 1:
            problems.append(
                f"flow id {flow_id!r} has {count} 's' (start) events; "
                f"expected exactly one per flow"
            )
    for where, flow_id in flow_steps:
        if flow_id not in flow_starts:
            problems.append(
                f"{where}: flow step/finish with id {flow_id!r} has no "
                f"matching 's' (start) event"
            )
    for track, spans in spans_by_track.items():
        # Sorting by (start, -duration) puts each enclosing span before
        # the spans it contains; proper nesting then means every span
        # either fits inside the open span or starts after it ends.
        spans.sort(key=lambda item: (item[0], -item[1]))
        stack: List[tuple] = []
        for start, duration, name in spans:
            end = start + duration
            while stack and start >= stack[-1][0]:
                stack.pop()
            if stack and end > stack[-1][0]:
                problems.append(
                    f"track {track}: span {name!r} [{start}, {end}] "
                    f"overlaps its enclosing span without nesting"
                )
                continue
            stack.append((end, name))
    return problems


def validate_stitched_trace(payload: Any) -> List[str]:
    """Stitching check on top of :func:`validate_chrome_trace`: every
    worker process that contributed spans must be flow-linked back to a
    request root — i.e. each worker pid with "X" events must carry at
    least one flow step/finish whose id has a matching "s" start
    (emitted by the request's owning process)."""
    problems = validate_chrome_trace(payload)
    if not isinstance(payload, dict):
        return problems
    events = payload.get("traceEvents", [])
    if not isinstance(events, list):
        return problems
    worker_pids = set()
    span_pids = set()
    flow_start_ids = set()
    flow_link_pids: Dict[Any, set] = {}
    for event in events:
        if not isinstance(event, dict):
            continue
        phase = event.get("ph")
        pid = event.get("pid")
        if phase == "M" and event.get("name") == "process_name":
            label = (event.get("args") or {}).get("name", "")
            if isinstance(label, str) and label.startswith("repro worker"):
                worker_pids.add(pid)
        elif phase == "X":
            span_pids.add(pid)
        elif phase in ("s", "t", "f") and "id" in event:
            if phase == "s":
                flow_start_ids.add(event["id"])
            # An "s" emitted by the worker itself counts as linkage
            # too: batch file roots live inside pool workers.
            flow_link_pids.setdefault(pid, set()).add(event["id"])
    for pid in sorted(worker_pids & span_pids, key=str):
        linked = flow_link_pids.get(pid, set())
        if not (linked & flow_start_ids):
            problems.append(
                f"worker pid {pid} has spans but no flow step linking "
                f"them to a request root"
            )
    return problems
