"""Constant provenance: per-cell derivation trees for the CONSTANTS
sets.

The paper's result *is* a derivation structure — jump functions
composed along call-graph edges, met across call sites, into the
Figure 1 lattice — so every final VAL cell has an auditable
explanation. :func:`build_provenance` reconstructs it at the fixpoint:
re-evaluating each cell's incoming jump functions against the *final*
VAL sets reproduces exactly the meets the solver performed on its last
visit (evaluation is deterministic and the solver stopped because
nothing changes), with zero cost on the propagation hot path. The two
cases where the fixpoint story does not hold are carried explicitly:
solver fuel exhaustion (cells were forced to ⊥; the resilience record
becomes a note on every cell) and GSA-excluded call sites (listed, not
met).

The result, :class:`ConstantProvenance`, is built as plain JSON-able
data (strings and ints only) so it persists in the summary cache next
to the values it explains — ``repro analyze --explain NAME@PROC`` is
byte-identical between a cold run and a warm-cache replay.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.lattice import BOTTOM, LatticeValue, TOP, const

#: Bumped when the payload shape changes; stored payloads carry it so a
#: stale cache entry is rebuilt instead of mis-rendered. v2 added the
#: optional ``used_by`` cell list (optimization sites that consumed the
#: cell's constant).
SCHEMA_VERSION = 2

TOP_GLYPH = "T"
BOTTOM_GLYPH = "_|_"

#: Recursion guard for pathological pass-through chains.
_MAX_DEPTH = 16


def _render_value(value: LatticeValue) -> str:
    if value.is_top:
        return TOP_GLYPH
    if value.is_bottom:
        return BOTTOM_GLYPH
    return str(value.value)


def _value_kind(value: LatticeValue) -> str:
    if value.is_top:
        return "top"
    if value.is_bottom:
        return "bottom"
    return "constant"


def _normalize_query(query: str) -> str:
    name, at, procedure = query.partition("@")
    name = name.strip().lower()
    procedure = procedure.strip().lower()
    if not at or not name or not procedure:
        raise ValueError(
            f"malformed cell query {query!r}: expected NAME@PROCEDURE"
        )
    return f"{name}@{procedure}"


def build_provenance(result) -> "ConstantProvenance":
    """Reconstruct the derivation of every (procedure, name) VAL cell
    from a finished :class:`~repro.ipcp.driver.AnalysisResult`."""
    cells: Dict[str, dict] = {}
    if result.jump_table is None or not result.config.interprocedural:
        return ConstantProvenance(cells)

    from repro.ipcp.jump_functions import _call_site_label
    from repro.ipcp.solver import entry_domain

    program = result.program
    callgraph = result.callgraph
    constants = result.constants
    table = result.jump_table

    excluded = frozenset()
    if result.propagation is not None:
        excluded = getattr(result.propagation, "excluded", frozenset())

    solver_notes = [
        demotion.render()
        for demotion in result.resilience
        if demotion.component == "solver"
    ]
    demotions_by_label: Dict[str, List[str]] = {}
    for demotion in result.resilience:
        if demotion.component != "jump_function":
            continue
        rendered = (
            f"{demotion.from_kind} -> {demotion.to_kind} ({demotion.reason})"
        )
        bucket = demotions_by_label.setdefault(demotion.site, [])
        if rendered not in bucket:  # GSA rounds re-record identical drops
            bucket.append(rendered)

    for procedure in program:
        vals = constants.val_set(procedure.name)
        sites = list(callgraph.sites_into(procedure))
        for var in entry_domain(procedure, program):
            value = vals.get(var, BOTTOM)
            cell: dict = {
                "procedure": procedure.name,
                "name": var.name,
                "value": _render_value(value),
                "kind": _value_kind(value),
                "is_main": bool(procedure.is_main),
                "sites": [],
                "excluded_sites": [],
                "notes": list(solver_notes),
            }
            if procedure.is_main:
                if var in program.global_initial_values:
                    cell["initial"] = {
                        "value": str(program.global_initial_values[var]),
                        "detail": "BLOCK DATA initial value",
                    }
                else:
                    cell["initial"] = {
                        "value": BOTTOM_GLYPH,
                        "detail": "unknown at program startup "
                        "(uninitialized COMMON storage)",
                    }
            else:
                for site in sites:
                    label = _call_site_label(site.caller.name, site.call, var)
                    if site.call in excluded:
                        cell["excluded_sites"].append(label)
                        continue
                    cell["sites"].append(
                        _build_contribution(
                            label, site, var, table, constants,
                            demotions_by_label,
                        )
                    )
                if not solver_notes:
                    killer = _find_killer(value, cell["sites"])
                    if killer is not None:
                        cell["killer"] = killer
            cells[f"{var.name.lower()}@{procedure.name.lower()}"] = cell
    return ConstantProvenance(cells)


def _build_contribution(
    label: str, site, var, table, constants, demotions_by_label
) -> dict:
    function = table.lookup(site.call, var)
    if function is None:
        return {
            "label": label,
            "caller": site.caller.name,
            "jump": None,
            "value": BOTTOM_GLYPH,
            "value_kind": "bottom",
            "support": [],
            "demotions": demotions_by_label.get(label, []),
            "note": "no jump function built for this slot",
        }
    caller_vals = constants.val_set(site.caller.name)
    value = function.evaluate(lambda v: caller_vals.get(v, BOTTOM))
    return {
        "label": label,
        "caller": site.caller.name,
        "jump": repr(function),
        "value": _render_value(value),
        "value_kind": _value_kind(value),
        # Sorted: frozenset iteration order is hash-dependent, and the
        # rendering must be byte-stable across processes.
        "support": sorted(v.name for v in function.support),
        "demotions": demotions_by_label.get(label, []),
    }


def _find_killer(
    value: LatticeValue, contributions: List[dict]
) -> Optional[dict]:
    """Replay the solver's meet over the listed contributions to name
    the call site (or conflicting pair) that killed a ⊥ cell. Returns
    None for non-⊥ cells (and when the replay cannot reach ⊥, which
    only happens off the fixpoint path)."""
    if not value.is_bottom or not contributions:
        return None
    running = TOP
    setter_index = 0
    for index, contribution in enumerate(contributions):
        kind = contribution["value_kind"]
        if kind == "bottom":
            return {
                "sites": [index],
                "reason": f"call site #{index + 1} contributes "
                f"{BOTTOM_GLYPH} directly",
            }
        if kind == "top":
            continue
        site_value = int(contribution["value"])
        if running.is_top:
            running = const(site_value)
            setter_index = index
        elif running.value != site_value:
            return {
                "sites": [setter_index, index],
                "reason": f"{running.value} from call site "
                f"#{setter_index + 1} meets {site_value} from call site "
                f"#{index + 1}",
            }
    return None


class ConstantProvenance:
    """All cell derivations of one analysis run, as plain data.

    ``cells`` maps ``"name@procedure"`` (lowercased) to a JSON-able
    record; everything :meth:`explain` prints is derived from that
    record alone, which is what makes cached replays byte-identical to
    live runs."""

    def __init__(self, cells: Dict[str, dict]):
        self.cells = cells

    # -- persistence (summary / run cache) -----------------------------------

    def to_payload(self) -> dict:
        return {"schema_version": SCHEMA_VERSION, "cells": self.cells}

    @classmethod
    def from_payload(
        cls, payload: Optional[dict]
    ) -> Optional["ConstantProvenance"]:
        if not isinstance(payload, dict):
            return None
        if payload.get("schema_version") != SCHEMA_VERSION:
            return None
        cells = payload.get("cells")
        if not isinstance(cells, dict):
            return None
        return cls(cells)

    # -- optimization cross-references ---------------------------------------

    def annotate_used_by(self, used_by: Dict[str, List[str]]) -> int:
        """Record which optimization sites consumed each cell's constant
        (``{"n@f": ["fold@f:entry", ...]}``, from
        :attr:`repro.opt.report.OptReport.used_by`) so ``--explain`` and
        ``--optimize`` compose. Facts for unknown cells (temporaries,
        untracked names) are ignored. Returns cells annotated."""
        annotated = 0
        for key, facts in sorted(used_by.items()):
            cell = self.cells.get(key)
            if cell is None:
                continue
            existing = cell.setdefault("used_by", [])
            for fact in facts:
                if fact not in existing:
                    existing.append(fact)
            annotated += 1
        return annotated

    # -- queries -------------------------------------------------------------

    def available(self) -> List[str]:
        return sorted(self.cells)

    def cell(self, query: str) -> Optional[dict]:
        return self.cells.get(_normalize_query(query))

    def explain(self, query: str) -> str:
        """Render the derivation tree for one ``NAME@PROC`` cell.

        Raises ``ValueError`` for malformed or unknown queries (the
        error text lists the known cells)."""
        key = _normalize_query(query)
        cell = self.cells.get(key)
        if cell is None:
            known = ", ".join(self.available()) or "(none)"
            raise ValueError(f"unknown cell {query!r}; known cells: {known}")
        lines: List[str] = []
        self._render_cell(cell, lines, "", "", frozenset((key,)), 0)
        return "\n".join(lines) + "\n"

    # -- rendering -----------------------------------------------------------

    def _headline(self, cell: dict) -> str:
        kind = cell["kind"]
        if kind == "constant":
            tag = "constant"
        elif kind == "bottom":
            tag = "not constant"
        else:
            tag = "never invoked"
        return f"{cell['name']}@{cell['procedure']} = {cell['value']} ({tag})"

    def _render_cell(
        self,
        cell: dict,
        lines: List[str],
        first_prefix: str,
        rest_prefix: str,
        path: frozenset,
        depth: int,
    ) -> None:
        lines.append(first_prefix + self._headline(cell))
        items = self._items(cell)
        for index, (text, subs) in enumerate(items):
            last = index == len(items) - 1
            branch = "`- " if last else "|- "
            extend = "   " if last else "|  "
            lines.append(rest_prefix + branch + text)
            for sub_index, sub in enumerate(subs):
                sub_last = sub_index == len(subs) - 1
                sub_branch = "`- " if sub_last else "|- "
                sub_extend = "   " if sub_last else "|  "
                if isinstance(sub, str):
                    lines.append(rest_prefix + extend + sub_branch + sub)
                    continue
                key, name, caller = sub
                sub_cell = self.cells.get(key)
                head = rest_prefix + extend + sub_branch
                if sub_cell is None:
                    lines.append(
                        f"{head}{name}@{caller} = ? (no cell recorded)"
                    )
                elif key in path:
                    lines.append(
                        head + self._headline(sub_cell) + " (cycle)"
                    )
                elif depth + 1 >= _MAX_DEPTH:
                    lines.append(head + "... (depth limit)")
                else:
                    self._render_cell(
                        sub_cell,
                        lines,
                        head,
                        rest_prefix + extend + sub_extend,
                        path | {key},
                        depth + 1,
                    )

    def _items(self, cell: dict) -> List[Tuple[str, list]]:
        """Child items of a cell node: ``(line, sub_items)`` where each
        sub item is either a literal line or a ``(key, name, caller)``
        support-cell reference to recurse into."""
        items: List[Tuple[str, list]] = []
        for note in cell.get("notes", ()):
            items.append((f"! {note}", []))
        for fact in cell.get("used_by", ()):
            items.append((f"used_by: {fact}", []))
        if cell.get("is_main"):
            initial = cell.get("initial", {})
            items.append(
                (
                    f"initial: {initial.get('detail', '?')} => "
                    f"{initial.get('value', '?')}",
                    [],
                )
            )
            return items
        sites = cell.get("sites", [])
        if not sites and not cell.get("excluded_sites"):
            items.append(
                ("no call sites (procedure is never invoked)", [])
            )
        for contribution in sites:
            jump = contribution.get("jump") or "(no jump function)"
            subs: list = []
            for demotion in contribution.get("demotions", ()):
                subs.append(f"! demoted: {demotion}")
            if contribution.get("note"):
                subs.append(f"! {contribution['note']}")
            for support_name in contribution.get("support", ()):
                subs.append(
                    (
                        f"{support_name.lower()}@"
                        f"{contribution['caller'].lower()}",
                        support_name,
                        contribution["caller"],
                    )
                )
            items.append(
                (
                    f"{contribution['label']} -- {jump} => "
                    f"{contribution['value']}",
                    subs,
                )
            )
        for label in cell.get("excluded_sites", ()):
            items.append(
                (f"{label} (excluded: proven never executed)", [])
            )
        killer = cell.get("killer")
        if killer is not None:
            items.append((f"! killed by meet: {killer['reason']}", []))
        return items
