"""The program call graph ``G``.

Each node is a procedure; each edge is one *call site* — a specific Call
instruction in the caller (two calls from ``p`` to ``q`` are two edges,
each carrying its own jump functions, exactly as in the paper's
formulation).

Besides adjacency queries the graph provides the traversal orders the
IPCP pipeline needs:

- :meth:`CallGraph.bottom_up_order` — callees before callers (return
  jump function generation, §4.1 phase 1);
- :meth:`CallGraph.top_down_order` — callers before callees (forward
  jump function generation, phase 2);
- :meth:`CallGraph.sccs` — Tarjan strongly connected components, used to
  treat recursive cycles conservatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.ir.instructions import Call
from repro.ir.module import Procedure, Program


@dataclass(frozen=True)
class CallSite:
    """One edge of the call graph."""

    caller: Procedure
    call: Call
    callee: Procedure

    def __repr__(self) -> str:
        return f"CallSite({self.caller.name} -> {self.callee.name})"


class CallGraph:
    """Immutable view of a program's procedures and call sites."""

    def __init__(self, program: Program, sites: List[CallSite]):
        self.program = program
        self.sites = sites
        self._out: Dict[Procedure, List[CallSite]] = {p: [] for p in program}
        self._in: Dict[Procedure, List[CallSite]] = {p: [] for p in program}
        for site in sites:
            self._out[site.caller].append(site)
            self._in[site.callee].append(site)

    # -- adjacency ----------------------------------------------------------

    def nodes(self) -> List[Procedure]:
        return list(self.program)

    def sites_from(self, procedure: Procedure) -> List[CallSite]:
        return list(self._out[procedure])

    def sites_into(self, procedure: Procedure) -> List[CallSite]:
        return list(self._in[procedure])

    def callees(self, procedure: Procedure) -> List[Procedure]:
        seen: Set[Procedure] = set()
        result: List[Procedure] = []
        for site in self._out[procedure]:
            if site.callee not in seen:
                seen.add(site.callee)
                result.append(site.callee)
        return result

    def callers(self, procedure: Procedure) -> List[Procedure]:
        seen: Set[Procedure] = set()
        result: List[Procedure] = []
        for site in self._in[procedure]:
            if site.caller not in seen:
                seen.add(site.caller)
                result.append(site.caller)
        return result

    def site_for_call(self, call: Call) -> Optional[CallSite]:
        for site in self.sites:
            if site.call is call:
                return site
        return None

    # -- orders ---------------------------------------------------------------

    def sccs(self) -> List[List[Procedure]]:
        """Strongly connected components (Tarjan), in reverse topological
        order of the condensation: every component appears before any
        component that calls into it... i.e. callees first."""
        index_counter = [0]
        indices: Dict[Procedure, int] = {}
        lowlinks: Dict[Procedure, int] = {}
        on_stack: Set[Procedure] = set()
        stack: List[Procedure] = []
        components: List[List[Procedure]] = []

        def strongconnect(root: Procedure) -> None:
            # Iterative Tarjan to survive deep call chains.
            work = [(root, iter(self.callees(root)))]
            indices[root] = lowlinks[root] = index_counter[0]
            index_counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, callee_iter = work[-1]
                advanced = False
                for callee in callee_iter:
                    if callee not in indices:
                        indices[callee] = lowlinks[callee] = index_counter[0]
                        index_counter[0] += 1
                        stack.append(callee)
                        on_stack.add(callee)
                        work.append((callee, iter(self.callees(callee))))
                        advanced = True
                        break
                    if callee in on_stack:
                        lowlinks[node] = min(lowlinks[node], indices[callee])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
                if lowlinks[node] == indices[node]:
                    component: List[Procedure] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member is node:
                            break
                    components.append(component)

        for procedure in self.program:
            if procedure not in indices:
                strongconnect(procedure)
        return components

    def bottom_up_order(self) -> List[Procedure]:
        """Procedures with every (non-recursive) callee earlier."""
        order: List[Procedure] = []
        for component in self.sccs():
            order.extend(component)
        return order

    def top_down_order(self) -> List[Procedure]:
        """Procedures with every (non-recursive) caller earlier."""
        return list(reversed(self.bottom_up_order()))

    def reverse_postorder(self) -> List[Procedure]:
        """Depth-first reverse postorder over call edges, rooted at the
        main program (then any unreached procedure, in program order).

        On the acyclic condensation this is a topological order —
        callers before callees — which is the natural propagation
        direction for the solver's worklist: VAL sets flow from main
        toward the leaves, so seeding in this order reaches the
        fixpoint with fewer revisits than an arbitrary order."""
        visited: Set[Procedure] = set()
        postorder: List[Procedure] = []
        roots: List[Procedure] = []
        if self.program.main is not None:
            roots.append(self.program.main)
        roots.extend(p for p in self.program if p is not self.program.main)
        for root in roots:
            if root in visited:
                continue
            visited.add(root)
            stack = [(root, iter(self.callees(root)))]
            while stack:
                node, callee_iter = stack[-1]
                advanced = False
                for callee in callee_iter:
                    if callee not in visited:
                        visited.add(callee)
                        stack.append((callee, iter(self.callees(callee))))
                        advanced = True
                        break
                if advanced:
                    continue
                stack.pop()
                postorder.append(node)
        return list(reversed(postorder))

    def reachable_from_main(self) -> Set[Procedure]:
        """Procedures transitively callable from the main program (main
        itself included). Everything else is dead code at link level."""
        main = self.program.main
        if main is None:
            return set(self.program)
        reachable: Set[Procedure] = {main}
        worklist = [main]
        while worklist:
            current = worklist.pop()
            for callee in self.callees(current):
                if callee not in reachable:
                    reachable.add(callee)
                    worklist.append(callee)
        return reachable

    def recursive_procedures(self) -> Set[Procedure]:
        """Members of nontrivial SCCs, plus directly self-recursive
        procedures."""
        recursive: Set[Procedure] = set()
        for component in self.sccs():
            if len(component) > 1:
                recursive.update(component)
        for site in self.sites:
            if site.caller is site.callee:
                recursive.add(site.caller)
        return recursive


def build_call_graph(program: Program) -> CallGraph:
    """Construct the call graph of ``program``."""
    sites: List[CallSite] = []
    for procedure in program:
        for call in procedure.call_sites():
            sites.append(CallSite(procedure, call, program.procedure(call.callee)))
    return CallGraph(program, sites)
