"""Call graph construction and traversal orders."""

from repro.callgraph.callgraph import CallGraph, CallSite, build_call_graph

__all__ = ["CallGraph", "CallSite", "build_call_graph"]
