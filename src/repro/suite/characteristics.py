"""Program characteristics — Table 1 of the study.

For each suite program: non-comment non-blank line count, number of
procedures, and the mean and median lines per procedure (the paper uses
mean-vs-median closeness to show that code is evenly distributed in all
programs except fpppp and simple, where one routine dominates).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List

from repro.frontend.parser import parse_source
from repro.frontend.source import SourceFile
from repro.suite.programs import SUITE_PROGRAM_NAMES, program_source


@dataclass
class ProgramCharacteristics:
    """One Table 1 row."""

    name: str
    lines: int
    procedures: int
    mean_lines_per_procedure: float
    median_lines_per_procedure: float

    @property
    def skewed(self) -> bool:
        """True when one routine dominates (mean far above median) —
        the fpppp/simple shape."""
        return self.mean_lines_per_procedure > 1.6 * self.median_lines_per_procedure


def characterize(name: str, source: str = None) -> ProgramCharacteristics:
    """Compute the Table 1 row for ``name`` (a suite program, unless
    ``source`` supplies explicit text)."""
    text = source if source is not None else program_source(name)
    source_file = SourceFile(f"{name}.f", text)
    module = parse_source(text, f"{name}.f")

    # Per-unit line spans: each unit runs from its header line to the
    # line before the next unit's header (the last runs to EOF).
    starts = [unit.location.line for unit in module.units]
    ends = starts[1:] + [len(source_file.lines) + 1]
    unit_lines: List[int] = []
    for start, end in zip(starts, ends):
        span = "\n".join(source_file.lines[start - 1 : end - 1])
        unit_lines.append(SourceFile("unit", span).count_code_lines())

    return ProgramCharacteristics(
        name=name,
        lines=source_file.count_code_lines(),
        procedures=len(module.units),
        mean_lines_per_procedure=round(statistics.mean(unit_lines), 1),
        median_lines_per_procedure=float(statistics.median(unit_lines)),
    )


def characterize_suite() -> Dict[str, ProgramCharacteristics]:
    """Table 1 rows for the whole suite, in table order."""
    return {name: characterize(name) for name in SUITE_PROGRAM_NAMES}
