"""Regenerating the study's tables on the bundled suite.

- **Table 1**: program characteristics (:mod:`repro.suite.characteristics`);
- **Table 2**: constants substituted under each forward jump function,
  with and without return jump functions;
- **Table 3**: polynomial jump functions without MOD / with MOD /
  complete propagation / purely intraprocedural propagation.

Each run re-lowers the program from source: the driver mutates the IR
(annotation, SSA, and — for complete propagation — DCE), so
configurations must not share a Program object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.config import AnalysisConfig, JumpFunctionKind
from repro.ipcp.driver import analyze_source
from repro.suite.characteristics import ProgramCharacteristics, characterize_suite
from repro.suite.programs import SUITE_PROGRAM_NAMES, program_source


def run_configuration(name: str, config: AnalysisConfig) -> int:
    """Analyze suite program ``name`` under ``config``; returns the
    substituted-reference count (one table cell)."""
    result = analyze_source(program_source(name), config, filename=f"{name}.f")
    return result.substituted_constants


# Backwards-compatible private alias used throughout this module.
_run = run_configuration


@dataclass
class Table2Row:
    """Constants found through use of jump functions (Table 2)."""

    program: str
    polynomial: int
    pass_through: int
    intraprocedural: int
    literal: int
    polynomial_no_returns: int
    pass_through_no_returns: int


@dataclass
class Table3Row:
    """Comparison of the most precise jump function with other
    propagation techniques (Table 3)."""

    program: str
    polynomial_without_mod: int
    polynomial_with_mod: int
    complete_propagation: int
    intraprocedural: int


def compute_table1() -> Dict[str, ProgramCharacteristics]:
    """Table 1 rows."""
    return characterize_suite()


def compute_table2(programs: List[str] = None) -> List[Table2Row]:
    """Table 2 rows: 6 configurations per program."""
    rows = []
    for name in programs or SUITE_PROGRAM_NAMES:
        rows.append(
            Table2Row(
                program=name,
                polynomial=_run(name, AnalysisConfig.table2(JumpFunctionKind.POLYNOMIAL)),
                pass_through=_run(name, AnalysisConfig.table2(JumpFunctionKind.PASS_THROUGH)),
                intraprocedural=_run(
                    name, AnalysisConfig.table2(JumpFunctionKind.INTRAPROCEDURAL)
                ),
                literal=_run(name, AnalysisConfig.table2(JumpFunctionKind.LITERAL)),
                polynomial_no_returns=_run(
                    name,
                    AnalysisConfig.table2(JumpFunctionKind.POLYNOMIAL, returns=False),
                ),
                pass_through_no_returns=_run(
                    name,
                    AnalysisConfig.table2(JumpFunctionKind.PASS_THROUGH, returns=False),
                ),
            )
        )
    return rows


def compute_table3(programs: List[str] = None) -> List[Table3Row]:
    """Table 3 rows: 4 propagation techniques per program."""
    rows = []
    for name in programs or SUITE_PROGRAM_NAMES:
        rows.append(
            Table3Row(
                program=name,
                polynomial_without_mod=_run(name, AnalysisConfig.polynomial_without_mod()),
                polynomial_with_mod=_run(name, AnalysisConfig.polynomial_with_mod()),
                complete_propagation=_run(name, AnalysisConfig.complete_propagation()),
                intraprocedural=_run(name, AnalysisConfig.intraprocedural_only()),
            )
        )
    return rows


# -- formatting ---------------------------------------------------------------


def format_table1(rows=None) -> str:
    rows = rows if rows is not None else compute_table1()
    header = (
        f"{'Program':<12} {'Lines':>6} {'Procs':>6} "
        f"{'Mean l/p':>9} {'Median l/p':>11}"
    )
    lines = ["Table 1: Characteristics of program test suite", header,
             "-" * len(header)]
    for name, row in rows.items():
        lines.append(
            f"{name:<12} {row.lines:>6} {row.procedures:>6} "
            f"{row.mean_lines_per_procedure:>9.1f} "
            f"{row.median_lines_per_procedure:>11.1f}"
        )
    return "\n".join(lines)


def format_table2(programs: List[str] = None, rows: List[Table2Row] = None) -> str:
    rows = rows if rows is not None else compute_table2(programs)
    header = (
        f"{'Program':<12} {'Poly':>6} {'Pass':>6} {'Intra':>6} {'Literal':>8} "
        f"{'Poly-NR':>8} {'Pass-NR':>8}"
    )
    lines = [
        "Table 2: Constants found through use of jump functions",
        "(first four columns use return jump functions; -NR = without)",
        header,
        "-" * len(header),
    ]
    for row in rows:
        lines.append(
            f"{row.program:<12} {row.polynomial:>6} {row.pass_through:>6} "
            f"{row.intraprocedural:>6} {row.literal:>8} "
            f"{row.polynomial_no_returns:>8} {row.pass_through_no_returns:>8}"
        )
    return "\n".join(lines)


def format_table3(programs: List[str] = None, rows: List[Table3Row] = None) -> str:
    rows = rows if rows is not None else compute_table3(programs)
    header = (
        f"{'Program':<12} {'No MOD':>8} {'With MOD':>9} {'Complete':>9} "
        f"{'Intra':>7}"
    )
    lines = [
        "Table 3: Most precise jump function vs other propagation techniques",
        header,
        "-" * len(header),
    ]
    for row in rows:
        lines.append(
            f"{row.program:<12} {row.polynomial_without_mod:>8} "
            f"{row.polynomial_with_mod:>9} {row.complete_propagation:>9} "
            f"{row.intraprocedural:>7}"
        )
    return "\n".join(lines)
