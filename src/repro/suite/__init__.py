"""The benchmark suite: modeled stand-ins for the study's SPEC/PERFECT
FORTRAN programs, plus the table harness that regenerates the paper's
evaluation."""

from repro.suite.programs import SUITE_PROGRAM_NAMES, program_source, suite_sources
from repro.suite.characteristics import ProgramCharacteristics, characterize
from repro.suite.tables import (
    Table2Row,
    Table3Row,
    compute_table1,
    compute_table2,
    compute_table3,
    format_table1,
    format_table2,
    format_table3,
)

__all__ = [
    "ProgramCharacteristics",
    "SUITE_PROGRAM_NAMES",
    "Table2Row",
    "Table3Row",
    "characterize",
    "compute_table1",
    "compute_table2",
    "compute_table3",
    "format_table1",
    "format_table2",
    "format_table3",
    "program_source",
    "suite_sources",
]
