"""The 12-program benchmark suite.

Each program here is a modeled stand-in for the same-named SPEC'89 /
PERFECT benchmark of the study (Table 1). The originals are proprietary
FORTRAN codes we cannot ship; each stand-in is generated from the
pattern library in :mod:`repro.suite.builder` so that it contains the
same *constant-flow structure* the paper attributes to its namesake —
which jump functions find its constants, whether return jump functions
matter, how badly the loss of MOD information hurts, and whether
complete propagation exposes anything extra. Absolute counts are scaled
to keep analysis fast; every comparison the paper makes is preserved in
*shape* (orderings, rough ratios, crossovers).

Per-program design notes (paper row -> mechanisms used):

- **adm** — every jump function ties (110 everywhere); intraprocedural
  propagation nearly as good (105); no-MOD collapses to ~25.
  -> almost all constants are local, most of them killed by the
  recursive sink without MOD; a pinch of literal actuals.
- **doduc** — all counts ~289, but intraprocedural-only finds 3!
  -> constants arrive as literal actuals at hundreds of call sites;
  return values add 2; one intra-chain separates literal (288) from the
  rest (289).
- **fpppp** — staircase 49 < 54 < 60; returns worth 4; skewed toward one
  big routine.
- **linpackd** — literal loses big (94 vs 170): constants are passed as
  variables and globals; returns irrelevant; no-MOD devastating (33).
- **matrix300** — staircase 71 < 122 < 138 (pass-through chains matter).
- **mdg** — small, mild staircase 31 < 40 < 41, returns worth 1.
- **ocean** — the return-function showcase: an INIT routine assigns
  configuration globals; with return functions 194, without 62; complete
  propagation adds ~10 more (dead dispatch arms).
- **qcd** — essentially all intraprocedural (180 vs 179); interprocedural
  machinery nearly irrelevant; small no-MOD dent.
- **simple** — no-MOD catastrophe (183 -> 2): every local constant is
  shown to the recursive sink; skewed toward one big routine.
- **snasa7** — large literal gap (254 vs 336), otherwise flat; most
  constants intraprocedural (254).
- **spec77** — moderate gaps everywhere; complete propagation adds ~4.
- **trfd** — tiny (16): sanity-scale program.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.suite.builder import SuiteProgramBuilder


def _build_adm() -> str:
    b = SuiteProgramBuilder("adm")
    # 105 intraprocedural references, 80 of them no-MOD-fragile.
    for refs, value, sink in ((20, 3, True), (20, 12, True), (20, 7, True),
                              (20, 64, True), (15, 2, False), (10, 5, False)):
        b.local_constants(refs, value, sink=sink)
    # The 5 interprocedural constants are literal actuals.
    b.literal_leaf(3, 100)
    b.literal_leaf(2, 8)
    b.conflict_calls((1, 2), n_refs=2)
    # adm is the largest program in the suite.
    for size in (40, 34, 30, 26, 22, 12, 8):
        b.noise_proc(size)
    return b.build()


def _build_doduc() -> str:
    b = SuiteProgramBuilder("doduc")
    # Hundreds of literal actuals spread over many leaves.
    for index in range(20):
        b.literal_leaf(14, 10 + index)
    b.literal_leaf(3, 999)
    # +1 found by intraprocedural and better (the literal JF misses it);
    # routed through the sink so the no-MOD run loses exactly this one.
    b.intra_chain(1, 77, sink=True)
    # +2 from a constant-returning function.
    b.function_returns(2, 31)
    b.bounded_loop(250)
    b.bounded_loop(40)
    # Intraprocedural baseline sees only these 3 local references.
    b.local_constants(3, 6, in_procedure=False)
    b.noise_proc(10)
    b.noise_proc(10)
    b.noise_proc(6, with_loop=False)
    return b.build()


def _build_fpppp() -> str:
    b = SuiteProgramBuilder("fpppp")
    # 38 intraprocedural references: 22 robust, 16 no-MOD-fragile, most
    # of them concentrated in one big routine (the paper notes fpppp is
    # dominated by a single procedure).
    b.local_constants(22, 4, sink=False)
    b.local_constants(16, 9, sink=True)
    # literal tier: +11.
    b.literal_leaf(6, 2)
    b.literal_leaf(5, 50)
    # intraprocedural tier: +1 intra chain, +4 INIT globals (the latter
    # need return functions and die without MOD thanks to the sink call
    # placed before the readers).
    b.intra_chain(1, 123)
    b.global_via_init((10, 20), 2, 2, kill_from_worker=0)
    # pass-through tier: +6 via a depth-3 fragile chain (2 refs at the
    # entry level count for every kind; 4 deeper ones only for
    # pass-through/polynomial and die without MOD).
    b.formal_chain(3, 2, 55, fragile=True)
    b.bounded_loop(12)
    # One dominant routine (the paper notes fpppp's skew: a single
    # routine makes up a large part of the code).
    b.noise_proc(110)
    b.noise_proc(6, with_loop=False)
    b.noise_proc(5, with_loop=False)
    return b.build()


def _build_linpackd() -> str:
    b = SuiteProgramBuilder("linpackd")
    # 74 intraprocedural references, 46 no-MOD-fragile.
    b.local_constants(28, 10, sink=False)
    b.local_constants(24, 100, sink=True)
    b.local_constants(22, 1, sink=True)
    # literal tier: +20.
    for value in (200, 201, 202, 203):
        b.literal_leaf(5, value)
    # variable actuals and direct globals: +76, all intraprocedural-
    # detectable at the call sites, no return functions needed. The
    # globals die without MOD from the second worker on.
    b.intra_chain(10, 500, sink=True)
    b.intra_chain(10, 501, sink=False)
    b.global_direct((64, 128, 256), 7, 8, kill_from_worker=1)
    b.bounded_loop(100)
    b.bounded_loop(1000)
    b.conflict_calls((3, 4, 5), n_refs=3)
    b.noise_proc(14)
    return b.build()


def _build_matrix300() -> str:
    b = SuiteProgramBuilder("matrix300")
    # 69 intraprocedural references (30 fragile).
    b.local_constants(39, 300, sink=False)
    b.local_constants(30, 2, sink=True)
    # literal tier: +2 -> 71.
    b.literal_leaf(2, 300)
    # intraprocedural tier: +51 -> 122 (variable actuals + globals).
    b.intra_chain(15, 300, sink=True)
    b.intra_chain(12, 64, sink=False)
    b.global_direct((300, 150), 4, 6, kill_from_worker=0)
    # pass-through tier: +16 -> 138 via two fragile depth-3 chains
    # (entry level refs 0 so every ref needs pass-through).
    b.formal_chain(3, 4, 300, fragile=True)
    b.formal_chain(2, 4, 151, fragile=True)
    b.bounded_loop(300)
    b.bounded_loop(300)
    b.noise_proc(12)
    return b.build()


def _build_mdg() -> str:
    b = SuiteProgramBuilder("mdg")
    # 31 intraprocedural references (6 fragile: no-MOD keeps 31 - 6 +
    # a few interprocedural survivors ~= the paper's flat 31).
    b.local_constants(25, 8, sink=False)
    b.local_constants(6, 3, sink=True)
    # intraprocedural tier: +9 -> 40 (literal finds none of these).
    b.intra_chain(5, 25, sink=True)
    b.global_direct((9,), 2, 2, kill_from_worker=0)
    # +1 return-function constant -> 41 for pass/poly/intra... and the
    # paper shows intra=40: make it pass-through-only depth-2.
    b.formal_chain(2, 1, 33, fragile=True)
    b.bounded_loop(27)
    b.noise_proc(8)
    return b.build()


def _build_ocean() -> str:
    b = SuiteProgramBuilder("ocean")
    # 56 intraprocedural references (26 fragile).
    b.local_constants(30, 5, sink=False)
    b.local_constants(26, 11, sink=True)
    # literal tier: +1 -> 57.
    b.literal_leaf(1, 4)
    # The initialization routine assigns many configuration globals;
    # most workers read them. Everything here needs return jump
    # functions (194 - 62 = 132 references): without them the analyzer
    # has no idea what INIT did. A sink call before the last four
    # workers makes roughly half of these die without MOD.
    b.global_via_init((64, 32, 16, 8), 12, 9, kill_from_worker=7)
    b.global_via_init((7, 77), 4, 6, kill_from_worker=2)
    # +5 function-result references (also return-function-dependent).
    b.function_returns(3, 12)
    b.function_returns(2, 9)
    # Complete propagation reveals ~10 more (constant-guarded dispatch).
    b.bounded_loop(64)
    b.bounded_loop(32)
    b.bounded_loop(100)
    b.dead_branch_reveal(6, 1, 2)
    b.dead_branch_reveal(4, 3, 4)
    b.noise_proc(10)
    return b.build()


def _build_qcd() -> str:
    b = SuiteProgramBuilder("qcd")
    # 179 intraprocedural references, only 11 fragile.
    b.local_constants(60, 3, sink=False)
    b.local_constants(56, 17, sink=False)
    b.local_constants(52, 4, sink=False)
    b.local_constants(11, 8, sink=True)
    # +1 literal -> 180 flat across all configurations.
    b.literal_leaf(1, 6)
    b.conflict_calls((10, 20), n_refs=2)
    b.bounded_loop(16)
    b.noise_proc(26)
    b.noise_proc(20)
    b.noise_proc(16)
    return b.build()


def _build_simple() -> str:
    b = SuiteProgramBuilder("simple")
    # The no-MOD catastrophe: every local constant is shown to the
    # recursive sink before use, so without MOD only 2 references
    # survive. One dominant routine carries most of the program.
    b.local_constants(60, 2, sink=True)
    b.local_constants(58, 30, sink=True)
    b.local_constants(56, 9, sink=True)
    b.local_constants(2, 5, sink=False, in_procedure=False)
    # intraprocedural tier: +5 -> 179 (all sink-fragile).
    b.intra_chain(5, 40, sink=True)
    # pass-through tier: +4 -> 183.
    b.formal_chain(2, 2, 60, fragile=True)
    b.noise_proc(80)
    return b.build()


def _build_snasa7() -> str:
    b = SuiteProgramBuilder("snasa7")
    # 254 intraprocedural references (33 fragile -> no-MOD 303).
    b.local_constants(80, 7, sink=False)
    b.local_constants(76, 2, sink=False)
    b.local_constants(65, 50, sink=False)
    b.local_constants(33, 4, sink=True)
    # interprocedural tier: +82 -> 336, none of it literal-detectable
    # (variable actuals and direct globals; literal stays at 254).
    b.intra_chain(20, 1000, sink=False)
    b.intra_chain(20, 1001, sink=False)
    b.global_direct((7, 49), 6, 7, kill_from_worker=6)
    b.bounded_loop(7)
    b.bounded_loop(500)
    b.noise_proc(12)
    b.noise_proc(12)
    return b.build()


def _build_spec77() -> str:
    b = SuiteProgramBuilder("spec77")
    # 83 intraprocedural references (36 fragile).
    b.local_constants(47, 6, sink=False)
    b.local_constants(36, 13, sink=True)
    # literal tier: +21 -> 104.
    b.literal_leaf(11, 365)
    b.literal_leaf(10, 24)
    # intraprocedural-and-better tier: +33 -> 137.
    b.intra_chain(12, 730, sink=True)
    b.global_direct((360, 180), 3, 7, kill_from_worker=1)
    # complete propagation adds ~4.
    b.bounded_loop(365)
    b.bounded_loop(24)
    b.dead_branch_reveal(4, 5, 6)
    b.conflict_calls((1, 2, 3), n_refs=2)
    for size in (30, 26, 20, 16):
        b.noise_proc(size)
    return b.build()


def _build_trfd() -> str:
    b = SuiteProgramBuilder("trfd")
    # 15 intraprocedural references (5 fragile), +1 literal -> 16 flat.
    b.local_constants(10, 20, sink=False)
    b.local_constants(5, 40, sink=True)
    b.literal_leaf(1, 4)
    b.noise_proc(6)
    return b.build()


_BUILDERS: Dict[str, Callable[[], str]] = {
    "adm": _build_adm,
    "doduc": _build_doduc,
    "fpppp": _build_fpppp,
    "linpackd": _build_linpackd,
    "matrix300": _build_matrix300,
    "mdg": _build_mdg,
    "ocean": _build_ocean,
    "qcd": _build_qcd,
    "simple": _build_simple,
    "snasa7": _build_snasa7,
    "spec77": _build_spec77,
    "trfd": _build_trfd,
}

#: Suite order, matching the paper's tables.
SUITE_PROGRAM_NAMES: List[str] = list(_BUILDERS)

_CACHE: Dict[str, str] = {}


def program_source(name: str) -> str:
    """The MiniFortran source text of suite program ``name``."""
    if name not in _CACHE:
        _CACHE[name] = _BUILDERS[name]()
    return _CACHE[name]


def suite_sources() -> Dict[str, str]:
    """All suite programs, in table order."""
    return {name: program_source(name) for name in SUITE_PROGRAM_NAMES}


def write_suite(directory: str) -> List[str]:
    """Write each suite program to ``directory`` as ``<name>.f``;
    returns the paths written."""
    import os

    paths = []
    os.makedirs(directory, exist_ok=True)
    for name, source in suite_sources().items():
        path = os.path.join(directory, f"{name}.f")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(source)
        paths.append(path)
    return paths
