"""The paper's published numbers, as data.

Tables 2 and 3 of the study, transcribed row for row, plus the
shape-agreement metrics the reproduction is judged by: column orderings,
per-program equalities, and rank correlation between paper and measured
columns. ``compare_with_measured()`` powers the side-by-side report in
the benchmark run and the strongest assertions in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.suite.tables import Table2Row, Table3Row

#: Table 2 as published (PLDI '93): program -> (poly, pass, intra,
#: literal, poly-no-returns, pass-no-returns).
PAPER_TABLE2: Dict[str, Tuple[int, int, int, int, int, int]] = {
    "adm": (110, 110, 110, 110, 110, 110),
    "doduc": (289, 289, 289, 288, 287, 287),
    "fpppp": (60, 60, 54, 49, 56, 56),
    "linpackd": (170, 170, 170, 94, 170, 170),
    "matrix300": (138, 138, 122, 71, 138, 138),
    "mdg": (41, 41, 40, 31, 40, 40),
    "ocean": (194, 194, 194, 57, 62, 62),
    "qcd": (180, 180, 180, 180, 180, 180),
    "simple": (183, 183, 179, 174, 183, 183),
    "snasa7": (336, 336, 336, 254, 336, 336),
    "spec77": (137, 137, 137, 104, 137, 137),
    "trfd": (16, 16, 16, 16, 16, 16),
}

#: Table 3 as published: program -> (no-MOD, with-MOD, complete, intra).
PAPER_TABLE3: Dict[str, Tuple[int, int, int, int]] = {
    "adm": (25, 110, 110, 105),
    "doduc": (288, 289, 289, 3),
    "fpppp": (34, 60, 60, 38),
    "linpackd": (33, 170, 170, 74),
    "matrix300": (18, 138, 138, 69),
    "mdg": (31, 41, 41, 31),
    "ocean": (79, 194, 204, 56),
    "qcd": (169, 180, 180, 179),
    "simple": (2, 183, 183, 174),
    "snasa7": (303, 336, 336, 254),
    "spec77": (76, 137, 141, 83),
    "trfd": (10, 16, 16, 15),
}


@dataclass
class ShapeAgreement:
    """How closely the measured tables track the paper's shape."""

    #: (program, description) for each paper relationship that failed.
    violations: List[Tuple[str, str]]
    #: Spearman rank correlation per compared column.
    rank_correlations: Dict[str, float]

    @property
    def agrees(self) -> bool:
        return not self.violations

    def format(self) -> str:
        lines = ["Shape agreement with the paper:"]
        for column, rho in sorted(self.rank_correlations.items()):
            lines.append(f"  rank correlation, {column:<22} rho = {rho:+.3f}")
        if self.violations:
            lines.append("  VIOLATED relationships:")
            for program, description in self.violations:
                lines.append(f"    {program}: {description}")
        else:
            lines.append("  every paper relationship holds")
        return "\n".join(lines)


def _rank(values: Sequence[float]) -> List[float]:
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    index = 0
    while index < len(order):
        # Average ranks over ties.
        tail = index
        while (
            tail + 1 < len(order)
            and values[order[tail + 1]] == values[order[index]]
        ):
            tail += 1
        average = (index + tail) / 2 + 1
        for position in range(index, tail + 1):
            ranks[order[position]] = average
        index = tail + 1
    return ranks


def spearman(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman rank correlation (tie-aware, via Pearson on ranks)."""
    rx, ry = _rank(xs), _rank(ys)
    n = len(rx)
    mean_x = sum(rx) / n
    mean_y = sum(ry) / n
    cov = sum((a - mean_x) * (b - mean_y) for a, b in zip(rx, ry))
    var_x = sum((a - mean_x) ** 2 for a in rx)
    var_y = sum((b - mean_y) ** 2 for b in ry)
    if var_x == 0 or var_y == 0:
        return 1.0 if var_x == var_y else 0.0
    return cov / (var_x * var_y) ** 0.5


def _paper_relationships() -> List[Tuple[str, str]]:
    """The qualitative claims the paper states, as (program, claim)
    pairs evaluated against measured rows by compare_with_measured."""
    return []


def compare_with_measured(
    table2: List[Table2Row], table3: List[Table3Row]
) -> ShapeAgreement:
    """Evaluate every paper relationship against measured rows and
    compute per-column rank correlations with the paper's numbers."""
    by2 = {row.program: row for row in table2}
    by3 = {row.program: row for row in table3}
    violations: List[Tuple[str, str]] = []

    for name, row in by2.items():
        paper = PAPER_TABLE2[name]
        if row.polynomial != row.pass_through:
            violations.append((name, "polynomial != pass-through"))
        if not (row.literal <= row.intraprocedural <= row.polynomial):
            violations.append((name, "literal <= intra <= poly violated"))
        paper_ret_gain = paper[0] - paper[4]
        measured_ret_gain = row.polynomial - row.polynomial_no_returns
        if (paper_ret_gain > 50) != (measured_ret_gain > 50):
            violations.append((name, "return-function impact class differs"))

    for name, row in by3.items():
        paper = PAPER_TABLE3[name]
        if row.polynomial_without_mod > row.polynomial_with_mod:
            violations.append((name, "no-MOD exceeded with-MOD"))
        if row.complete_propagation < row.polynomial_with_mod:
            violations.append((name, "complete below with-MOD"))
        if row.intraprocedural > row.polynomial_with_mod:
            violations.append((name, "intra exceeded interprocedural"))
        paper_complete_gain = paper[2] > paper[1]
        measured_complete_gain = row.complete_propagation > row.polynomial_with_mod
        if paper_complete_gain != measured_complete_gain:
            violations.append((name, "complete-propagation gain class differs"))

    names = list(by2)
    correlations = {
        "Table2 polynomial": spearman(
            [PAPER_TABLE2[n][0] for n in names], [by2[n].polynomial for n in names]
        ),
        "Table2 literal": spearman(
            [PAPER_TABLE2[n][3] for n in names], [by2[n].literal for n in names]
        ),
        "Table3 without MOD": spearman(
            [PAPER_TABLE3[n][0] for n in names],
            [by3[n].polynomial_without_mod for n in names],
        ),
        "Table3 intraprocedural": spearman(
            [PAPER_TABLE3[n][3] for n in names],
            [by3[n].intraprocedural for n in names],
        ),
    }
    return ShapeAgreement(violations, correlations)
