"""Program builder: composes MiniFortran benchmark programs from
constant-flow patterns.

Each pattern reproduces one of the mechanisms the study's results hinge
on. The comments on each method state which analysis configurations
detect the constants it plants — that mapping is what lets a program
spec dial in the *shape* of its Table 2 / Table 3 row:

======================  =====================================================
local_constants         found by every configuration including the purely
                        intraprocedural baseline; with ``sink=True`` the
                        value dies without MOD information
literal_leaf            a literal actual: found by every jump function,
                        immune to everything; invisible to intra-only
intra_chain             a locally-constant variable actual: missed by the
                        literal jump function
formal_chain            constants down a call chain: levels >= 2 need the
                        pass-through (or polynomial) jump function;
                        ``fragile=True`` makes levels >= 2 die without MOD
global_direct           globals assigned in MAIN and read by workers:
                        missed by the literal jump function
global_via_init         globals assigned inside an INIT procedure: needs
                        return jump functions (the ocean pattern)
function_returns        a constant-returning INTEGER FUNCTION: needs
                        return jump functions
dead_branch_reveal      a constant-guarded dispatch: only complete
                        propagation (propagate + DCE + re-propagate)
                        recovers the live arm's constant
conflict_calls          same procedure called with different constants:
                        contributes nothing (the meet is ⊥) — realism and
                        cloning-bench material
noise_proc              READ-driven computation with no constants at all
======================  =====================================================

The "sink" used by no-MOD-fragile patterns is a *recursive* helper: in
the no-MOD configuration a recursive procedure gets no return jump
functions (call-graph SCC), so a call to it clobbers every global and
every actual with no recovery — whereas exact MOD summaries know it
touches nothing.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence


class SuiteProgramBuilder:
    """Accumulates procedures and MAIN statements, then renders the
    complete MiniFortran source text."""

    def __init__(self, name: str):
        self.name = name
        self.main_lines: List[str] = []
        self.procedures: List[str] = []
        self.global_names: List[str] = []
        self._ids = itertools.count(1)
        self._sink_added = False
        self._checker_added = False

    # -- low-level helpers -------------------------------------------------

    def _fresh(self, prefix: str) -> str:
        return f"{prefix}{next(self._ids)}"

    #: Placeholder replaced with the final COMMON declaration at build
    #: time (the member list grows as patterns register globals, so the
    #: declaration cannot be rendered eagerly without risking mismatched
    #: COMMON layouts across procedures).
    _COMMON_PLACEHOLDER = "__COMMON__\n"

    def _common_decl(self) -> str:
        if not self.global_names:
            return ""
        return f"      COMMON /GLB/ {', '.join(self.global_names)}\n"

    def add_global(self, name: str) -> str:
        if name not in self.global_names:
            self.global_names.append(name)
        return name

    def add_procedure(self, text: str) -> None:
        self.procedures.append(text)

    def add_main(self, line: str) -> None:
        self.main_lines.append(line)

    @staticmethod
    def _ref_lines(var: str, count: int, prefix: str) -> List[str]:
        """``count`` executable statements, each containing exactly one
        reference to ``var``."""
        lines = []
        for index in range(count):
            lines.append(f"      {prefix}{index} = {var} + {index + 1}")
        return lines

    def _ensure_sink(self) -> str:
        """The recursive no-MOD poison (see module docstring)."""
        if not self._sink_added:
            self._sink_added = True
            # V is passed back into the recursive call: in the no-MOD
            # configuration the inner call's worst-case kill leaves V's
            # exit value unknown on the recursive path, so RSINK gets no
            # return jump function for V (nor for any global) and a call
            # to it clobbers everything. Exact MOD summaries see that
            # RSINK modifies nothing.
            self.add_procedure(
                "      SUBROUTINE RSINK(D, V)\n"
                "      INTEGER D, V, T\n"
                "      T = V + 1\n"
                "      IF (D .GT. 0) THEN\n"
                "        CALL RSINK(D - 1, V)\n"
                "      ENDIF\n"
                "      RETURN\n"
                "      END\n"
            )
            # Diversifier: guarantee RSINK's V meets >= 2 distinct
            # values, so no pass-through constant leaks out of the sink
            # itself (keeping jump-function comparisons clean).
            self.add_main("      CALL RSINK(0, 987654)")
        return "RSINK"

    def _ensure_checker(self) -> str:
        """A read-only helper whose identity return jump functions are
        rejected by the forward phase when its argument is an entry
        value — the cheap no-MOD breaker for pass-through chains."""
        if not self._checker_added:
            self._checker_added = True
            self.add_procedure(
                "      SUBROUTINE CHECK(V)\n"
                "      INTEGER V, T\n"
                "      T = V * 2\n"
                "      RETURN\n"
                "      END\n"
            )
        return "CHECK"

    # -- patterns -----------------------------------------------------------

    def local_constants(self, n_refs: int, value: int, sink: bool = False,
                        in_procedure: bool = True) -> None:
        """A locally assigned constant referenced ``n_refs`` times.

        Detected by: every configuration (the substitution metric counts
        intraprocedurally derived constants too). With ``sink=True`` the
        references die in the no-MOD configuration (the value is passed
        to the recursive sink first).
        """
        tag = self._fresh("lc")
        var = f"N{tag}"
        lines = [f"      {var} = {value}"]
        if sink:
            sink_name = self._ensure_sink()
            lines.append(f"      CALL {sink_name}(1, {var})")
        lines.extend(self._ref_lines(var, n_refs, f"R{tag}X"))
        if in_procedure:
            proc = f"LC{tag}"
            body = "\n".join(lines)
            self.add_procedure(
                f"      SUBROUTINE {proc}\n{body}\n"
                "      RETURN\n      END\n"
            )
            self.add_main(f"      CALL {proc}")
        else:
            self.main_lines.extend(lines)

    def literal_leaf(self, n_refs: int, value: int) -> None:
        """A literal constant actual argument.

        Detected by: every jump function kind (it is a literal at the
        call site); immune to MOD and return-function settings; invisible
        to the intraprocedural-only baseline.
        """
        tag = self._fresh("ll")
        proc = f"LL{tag}"
        refs = "\n".join(self._ref_lines("K", n_refs, f"R{tag}X"))
        self.add_procedure(
            f"      SUBROUTINE {proc}(K)\n      INTEGER K\n{refs}\n"
            "      RETURN\n      END\n"
        )
        self.add_main(f"      CALL {proc}({value})")

    def intra_chain(self, n_refs: int, value: int, sink: bool = False) -> None:
        """A locally computed constant passed as a variable actual.

        Detected by: intraprocedural, pass-through, and polynomial jump
        functions (the literal jump function sees only a variable at the
        call site). ``sink=True`` interposes the recursive sink so the
        no-MOD configuration loses the value before the call.
        """
        tag = self._fresh("ic")
        proc = f"IC{tag}"
        var = f"X{tag}"
        refs = "\n".join(self._ref_lines("K", n_refs, f"R{tag}X"))
        self.add_procedure(
            f"      SUBROUTINE {proc}(K)\n      INTEGER K\n{refs}\n"
            "      RETURN\n      END\n"
        )
        self.add_main(f"      {var} = {value}")
        if sink:
            self.add_main(f"      CALL {self._ensure_sink()}(1, {var})")
        self.add_main(f"      CALL {proc}({var})")

    def formal_chain(self, depth: int, refs_per_level: int, value: int,
                     fragile: bool = False) -> None:
        """A constant passed down a chain of ``depth`` procedures, each
        referencing its formal ``refs_per_level`` times.

        Detected by: level 1 by every jump function (the actual is a
        literal); levels >= 2 only by pass-through and polynomial jump
        functions (the actual is the incoming formal). With
        ``fragile=True`` each level first shows its formal to a read-only
        helper, which kills levels >= 2 in the no-MOD configuration.
        """
        assert depth >= 1
        tag = self._fresh("fc")
        names = [f"FC{tag}L{level}" for level in range(1, depth + 1)]
        checker = self._ensure_checker() if fragile else None
        for level, proc in enumerate(names, start=1):
            lines = self._ref_lines("K", refs_per_level, f"R{tag}L{level}X")
            if level < depth:
                if checker is not None:
                    lines.append(f"      CALL {checker}(K)")
                lines.append(f"      CALL {names[level]}(K)")
            body = "\n".join(lines)
            self.add_procedure(
                f"      SUBROUTINE {proc}(K)\n      INTEGER K\n{body}\n"
                "      RETURN\n      END\n"
            )
        self.add_main(f"      CALL {names[0]}({value})")

    def global_direct(self, values: Sequence[int], n_workers: int,
                      refs_per_worker: int, kill_from_worker: Optional[int] = None
                      ) -> None:
        """Globals assigned in MAIN, read by ``n_workers`` sibling
        procedures.

        Detected by: intraprocedural and better (the literal jump
        function misses implicitly passed globals). Return functions are
        not needed. With ``kill_from_worker=i`` a recursive-sink call is
        inserted before worker ``i``, so workers ``i..`` lose the globals
        in the no-MOD configuration.
        """
        tag = self._fresh("gd")
        globals_here = []
        for index, value in enumerate(values):
            name = self.add_global(f"G{tag}V{index}")
            globals_here.append(name)
            self.add_main(f"      {name} = {value}")
        for worker in range(n_workers):
            if kill_from_worker is not None and worker == kill_from_worker:
                self.add_main(f"      TK{tag} = {worker}")
                self.add_main(f"      CALL {self._ensure_sink()}(1, TK{tag})")
            proc = f"GD{tag}W{worker}"
            lines = []
            for ref in range(refs_per_worker):
                source = globals_here[ref % len(globals_here)]
                lines.append(f"      R{tag}W{worker}X{ref} = {source} + {ref + 1}")
            body = "\n".join(lines)
            self.add_procedure(
                f"      SUBROUTINE {proc}\n{self._COMMON_PLACEHOLDER}{body}\n"
                "      RETURN\n      END\n"
            )
            self.add_main(f"      CALL {proc}")

    def global_via_init(self, values: Sequence[int], n_workers: int,
                        refs_per_worker: int,
                        kill_from_worker: Optional[int] = None) -> None:
        """Globals assigned inside an INIT procedure called first by MAIN
        — the ocean pattern: without return jump functions the analyzer
        cannot see what INIT did, and every downstream constant is lost.

        Detected by: intraprocedural and better, but only when return
        jump functions are on.
        """
        tag = self._fresh("gi")
        globals_here = []
        init_lines = []
        for index, value in enumerate(values):
            name = self.add_global(f"G{tag}V{index}")
            globals_here.append(name)
            init_lines.append(f"      {name} = {value}")
        init = f"GI{tag}INIT"
        self.add_procedure(
            f"      SUBROUTINE {init}\n{self._COMMON_PLACEHOLDER}"
            + "\n".join(init_lines)
            + "\n      RETURN\n      END\n"
        )
        self.add_main(f"      CALL {init}")
        for worker in range(n_workers):
            if kill_from_worker is not None and worker == kill_from_worker:
                self.add_main(f"      TK{tag} = {worker}")
                self.add_main(f"      CALL {self._ensure_sink()}(1, TK{tag})")
            proc = f"GI{tag}W{worker}"
            lines = []
            for ref in range(refs_per_worker):
                source = globals_here[ref % len(globals_here)]
                lines.append(f"      R{tag}W{worker}X{ref} = {source} * {ref + 2}")
            body = "\n".join(lines)
            self.add_procedure(
                f"      SUBROUTINE {proc}\n{self._COMMON_PLACEHOLDER}{body}\n"
                "      RETURN\n      END\n"
            )
            self.add_main(f"      CALL {proc}")

    def function_returns(self, n_refs: int, value: int) -> None:
        """A constant-returning INTEGER FUNCTION whose result is
        referenced ``n_refs`` times in MAIN.

        Detected by: every jump-function kind, but only when return jump
        functions are on; invisible to the intraprocedural baseline.
        """
        tag = self._fresh("fr")
        func = f"FR{tag}"
        var = f"Y{tag}"
        self.add_procedure(
            f"      INTEGER FUNCTION {func}()\n"
            f"      {func} = {value}\n"
            "      RETURN\n      END\n"
        )
        self.add_main(f"      {var} = {func}()")
        for line in self._ref_lines(var, n_refs, f"R{tag}X"):
            self.add_main(line)

    def dead_branch_reveal(self, n_refs: int, live_value: int,
                           dead_value: int) -> None:
        """A dispatcher whose branch condition is an interprocedural
        constant; the dead arm calls the worker with a different
        constant. Ordinary propagation meets the two edges to ⊥; only
        complete propagation (which folds the branch, deletes the dead
        call site, and re-propagates) recovers the live constant.
        """
        tag = self._fresh("db")
        dispatch = f"DB{tag}D"
        worker = f"DB{tag}W"
        refs = "\n".join(self._ref_lines("K", n_refs, f"R{tag}X"))
        self.add_procedure(
            f"      SUBROUTINE {worker}(K)\n      INTEGER K\n{refs}\n"
            "      RETURN\n      END\n"
        )
        self.add_procedure(
            f"      SUBROUTINE {dispatch}(MODE)\n"
            "      INTEGER MODE\n"
            "      IF (MODE .EQ. 1) THEN\n"
            f"        CALL {worker}({live_value})\n"
            "      ELSE\n"
            f"        CALL {worker}({dead_value})\n"
            "      ENDIF\n"
            "      RETURN\n      END\n"
        )
        self.add_main(f"      CALL {dispatch}(1)")

    def conflict_calls(self, values: Sequence[int], n_refs: int = 2) -> None:
        """The same procedure invoked with different constants: the meet
        washes its parameter to ⊥, so nothing is found (but a cloning
        pass can split the call sites)."""
        tag = self._fresh("cf")
        proc = f"CF{tag}"
        refs = "\n".join(self._ref_lines("K", n_refs, f"R{tag}X"))
        self.add_procedure(
            f"      SUBROUTINE {proc}(K)\n      INTEGER K\n{refs}\n"
            "      RETURN\n      END\n"
        )
        for value in values:
            self.add_main(f"      CALL {proc}({value})")

    def bounded_loop(self, trips: int) -> None:
        """A worker whose loop bound is an interprocedural constant —
        the paper's archetypal application ("interprocedural constants
        are often used as loop bounds").

        Detected by: every jump function (the actual is a literal);
        contributes exactly one countable reference (the bound) to every
        interprocedural configuration and zero to the intraprocedural
        baseline. The trip-count application resolves the loop to
        ``trips`` iterations exactly when propagation delivers the
        constant.
        """
        tag = self._fresh("bl")
        proc = f"BL{tag}"
        self.add_procedure(
            f"      SUBROUTINE {proc}(K)\n"
            "      INTEGER K, S\n"
            "      S = 0\n"
            f"      DO I{tag} = 1, K\n"
            f"        S = S + I{tag}\n"
            "      ENDDO\n"
            f"      PRINT *, S\n"
            "      RETURN\n      END\n"
        )
        self.add_main(f"      CALL {proc}({trips})")

    def noise_proc(self, n_statements: int, with_loop: bool = True) -> None:
        """A procedure full of READ-driven computation: contributes lines
        and call-graph realism, but no constants anywhere."""
        tag = self._fresh("nz")
        proc = f"NZ{tag}"
        lines = [f"      READ *, A{tag}", f"      B{tag} = A{tag} * 3"]
        if with_loop:
            lines.append(f"      S{tag} = 0")
            lines.append(f"      DO I{tag} = 1, A{tag}")
            lines.append(f"        S{tag} = S{tag} + I{tag} * B{tag}")
            lines.append("      ENDDO")
        for index in range(max(0, n_statements - len(lines))):
            lines.append(f"      C{tag}X{index} = B{tag} + A{tag} * {index + 1}")
        lines.append(f"      PRINT *, B{tag}")
        body = "\n".join(lines)
        self.add_procedure(
            f"      SUBROUTINE {proc}\n{body}\n      RETURN\n      END\n"
        )
        self.add_main(f"      CALL {proc}")

    # -- assembly ---------------------------------------------------------------

    def build(self) -> str:
        """Render the full program text (MAIN first, then procedures),
        resolving COMMON placeholders against the final global list."""
        main = ["      PROGRAM MAIN"]
        common = self._common_decl()
        if common:
            main.append(common.rstrip("\n"))
        main.append(f"C     suite program: {self.name}")
        main.extend(self.main_lines)
        main.append("      END")
        chunks = ["\n".join(main) + "\n"]
        chunks.extend(self.procedures)
        text = "\n".join(chunks)
        return text.replace(self._COMMON_PLACEHOLDER, common)
