"""Seeded random MiniFortran program generator.

Used by the property-based tests (every generated program must parse,
lower, analyze without error, and — the strongest check — every
CONSTANTS pair the analyzer claims must hold on every invocation when
the program is executed by the reference interpreter) and by the scaling
benchmark.

Generated programs are guaranteed to terminate: the call graph is
acyclic by construction (a procedure only calls higher-numbered
procedures) and every DO loop has literal bounds with a positive literal
step.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class GeneratorConfig:
    """Size and shape knobs for :func:`generate_program`."""

    procedures: int = 5
    max_statements_per_procedure: int = 12
    globals_count: int = 3
    max_formals: int = 3
    read_probability: float = 0.15
    call_probability: float = 0.3
    branch_probability: float = 0.25
    loop_probability: float = 0.15
    goto_probability: float = 0.05
    #: Bounds on the concrete input vector of :func:`generate_case`
    #: (values fed to READ statements when the program is executed).
    max_inputs: int = 20
    input_range: Tuple[int, int] = (-9, 9)


@dataclass(frozen=True)
class GeneratedCase:
    """One differential-testing case: a program plus the concrete
    inputs its driver ``MAIN`` consumes through READ statements.

    Both parts are a pure function of ``seed``: the source is exactly
    ``generate_program(seed, config)`` and the input vector is drawn
    from an independent RNG stream, so adding inputs did not perturb
    any historically generated program text.
    """

    seed: int
    source: str
    inputs: Tuple[int, ...] = field(default=())


class _ProcedureShape:
    def __init__(self, name: str, formals: List[str], is_function: bool):
        self.name = name
        self.formals = formals
        self.is_function = is_function


class _Generator:
    def __init__(self, seed: int, config: GeneratorConfig):
        self.rng = random.Random(seed)
        self.config = config
        self.globals = [f"GV{i}" for i in range(config.globals_count)]
        self.shapes: List[_ProcedureShape] = []
        self._label_counter = 100
        #: Loop variables of enclosing DO loops: reads are fine, but a
        #: write below the bound would make the loop spin forever.
        self._protected: set = set()

    # -- shapes -------------------------------------------------------------

    def _make_shapes(self) -> None:
        for index in range(self.config.procedures):
            formals = [
                f"F{index}A{j}"
                for j in range(self.rng.randint(0, self.config.max_formals))
            ]
            is_function = bool(formals) and self.rng.random() < 0.25
            self.shapes.append(
                _ProcedureShape(f"P{index}", formals, is_function)
            )

    # -- expressions ----------------------------------------------------------

    def _expr(self, variables: List[str], depth: int = 0) -> str:
        roll = self.rng.random()
        if depth >= 2 or roll < 0.4 or not variables:
            return str(self.rng.randint(-20, 20))
        if roll < 0.7:
            return self.rng.choice(variables)
        op = self.rng.choice(["+", "-", "*"])
        left = self._expr(variables, depth + 1)
        right = self._expr(variables, depth + 1)
        return f"({left} {op} {right})"

    def _condition(self, variables: List[str]) -> str:
        relation = self.rng.choice([".EQ.", ".NE.", ".LT.", ".LE.", ".GT.", ".GE."])
        return f"{self._expr(variables)} {relation} {self._expr(variables)}"

    # -- statements -----------------------------------------------------------

    def _call_target(self, caller_index: int) -> Optional[_ProcedureShape]:
        candidates = self.shapes[caller_index + 1 :]
        if not candidates:
            return None
        return self.rng.choice(candidates)

    def _call_statement(self, caller_index: int, variables: List[str]) -> List[str]:
        target = self._call_target(caller_index)
        if target is None:
            return []
        # Loop variables must not be passed by reference (a callee
        # writeback below the loop bound would spin forever). Globals
        # must not be passed by reference either, and no variable twice
        # in one call: FORTRAN forbids modifying aliased dummy/global
        # pairs, and the analysis — like the paper's — assumes
        # standard-conforming programs.
        passable = [
            v
            for v in variables
            if v not in self._protected and v not in self.globals
        ]
        args = []
        used: set = set()
        for _ in target.formals:
            candidates = [v for v in passable if v not in used]
            if candidates and self.rng.random() < 0.6:
                choice = self.rng.choice(candidates)
                used.add(choice)
                args.append(choice)
            else:
                args.append(str(self.rng.randint(-10, 10)))
        arg_text = f"({', '.join(args)})" if args else ""
        if target.is_function:
            result = self._fresh_local(variables)
            return [f"      {result} = {target.name}{arg_text}"]
        return [f"      CALL {target.name}{arg_text}"]

    def _fresh_local(self, variables: List[str]) -> str:
        name = f"L{len(variables)}Z"
        variables.append(name)
        return name

    def _statements(
        self, caller_index: int, variables: List[str], budget: int, depth: int = 0
    ) -> List[str]:
        lines: List[str] = []
        while budget > 0:
            budget -= 1
            roll = self.rng.random()
            config = self.config
            writable = [v for v in variables if v not in self._protected]
            if roll < config.read_probability and writable:
                lines.append(f"      READ *, {self.rng.choice(writable)}")
            elif roll < config.read_probability + config.call_probability:
                lines.extend(self._call_statement(caller_index, variables))
            elif (
                roll
                < config.read_probability
                + config.call_probability
                + config.branch_probability
                and depth < 2
            ):
                then_body = self._statements(
                    caller_index, variables, self.rng.randint(1, 2), depth + 1
                )
                lines.append(f"      IF ({self._condition(variables)}) THEN")
                lines.extend("  " + line for line in then_body)
                if self.rng.random() < 0.5:
                    else_body = self._statements(
                        caller_index, variables, self.rng.randint(1, 2), depth + 1
                    )
                    lines.append("      ELSE")
                    lines.extend("  " + line for line in else_body)
                lines.append("      ENDIF")
            elif (
                roll
                < config.read_probability
                + config.call_probability
                + config.branch_probability
                + config.loop_probability
                and depth < 2
            ):
                loop_var = self._fresh_local(variables)
                lo = self.rng.randint(1, 3)
                hi = lo + self.rng.randint(0, 4)
                self._protected.add(loop_var)
                body = self._statements(
                    caller_index, variables, self.rng.randint(1, 3), depth + 1
                )
                self._protected.discard(loop_var)
                lines.append(f"      DO {loop_var} = {lo}, {hi}")
                lines.extend("  " + line for line in body)
                lines.append("      ENDDO")
            elif roll < 0.99 or not writable:
                target = (
                    self._fresh_local(variables)
                    if not writable or self.rng.random() < 0.4
                    else self.rng.choice(writable)
                )
                lines.append(f"      {target} = {self._expr(variables)}")
            else:
                lines.append(f"      PRINT *, {self._expr(variables)}")
        return lines

    def _goto_wrap(self, lines: List[str], variables: List[str]) -> List[str]:
        """Occasionally guard the body's tail with a forward GOTO."""
        if self.rng.random() >= self.config.goto_probability or len(lines) < 3:
            return lines
        self._label_counter += 10
        label = self._label_counter
        split = self.rng.randint(1, len(lines) - 1)
        guarded = [
            f"      IF ({self._condition(variables)}) GOTO {label}",
            *lines[:split],
            f" {label}  CONTINUE",
            *lines[split:],
        ]
        return guarded

    # -- units ---------------------------------------------------------------

    def _common_decl(self) -> str:
        return f"      COMMON /GEN/ {', '.join(self.globals)}"

    def _unit(self, index: int) -> str:
        shape = self.shapes[index]
        variables = list(shape.formals) + list(self.globals)
        budget = self.rng.randint(2, self.config.max_statements_per_procedure)
        body = self._statements(index, variables, budget)
        body = self._goto_wrap(body, variables)
        if shape.is_function:
            header = (
                f"      INTEGER FUNCTION {shape.name}"
                f"({', '.join(shape.formals)})"
            )
            body.append(f"      {shape.name} = {self._expr(variables)}")
        elif shape.formals:
            header = f"      SUBROUTINE {shape.name}({', '.join(shape.formals)})"
        else:
            header = f"      SUBROUTINE {shape.name}"
        return "\n".join(
            [header, self._common_decl(), *body, "      RETURN", "      END"]
        )

    def generate(self) -> str:
        self._make_shapes()
        variables = list(self.globals)
        main_body = self._statements(-1, variables, self.rng.randint(3, 10))
        main = "\n".join(
            [
                "      PROGRAM MAIN",
                self._common_decl(),
                *main_body,
                "      END",
            ]
        )
        units = [main] + [self._unit(i) for i in range(len(self.shapes))]
        return "\n\n".join(units) + "\n"


def generate_program(seed: int, config: Optional[GeneratorConfig] = None) -> str:
    """Generate a deterministic random MiniFortran program for ``seed``."""
    return _Generator(seed, config or GeneratorConfig()).generate()


#: Stream separator for the input-vector RNG: generated *text* for a
#: given seed must stay byte-identical to what `generate_program` has
#: always produced, so inputs come from a distinct seeded stream.
_INPUT_STREAM_SALT = 0x9E3779B9


def generate_inputs(seed: int, config: Optional[GeneratorConfig] = None) -> Tuple[int, ...]:
    """The deterministic concrete input vector for ``seed`` — integers
    fed to the program's READ statements during differential runs."""
    config = config or GeneratorConfig()
    rng = random.Random(seed ^ _INPUT_STREAM_SALT)
    count = rng.randint(0, config.max_inputs)
    low, high = config.input_range
    return tuple(rng.randint(low, high) for _ in range(count))


def generate_case(seed: int, config: Optional[GeneratorConfig] = None) -> GeneratedCase:
    """Generate a full differential-testing case (program + driver
    inputs) for ``seed``. Byte-identical across runs for a fixed seed
    and config."""
    config = config or GeneratorConfig()
    return GeneratedCase(
        seed=seed,
        source=generate_program(seed, config),
        inputs=generate_inputs(seed, config),
    )


# -- scale tier ----------------------------------------------------------

#: Stream separator for the scaled generator: like the input vector,
#: the 10k-100k tier draws from its own seeded stream so the classic
#: per-seed program text stays byte-identical forever.
_SCALE_STREAM_SALT = 0x5DEECE66D


@dataclass
class ScaleConfig:
    """Knobs for :func:`generate_scaled_program` — the 10k-100k
    procedure tier driven by the ``large`` pipeline bench.

    The classic :class:`_Generator` picks call targets by slicing
    ``shapes[caller+1:]`` — O(N) per call site, O(N^2) per program,
    unusable past a few thousand procedures. Here the call graph is
    *layered*: procedure ``i`` lives in layer ``i // layer_width`` and
    calls only the next layer's contiguous index range, so choosing a
    callee is one ``randrange``. The graph stays acyclic (calls go
    strictly to higher indices) and generation is O(N) in both time
    and RNG draws.
    """

    procedures: int = 10_000
    #: Procedures per call-graph layer (the fan-out window).
    layer_width: int = 64
    globals_count: int = 4
    max_formals: int = 2
    max_calls_per_procedure: int = 2
    #: How many layer-0 procedures ``MAIN`` invokes.
    main_calls: int = 24
    #: Chance a local is READ (unknown at analysis time) instead of
    #: assigned — keeps the lattice honestly mixed, not all-constant.
    read_probability: float = 0.1


def generate_scaled_program(
    seed: int, config: Optional[ScaleConfig] = None
) -> str:
    """Deterministic layered MiniFortran program at benchmark scale.

    Byte-identical across runs for a fixed ``(seed, config)``; drawn
    from a stream independent of :func:`generate_program`. Call
    arguments are literals or caller locals (never globals, never
    aliased), every call targets a strictly higher-numbered procedure,
    and there are no loops — so the program parses, lowers, and
    analyzes cleanly and would terminate if executed.
    """
    config = config or ScaleConfig()
    rng = random.Random(seed ^ _SCALE_STREAM_SALT)
    total = config.procedures
    width = max(1, config.layer_width)
    globals_ = [f"GV{i}" for i in range(config.globals_count)]
    common = (
        f"      COMMON /GEN/ {', '.join(globals_)}" if globals_ else None
    )

    # Pass 1: every procedure's shape, so call sites can be emitted
    # with the right arity before the callee's unit text exists.
    formal_counts = [
        rng.randint(0, config.max_formals) for _ in range(total)
    ]
    function_flags = [
        count > 0 and rng.random() < 0.2 for count in formal_counts
    ]

    def emit_call(lines: List[str], caller_locals: List[str],
                  low: int, high: int) -> None:
        target = rng.randrange(low, high)
        args = []
        for _ in range(formal_counts[target]):
            if caller_locals and rng.random() < 0.3:
                args.append(rng.choice(caller_locals))
            else:
                args.append(str(rng.randint(-20, 20)))
        arg_text = f"({', '.join(args)})" if args else ""
        if function_flags[target]:
            local = f"L{len(caller_locals)}Z"
            caller_locals.append(local)
            lines.append(f"      {local} = P{target}{arg_text}")
        else:
            lines.append(f"      CALL P{target}{arg_text}")

    def emit_body(lines: List[str], formals: List[str],
                  next_range) -> List[str]:
        locals_: List[str] = []
        readable = formals + globals_
        for _ in range(rng.randint(1, 2)):
            local = f"L{len(locals_)}Z"
            locals_.append(local)
            roll = rng.random()
            if roll < config.read_probability:
                lines.append(f"      READ *, {local}")
            elif readable and roll < 0.55:
                lines.append(
                    f"      {local} = ({rng.choice(readable)} + "
                    f"{rng.randint(-20, 20)})"
                )
            else:
                lines.append(f"      {local} = {rng.randint(-20, 20)}")
        if next_range is not None:
            low, high = next_range
            for _ in range(
                rng.randint(1, config.max_calls_per_procedure)
            ):
                emit_call(lines, locals_, low, high)
        if globals_ and rng.random() < 0.25:
            lines.append(
                f"      {rng.choice(globals_)} = {rng.randint(-20, 20)}"
            )
        return locals_

    # MAIN: pin the globals to literals, then fan into layer 0.
    main_lines: List[str] = []
    for name in globals_:
        main_lines.append(f"      {name} = {rng.randint(-20, 20)}")
    main_locals: List[str] = []
    first_high = min(width, total)
    for _ in range(config.main_calls):
        emit_call(main_lines, main_locals, 0, first_high)
    header = ["      PROGRAM MAIN"]
    if common:
        header.append(common)
    pieces = ["\n".join([*header, *main_lines, "      END"])]

    for index in range(total):
        formals = [f"F{index}A{j}" for j in range(formal_counts[index])]
        next_low = (index // width + 1) * width
        next_range = (
            (next_low, min(next_low + width, total))
            if next_low < total
            else None
        )
        lines: List[str] = []
        locals_ = emit_body(lines, formals, next_range)
        if function_flags[index]:
            unit_header = (
                f"      INTEGER FUNCTION P{index}({', '.join(formals)})"
            )
            sources = formals + locals_
            result = (
                rng.choice(sources)
                if sources and rng.random() < 0.5
                else str(rng.randint(-20, 20))
            )
            lines.append(f"      P{index} = {result}")
        elif formals:
            unit_header = (
                f"      SUBROUTINE P{index}({', '.join(formals)})"
            )
        else:
            unit_header = f"      SUBROUTINE P{index}"
        unit = [unit_header]
        if common:
            unit.append(common)
        unit.extend(lines)
        unit.append("      RETURN")
        unit.append("      END")
        pieces.append("\n".join(unit))
    return "\n\n".join(pieces) + "\n"
