"""Partition-invariance differential harness for the linkage layer.

The linker's correctness claim is exact: analyzing a program split
across K files (linked through EXTERNAL declarations and shared COMMON
blocks) must be *byte-identical* — CONSTANTS sets, substitution
counts, demotion logs — to analyzing the same program as one file.
This module turns that claim into a seeded differential campaign in
the spirit of :mod:`repro.oracle.harness`:

1. generate a seeded single-file program (:mod:`repro.suite.generator`);
2. split it into K files under a seeded random unit partition,
   inserting ``EXTERNAL`` declarations for every reference that now
   crosses a file boundary;
3. link-and-analyze the split, and demand its location-free artifacts
   match both (a) single-file analysis of the concatenation of the
   split files (byte-identity of the merge itself) and (b) single-file
   analysis of the *original* program (invariance under the unit
   reordering the partition introduced).

The split/partition is a pure function of ``(seed, parts)``, so a
failing trial is reproducible from its seed alone.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import AnalysisConfig
from repro.suite.generator import GeneratorConfig, generate_program

#: Partition RNG stream salt: keeps the partition draw independent of
#: the generator's own seed stream.
_PARTITION_SALT = 0x5F3759DF

_UNIT_NAME = re.compile(r"(?:PROGRAM|SUBROUTINE|FUNCTION)\s+(\w+)", re.IGNORECASE)


@dataclass
class PartitionTrial:
    """Outcome of one seeded partition-invariance trial."""

    seed: int
    parts: int
    discrepancies: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.discrepancies


@dataclass
class PartitionReport:
    """Aggregate of one :func:`run_link_trials` campaign."""

    trials: int = 0
    failures: List[PartitionTrial] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"{self.trials} link trial(s): "
            f"{self.trials - len(self.failures)} passed, "
            f"{len(self.failures)} failed"
        ]
        for failure in self.failures:
            lines.append(f"  seed {failure.seed} (K={failure.parts}):")
            lines.extend(f"    {d}" for d in failure.discrepancies[:6])
        return "\n".join(lines)


# -- splitting ---------------------------------------------------------------


def _split_units(source: str) -> List[Tuple[str, str]]:
    """Blank-line-separated units of a single-file program, with names."""
    named = []
    for unit in source.strip("\n").split("\n\n"):
        header = unit.lstrip().splitlines()[0]
        match = _UNIT_NAME.search(header)
        if match is None:
            raise ValueError(f"cannot find a unit name in {header!r}")
        named.append((match.group(1).lower(), unit))
    return named


def _unit_procedure_references(name: str, text: str) -> set:
    """Procedure names referenced by one unit's text (parsed alone)."""
    from repro.frontend.parser import parse_source
    from repro.linkage.linker import _unit_references

    module = parse_source(text + "\n", f"{name}.f")
    refs = set()
    for unit in module.units:
        for ref, _location, _is_call in _unit_references(unit):
            refs.add(ref)
    return refs


def split_program(
    source: str, parts: int, seed: int
) -> List[Tuple[str, str]]:
    """Split a single-file program into ``parts`` files under a seeded
    random unit partition.

    Every file is non-empty, units keep their original relative order
    inside each file, and each unit gains one generated ``EXTERNAL``
    declaration naming exactly the procedures it references that now
    live in another file. Deterministic for a fixed ``(source, parts,
    seed)`` triple.
    """
    units = _split_units(source)
    parts = max(1, min(parts, len(units)))
    rng = random.Random(seed ^ _PARTITION_SALT)
    # Deal one unit to each file first (no empty files), then spread.
    order = list(range(len(units)))
    rng.shuffle(order)
    assignment: Dict[int, int] = {}
    for file_index, unit_index in enumerate(order[:parts]):
        assignment[unit_index] = file_index
    for unit_index in order[parts:]:
        assignment[unit_index] = rng.randrange(parts)

    defined = {name for name, _ in units}
    placed: Dict[str, int] = {
        name: assignment[index] for index, (name, _) in enumerate(units)
    }
    files: List[List[str]] = [[] for _ in range(parts)]
    for index, (name, text) in enumerate(units):
        file_index = assignment[index]
        foreign = sorted(
            ref
            for ref in _unit_procedure_references(name, text)
            if ref in defined and placed[ref] != file_index
        )
        if foreign:
            lines = text.splitlines()
            decl = "      EXTERNAL " + ", ".join(ref.upper() for ref in foreign)
            lines.insert(1, decl)
            text = "\n".join(lines)
        files[file_index].append(text)
    return [
        (f"part{index}.f", "\n\n".join(chunks) + "\n")
        for index, chunks in enumerate(files)
    ]


# -- the invariance check ----------------------------------------------------


def _artifacts(result) -> str:
    """Every location-free externally visible artifact, concatenated —
    what partition invariance quantifies over."""
    return "\n".join(
        [
            result.constants.format_report(),
            f"substituted={result.substituted_constants}",
            repr(sorted(result.substitution.per_procedure.items())),
            f"resilience_ok={result.resilience.ok}",
            result.resilience.summary(),
        ]
    )


def check_partition(
    source: str,
    parts: int,
    seed: int,
    config: Optional[AnalysisConfig] = None,
) -> List[str]:
    """Split ``source`` into ``parts`` files and check both invariance
    properties; returns the (empty on success) discrepancy list."""
    from repro.ipcp.driver import analyze_source
    from repro.linkage import analyze_linked_sources

    config = config or AnalysisConfig()
    files = split_program(source, parts, seed)
    linked, link = analyze_linked_sources(files, config)
    if linked is None:
        return [
            "linking the split program failed: "
            + "; ".join(d.render() for d in link.diagnostics.errors())
        ]
    problems: List[str] = []
    linked_artifacts = _artifacts(linked)

    concatenated = analyze_source(
        "\n".join(text for _, text in files), config, filename="<concat>"
    )
    if linked_artifacts != _artifacts(concatenated):
        problems.append(
            "linked analysis diverged from single-file analysis of the "
            "concatenation:\n--- linked ---\n"
            f"{linked_artifacts}\n--- concatenated ---\n"
            f"{_artifacts(concatenated)}"
        )

    unsplit = analyze_source(source, config, filename="<unsplit>")
    if linked_artifacts != _artifacts(unsplit):
        problems.append(
            "linked analysis diverged from the unsplit program:\n"
            f"--- linked ---\n{linked_artifacts}\n--- unsplit ---\n"
            f"{_artifacts(unsplit)}"
        )
    return problems


def run_trial(
    seed: int,
    generator_config: Optional[GeneratorConfig] = None,
    max_partitions: int = 4,
    config: Optional[AnalysisConfig] = None,
) -> PartitionTrial:
    """Generate, split, and cross-check one seeded program."""
    rng = random.Random(seed ^ _PARTITION_SALT)
    parts = rng.randint(2, max(2, max_partitions))
    source = generate_program(
        seed, generator_config or GeneratorConfig(procedures=4)
    )
    trial = PartitionTrial(seed=seed, parts=parts)
    trial.discrepancies = check_partition(source, parts, seed, config)
    return trial


def run_link_trials(
    trials: int,
    seed: int = 0,
    generator_config: Optional[GeneratorConfig] = None,
    max_partitions: int = 4,
    config: Optional[AnalysisConfig] = None,
    progress: Optional[Callable[[PartitionTrial], None]] = None,
) -> PartitionReport:
    """Run ``trials`` seeded partition-invariance trials (seeds
    ``seed .. seed+trials-1``). Deterministic for a fixed argument
    tuple."""
    report = PartitionReport()
    for index in range(trials):
        trial = run_trial(seed + index, generator_config, max_partitions, config)
        report.trials += 1
        if not trial.ok:
            report.failures.append(trial)
        if progress is not None:
            progress(trial)
    return report
