"""Differential-testing oracle: the interpreter as ground truth.

CCKT86's central claim is soundness — every ``(name, value)`` pair in
``CONSTANTS(p)`` must hold on *every* invocation of ``p`` — and its
transformations (substitution, cloning) must preserve semantics. This
package checks both claims, plus graceful-degradation monotonicity,
against actual execution:

- :mod:`repro.oracle.harness` — one seeded trial: generate a program
  with concrete driver inputs, execute it through the reference
  interpreter, and cross-check three properties against the analysis;
- :mod:`repro.oracle.minimize` — greedy counterexample shrinking
  (whole procedures first, then individual statements);
- :mod:`repro.oracle.corpus` — persisting minimized failures;
- :mod:`repro.oracle.golden` — the golden-snapshot regression corpus.

The CLI front door is ``repro-ipcp oracle``.
"""

from repro.oracle.harness import (
    DEFAULT_ORACLE_CONFIG,
    Discrepancy,
    OracleReport,
    TrialResult,
    check_source,
    run_oracle,
    run_trial,
)
from repro.oracle.minimize import minimize_source
from repro.oracle.corpus import CorpusEntry, load_corpus, write_failure

__all__ = [
    "DEFAULT_ORACLE_CONFIG",
    "Discrepancy",
    "OracleReport",
    "TrialResult",
    "check_source",
    "run_oracle",
    "run_trial",
    "minimize_source",
    "CorpusEntry",
    "load_corpus",
    "write_failure",
]
