"""Differential-equivalence mode of the oracle: optimized == original.

The optimization backend (:mod:`repro.opt`) must never change observable
behaviour. This module enforces that by execution: interpret the fresh
lowering of a program, interpret the analyzed-then-optimized program
with the same inputs, and require byte-identical PRINT output. A
seeded campaign (``repro oracle --opt-trials N``) runs the generator
through every pass combination worth checking and minimizes failures
with the PR 2 shrinker, exactly like the soundness/preservation
campaigns.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.config import AnalysisConfig, BudgetExceeded
from repro.engine.memo import fresh_program
from repro.frontend.errors import FrontendError
from repro.ir.interp import InterpreterError, Trace, run_program
from repro.ir.verify import VerificationError
from repro.opt.pipeline import PASS_NAMES, optimize_source
from repro.oracle.harness import (
    TRIAL_FUEL,
    Discrepancy,
    OracleReport,
    TrialResult,
    _trace_diff,
)
from repro.suite.generator import GeneratorConfig, generate_case

#: Property tag for corpus entries written by the equivalence campaign.
EQUIVALENCE = "equivalence"

#: Pass subsets every golden program / trial is checked under: each pass
#: alone (catches a pass that is only sound after another ran) plus the
#: full pipeline.
PASS_SUBSETS: Tuple[Tuple[str, ...], ...] = tuple(
    [(name,) for name in PASS_NAMES] + [PASS_NAMES]
)


def interpret_original(
    source: str,
    inputs: Sequence[int] = (),
    fuel: int = TRIAL_FUEL,
    filename: str = "equiv.f",
) -> Trace:
    """Reference behaviour: interpret a fresh (never-analyzed) lowering."""
    return run_program(fresh_program(source, filename), inputs, fuel)


def check_optimized_equivalence(
    source: str,
    inputs: Sequence[int] = (),
    config: Optional[AnalysisConfig] = None,
    passes: Sequence[str] = PASS_NAMES,
    fuel: int = TRIAL_FUEL,
    verify: bool = True,
) -> Optional[str]:
    """Optimize ``source`` under ``passes`` and execute both versions.

    Returns None when outputs are byte-identical, else a detail string.
    Raises InterpreterError when the *original* program cannot serve as
    an oracle run (fuel exhaustion, division by zero) — callers treat
    that as a skip, mirroring the soundness harness."""
    original = interpret_original(source, inputs, fuel)
    try:
        result, _report = optimize_source(
            source, config, passes=tuple(passes), verify=verify
        )
    except VerificationError as error:
        return f"optimizer produced invalid IR: {error}"
    try:
        # Generous margin: the optimized program should execute no more
        # steps, but a margin keeps a legitimate rewrite (destruct edge
        # copies) from tripping the limit before the comparison does.
        optimized = run_program(result.program, inputs, fuel * 4)
    except InterpreterError as error:
        return f"optimized program failed to execute: {error}"
    if original.output != optimized.output:
        return _trace_diff(original.output, optimized.output)
    return None


def interpret_original_project(
    named: Sequence[Tuple[str, str]],
    entry: Optional[str] = None,
    inputs: Sequence[int] = (),
    fuel: int = TRIAL_FUEL,
) -> Trace:
    """Reference behaviour of a multi-file project: link the
    ``(filename, text)`` pairs and interpret the fresh (never-analyzed)
    linked lowering. Raises ValueError when linking fails."""
    from repro.ir.lowering import lower_module
    from repro.linkage.linker import link_sources

    link = link_sources(list(named), entry=entry)
    if link.module is None:
        raise ValueError(link.diagnostics.format())
    return run_program(lower_module(link.module, None), inputs, fuel)


def check_optimized_project_equivalence(
    named: Sequence[Tuple[str, str]],
    entry: Optional[str] = None,
    inputs: Sequence[int] = (),
    config: Optional[AnalysisConfig] = None,
    passes: Sequence[str] = PASS_NAMES,
    fuel: int = TRIAL_FUEL,
    verify: bool = True,
) -> Optional[str]:
    """Multi-file analogue of :func:`check_optimized_equivalence`:
    link + analyze + optimize the project, and compare its output to
    the fresh linked lowering. ValueError on link failure (callers
    treat it as a skip — an unlinkable project has no behaviour to
    preserve)."""
    from repro.linkage.linker import analyze_linked_sources
    from repro.opt.pipeline import optimize_result

    original = interpret_original_project(named, entry, inputs, fuel)
    result, link = analyze_linked_sources(list(named), config, entry=entry)
    if result is None:
        raise ValueError(link.diagnostics.format())
    try:
        optimize_result(result, passes=tuple(passes), verify=verify)
    except VerificationError as error:
        return f"optimizer produced invalid IR: {error}"
    try:
        optimized = run_program(result.program, inputs, fuel * 4)
    except InterpreterError as error:
        return f"optimized program failed to execute: {error}"
    if original.output != optimized.output:
        return _trace_diff(original.output, optimized.output)
    return None


def reproduces_equivalence(
    source: str,
    inputs: Sequence[int],
    passes: Sequence[str] = PASS_NAMES,
    fuel: int = TRIAL_FUEL,
) -> bool:
    """Minimizer predicate: does the equivalence violation still show?"""
    try:
        return check_optimized_equivalence(
            source, inputs, passes=passes, fuel=fuel
        ) is not None
    except Exception:
        return False


def run_opt_trial(
    seed: int,
    generator_config: Optional[GeneratorConfig] = None,
    passes: Sequence[Tuple[str, ...]] = PASS_SUBSETS,
    fuel: int = TRIAL_FUEL,
) -> TrialResult:
    """One seeded equivalence trial across every pass subset."""
    from repro.oracle.harness import DEFAULT_ORACLE_CONFIG

    case = generate_case(seed, generator_config or DEFAULT_ORACLE_CONFIG)
    trial = TrialResult(seed=seed, source=case.source,
                        inputs=tuple(case.inputs))
    for subset in passes:
        try:
            detail = check_optimized_equivalence(
                case.source, case.inputs, passes=subset, fuel=fuel
            )
        except InterpreterError as error:
            trial.skipped = True
            trial.skip_reason = str(error)
            return trial
        except (FrontendError, BudgetExceeded) as error:
            trial.skipped = True
            trial.skip_reason = f"analysis unavailable: {error}"
            return trial
        if detail is not None:
            trial.discrepancies.append(
                Discrepancy(
                    EQUIVALENCE, f"passes={','.join(subset)}", detail
                )
            )
    return trial


def run_opt_oracle(
    trials: int,
    seed: int = 0,
    generator_config: Optional[GeneratorConfig] = None,
    passes: Sequence[Tuple[str, ...]] = PASS_SUBSETS,
    corpus_dir: Optional[str] = None,
    minimize: bool = True,
    fuel: int = TRIAL_FUEL,
    progress: Optional[Callable[[TrialResult], None]] = None,
) -> OracleReport:
    """Run ``trials`` seeded equivalence trials (seeds
    ``seed .. seed+trials-1``). Failing programs are minimized against
    the full pipeline (unless ``minimize`` is False) and persisted to
    ``corpus_dir`` when given. Deterministic for fixed arguments."""
    from repro.oracle.corpus import CorpusEntry, write_failure
    from repro.oracle.minimize import minimize_source

    report = OracleReport()
    for index in range(trials):
        trial = run_opt_trial(seed + index, generator_config, passes, fuel)
        report.trials += 1
        if trial.skipped:
            report.skipped += 1
        elif not trial.ok:
            first = trial.discrepancies[0]
            first_passes = tuple(first.config[len("passes="):].split(","))
            if minimize:
                report.minimized[trial.seed] = minimize_source(
                    trial.source,
                    lambda text: reproduces_equivalence(
                        text, trial.inputs, first_passes, fuel
                    ),
                )
            if corpus_dir is not None:
                write_failure(
                    corpus_dir,
                    CorpusEntry(
                        seed=trial.seed,
                        property=EQUIVALENCE,
                        source=report.minimized.get(trial.seed, trial.source),
                        inputs=tuple(trial.inputs),
                        detail=first.detail,
                    ),
                )
            report.failures.append(trial)
        if progress is not None:
            progress(trial)
    return report
