"""Golden-snapshot regression corpus.

~20 representative programs — the paper-suite replicas plus targeted
edge cases (cloning conflicts, GSA refinement, polynomial jump
functions, recursion, generated programs) — each snapshotted as a
plain-text file capturing the analysis surface a perf PR must not
silently change: the full CONSTANTS sets, the jump-function payload
classes, per-procedure substitution counts, and the transformed source.

Snapshots live in ``tests/golden/snapshots/`` and are compared verbatim
by ``tests/golden/test_golden.py``; regenerate with

    pytest tests/golden --update-goldens

after an *intentional* precision change, and review the diff like any
other code change (see docs/TESTING.md).
"""

from __future__ import annotations

import difflib
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.config import AnalysisConfig, JumpFunctionKind


@dataclass(frozen=True)
class GoldenProgram:
    """One corpus member: a program and the configuration to snapshot."""

    name: str
    source: str
    config: AnalysisConfig = field(default_factory=AnalysisConfig)
    note: str = ""


_REGISTRY: Optional[Dict[str, GoldenProgram]] = None


def _edge_case_programs() -> Dict[str, GoldenProgram]:
    from repro.suite.builder import SuiteProgramBuilder
    from repro.suite.generator import GeneratorConfig, generate_program

    programs: Dict[str, GoldenProgram] = {}

    def add(name: str, source: str, config: AnalysisConfig = None, note: str = ""):
        programs[name] = GoldenProgram(
            name, source, config or AnalysisConfig(), note
        )

    builder = SuiteProgramBuilder("clone")
    builder.conflict_calls((2, 9), n_refs=3)
    add(
        "edge_clone_conflict", builder.build(),
        note="conflicting call sites: the meet washes the formal to "
        "bottom — the program cloning recovers constants from",
    )

    builder = SuiteProgramBuilder("gsa")
    builder.dead_branch_reveal(4, 1, 2)
    add(
        "edge_gsa_refinement", builder.build(),
        AnalysisConfig(gsa_refinement=True),
        note="constant-guarded dead branch: GSA-style refinement drops "
        "the never-executed call site",
    )
    add(
        "edge_complete_propagation", builder.build(),
        AnalysisConfig.complete_propagation(),
        note="same dead branch through propagate/DCE iteration",
    )

    builder = SuiteProgramBuilder("chain")
    builder.formal_chain(3, 2, 5)
    add(
        "edge_formal_chain", builder.build(),
        note="three-deep formal forwarding: needs pass-through jump "
        "functions",
    )

    builder = SuiteProgramBuilder("ginit")
    builder.global_via_init((10,), 2, 3)
    add(
        "edge_global_via_init", builder.build(),
        note="global set through an INIT call: needs return jump "
        "functions",
    )

    builder = SuiteProgramBuilder("fret")
    builder.function_returns(3, 8)
    add(
        "edge_function_returns", builder.build(),
        note="function-result constant: return jump function of a "
        "FUNCTION unit",
    )

    builder = SuiteProgramBuilder("local")
    builder.local_constants(5, 3, sink=True)
    add(
        "edge_intraprocedural_only", builder.build(),
        AnalysisConfig.intraprocedural_only(),
        note="intraprocedural baseline with a MOD-killing sink call",
    )

    add(
        "edge_polynomial_jump",
        (
            "      PROGRAM MAIN\n"
            "      X = 4\n"
            "      Y = 3\n"
            "      CALL P(X + 2 * Y, X * Y)\n"
            "      END\n"
            "\n"
            "      SUBROUTINE P(A, B)\n"
            "      C = A + B\n"
            "      PRINT *, C\n"
            "      RETURN\n"
            "      END\n"
        ),
        note="actuals are polynomials over caller entry values: only "
        "polynomial jump functions carry them",
    )

    add(
        "edge_recursion",
        (
            "      PROGRAM MAIN\n"
            "      K = 5\n"
            "      CALL DOWN(K)\n"
            "      END\n"
            "\n"
            "      SUBROUTINE DOWN(N)\n"
            "      COMMON /S/ G\n"
            "      G = 2\n"
            "      IF (N .GT. 0) THEN\n"
            "        CALL DOWN(N - 1)\n"
            "      ENDIF\n"
            "      PRINT *, G + N\n"
            "      RETURN\n"
            "      END\n"
        ),
        note="self-recursive call-graph SCC handled conservatively",
    )

    generator_config = GeneratorConfig(procedures=4, max_statements_per_procedure=8)
    for seed in (7, 13):
        add(
            f"edge_generated_seed{seed}",
            generate_program(seed, generator_config),
            note=f"random generator output, seed {seed} (pins generator "
            "and analysis together)",
        )

    add(
        "edge_literal_kind",
        (
            "      PROGRAM MAIN\n"
            "      CALL Q(11)\n"
            "      CALL Q(11)\n"
            "      END\n"
            "\n"
            "      SUBROUTINE Q(V)\n"
            "      W = V - 1\n"
            "      PRINT *, W\n"
            "      RETURN\n"
            "      END\n"
        ),
        AnalysisConfig(jump_function=JumpFunctionKind.LITERAL),
        note="agreeing literal actuals: visible even to the weakest "
        "jump function",
    )

    return programs


def golden_programs() -> Dict[str, GoldenProgram]:
    """The full corpus, name -> program (built once, cached)."""
    global _REGISTRY
    if _REGISTRY is None:
        from repro.suite.programs import suite_sources
        from repro.testkit import TRI_PROGRAM

        registry: Dict[str, GoldenProgram] = {}
        for name, source in suite_sources().items():
            registry[f"suite_{name}"] = GoldenProgram(
                f"suite_{name}", source,
                note="paper benchmark-suite replica",
            )
        registry["tri_program"] = GoldenProgram(
            "tri_program", TRI_PROGRAM,
            note="the test suite's three-procedure example",
        )
        registry.update(_edge_case_programs())
        _REGISTRY = registry
    return _REGISTRY


# -- snapshot rendering ------------------------------------------------------


def render_snapshot(program: GoldenProgram) -> str:
    """The canonical snapshot text for one corpus member.

    Everything printed is deterministic: CONSTANTS lines are sorted,
    payload classes have a fixed order, substitution counts are sorted
    by procedure name.
    """
    from repro.ipcp.driver import analyze_source

    result = analyze_source(program.source, program.config, f"{program.name}.f")
    lines = [
        f"golden: {program.name}",
        f"configuration: {program.config.describe()}",
    ]
    if program.note:
        lines.append(f"note: {program.note}")
    lines.append("--- CONSTANTS ---")
    lines.append(result.constants.format_report())
    lines.append("--- jump functions ---")
    if result.jump_table is None:
        lines.append("(no interprocedural propagation)")
    else:
        counts = result.jump_table.payload_counts()
        lines.append(
            " ".join(f"{kind}={counts[kind]}" for kind in sorted(counts))
        )
    lines.append("--- substitution ---")
    lines.append(f"total: {result.substituted_constants}")
    for name in sorted(result.substitution.per_procedure):
        count = result.substitution.per_procedure[name]
        if count:
            lines.append(f"  {name}: {count}")
    lines.append("--- transformed source ---")
    lines.append(result.transformed_source().rstrip("\n"))
    return "\n".join(lines) + "\n"


def snapshot_path(directory: str, name: str) -> str:
    return os.path.join(directory, f"{name}.golden")


def check_golden(directory: str, program: GoldenProgram) -> Optional[str]:
    """None when the stored snapshot matches; otherwise a diff-style
    message (also for a missing snapshot)."""
    path = snapshot_path(directory, program.name)
    current = render_snapshot(program)
    if not os.path.exists(path):
        return (
            f"missing golden snapshot {path!r} — run "
            f"`pytest tests/golden --update-goldens` and commit the file"
        )
    with open(path, "r", encoding="utf-8") as handle:
        stored = handle.read()
    if stored == current:
        return None
    diff = "\n".join(
        difflib.unified_diff(
            stored.splitlines(),
            current.splitlines(),
            fromfile=f"{program.name}.golden (stored)",
            tofile=f"{program.name}.golden (current)",
            lineterm="",
        )
    )
    return (
        f"golden snapshot mismatch for {program.name} — if the change is "
        f"intentional, run `pytest tests/golden --update-goldens`:\n{diff}"
    )


def update_golden(directory: str, program: GoldenProgram) -> str:
    """(Re)write the stored snapshot; returns its path."""
    os.makedirs(directory, exist_ok=True)
    path = snapshot_path(directory, program.name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_snapshot(program))
    return path


def update_all(directory: str) -> Dict[str, str]:
    """Regenerate every snapshot; returns name -> path."""
    return {
        name: update_golden(directory, program)
        for name, program in sorted(golden_programs().items())
    }


# -- multi-file golden projects ----------------------------------------------


@dataclass(frozen=True)
class GoldenProject:
    """One multi-file corpus member: files linked into one program.

    ``explain`` optionally names a VAL cell whose provenance rendering
    is part of the snapshot; ``entry`` selects the main PROGRAM when
    the project defines several.
    """

    name: str
    files: "tuple"
    entry: Optional[str] = None
    explain: Optional[str] = None
    config: AnalysisConfig = field(default_factory=AnalysisConfig)
    note: str = ""


_PROJECTS: Optional[Dict[str, GoldenProject]] = None


def golden_projects() -> Dict[str, GoldenProject]:
    """The multi-file corpus, name -> project (built once, cached)."""
    global _PROJECTS
    if _PROJECTS is not None:
        return _PROJECTS

    projects: Dict[str, GoldenProject] = {}

    def add(name, files, entry=None, explain=None, config=None, note=""):
        projects[name] = GoldenProject(
            name, tuple(files), entry, explain,
            config or AnalysisConfig(), note,
        )

    add(
        "proj_cross_common",
        [
            ("main.f",
             "      PROGRAM MAIN\n"
             "      EXTERNAL WORK\n"
             "      COMMON /SHARED/ BASE, SCALE\n"
             "      BASE = 40\n"
             "      SCALE = 2\n"
             "      CALL WORK(100)\n"
             "      PRINT *, BASE\n"
             "      END\n"),
            ("work.f",
             "      SUBROUTINE WORK(N)\n"
             "      COMMON /SHARED/ BASE, SCALE\n"
             "      M = BASE + N * SCALE\n"
             "      PRINT *, M\n"
             "      RETURN\n"
             "      END\n"),
        ],
        explain="base@work",
        note="a COMMON constant set in one file is visible in a "
        "procedure defined in another; per-file analysis reports "
        "bottom for every cell",
    )

    add(
        "proj_killing_pair",
        [
            ("main.f",
             "      PROGRAM MAIN\n"
             "      EXTERNAL WORK\n"
             "      CALL WORK(1)\n"
             "      CALL HELP\n"
             "      END\n"),
            ("lib.f",
             "      SUBROUTINE HELP\n"
             "      EXTERNAL WORK\n"
             "      CALL WORK(2)\n"
             "      RETURN\n"
             "      END\n"
             "\n"
             "      SUBROUTINE WORK(N)\n"
             "      PRINT *, N\n"
             "      RETURN\n"
             "      END\n"),
        ],
        explain="n@work",
        note="call sites in two different files pass different "
        "constants; --explain shows the cross-file killing pair",
    )

    add(
        "proj_function_chain",
        [
            ("main.f",
             "      PROGRAM MAIN\n"
             "      EXTERNAL BUMP\n"
             "      K = BUMP(20)\n"
             "      CALL SINK(K)\n"
             "      END\n"),
            ("bump.f",
             "      INTEGER FUNCTION BUMP(V)\n"
             "      BUMP = V + 1\n"
             "      RETURN\n"
             "      END\n"
             "\n"
             "      SUBROUTINE SINK(W)\n"
             "      PRINT *, W\n"
             "      RETURN\n"
             "      END\n"),
        ],
        note="a FUNCTION result crosses the file boundary through a "
        "return jump function, then feeds a forward jump function",
    )

    add(
        "proj_entry_selection",
        [
            ("one.f",
             "      PROGRAM ALPHA\n"
             "      CALL STEP(3)\n"
             "      END\n"),
            ("two.f",
             "      PROGRAM BETA\n"
             "      CALL STEP(9)\n"
             "      END\n"
             "\n"
             "      SUBROUTINE STEP(N)\n"
             "      PRINT *, N\n"
             "      RETURN\n"
             "      END\n"),
        ],
        entry="alpha",
        note="two PROGRAM units: --entry picks one, the other is "
        "dropped with a linkage warning and its call site does not "
        "pollute CONSTANTS",
    )

    add(
        "proj_undefined_external",
        [
            ("main.f",
             "      PROGRAM MAIN\n"
             "      EXTERNAL MISSING\n"
             "      CALL MISSING(1)\n"
             "      END\n"),
            ("lib.f",
             "      SUBROUTINE OTHER\n"
             "      RETURN\n"
             "      END\n"),
        ],
        note="an EXTERNAL declaration no linked file defines is a "
        "deterministic link error",
    )

    add(
        "proj_duplicate_symbol",
        [
            ("one.f",
             "      PROGRAM MAIN\n"
             "      CALL STEP(1)\n"
             "      END\n"
             "\n"
             "      SUBROUTINE STEP(N)\n"
             "      PRINT *, N\n"
             "      RETURN\n"
             "      END\n"),
            ("two.f",
             "      SUBROUTINE STEP(N)\n"
             "      PRINT *, N + 1\n"
             "      RETURN\n"
             "      END\n"),
        ],
        note="the same procedure defined in two files is a link "
        "error, not a silent pick",
    )

    add(
        "proj_common_mismatch",
        [
            ("one.f",
             "      PROGRAM MAIN\n"
             "      COMMON /BLK/ A, B\n"
             "      A = 1\n"
             "      CALL USE\n"
             "      END\n"),
            ("two.f",
             "      SUBROUTINE USE\n"
             "      COMMON /BLK/ A, C\n"
             "      PRINT *, A\n"
             "      RETURN\n"
             "      END\n"),
        ],
        note="the same named COMMON with different member lists "
        "across files is a link error",
    )

    _PROJECTS = projects
    return projects


def render_project_snapshot(project: GoldenProject) -> str:
    """Canonical snapshot text for one multi-file project.

    Successful links snapshot the symbol table, CONSTANTS,
    substitution counts, the optional provenance rendering, and a
    per-file comparison — each file analyzed *alone* (the closed-world
    ``repro batch`` view), demonstrating which constants only exist
    because of linkage. Failed links snapshot the diagnostics.
    """
    from repro.ipcp.driver import analyze_source_resilient
    from repro.linkage import analyze_linked_sources

    result, link = analyze_linked_sources(
        list(project.files), project.config, entry=project.entry
    )
    lines = [
        f"golden project: {project.name}",
        f"configuration: {project.config.describe()}",
        f"files: {', '.join(name for name, _ in project.files)}",
    ]
    if project.entry:
        lines.append(f"entry: {project.entry}")
    if project.note:
        lines.append(f"note: {project.note}")
    if len(link.diagnostics):
        lines.append("--- diagnostics ---")
        lines.append(link.diagnostics.format())
    if result is None:
        lines.append("--- outcome ---")
        lines.append("link failed: no analysis")
        return "\n".join(lines) + "\n"
    lines.append("--- symbol table ---")
    lines.append(link.format_symbol_table())
    lines.append("--- CONSTANTS (linked) ---")
    lines.append(result.constants.format_report())
    lines.append("--- substitution (linked) ---")
    lines.append(f"total: {result.substituted_constants}")
    for name in sorted(result.substitution.per_procedure):
        count = result.substitution.per_procedure[name]
        if count:
            lines.append(f"  {name}: {count}")
    if project.explain is not None:
        from repro.obs.provenance import build_provenance

        lines.append(f"--- explain {project.explain} ---")
        lines.append(build_provenance(result).explain(project.explain).rstrip("\n"))
    lines.append("--- per-file (unlinked) comparison ---")
    for filename, text in project.files:
        alone, _diag = analyze_source_resilient(
            text, project.config, filename
        )
        if alone is None:
            lines.append(f"{filename}: no analysis")
            continue
        lines.append(
            f"{filename}: {alone.constants.total_pairs()} constant(s), "
            f"{alone.substituted_constants} substituted"
        )
        report = alone.constants.format_report()
        if report != "(no interprocedural constants)":
            lines.extend(f"  {line}" for line in report.splitlines())
    return "\n".join(lines) + "\n"


def check_project_golden(
    directory: str, project: GoldenProject
) -> Optional[str]:
    """None when the stored project snapshot matches; otherwise a
    diff-style message (also for a missing snapshot)."""
    path = snapshot_path(directory, project.name)
    current = render_project_snapshot(project)
    if not os.path.exists(path):
        return (
            f"missing golden snapshot {path!r} — run "
            f"`pytest tests/golden --update-goldens` and commit the file"
        )
    with open(path, "r", encoding="utf-8") as handle:
        stored = handle.read()
    if stored == current:
        return None
    diff = "\n".join(
        difflib.unified_diff(
            stored.splitlines(),
            current.splitlines(),
            fromfile=f"{project.name}.golden (stored)",
            tofile=f"{project.name}.golden (current)",
            lineterm="",
        )
    )
    return (
        f"golden snapshot mismatch for {project.name} — if the change is "
        f"intentional, run `pytest tests/golden --update-goldens`:\n{diff}"
    )


def update_project_golden(directory: str, project: GoldenProject) -> str:
    """(Re)write one stored project snapshot; returns its path."""
    os.makedirs(directory, exist_ok=True)
    path = snapshot_path(directory, project.name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_project_snapshot(project))
    return path
