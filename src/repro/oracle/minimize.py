"""Greedy counterexample shrinking for oracle failures.

A failing program is shrunk at two granularities, coarse first:

1. **procedure removal** — drop one whole non-PROGRAM unit together
   with every line elsewhere that references it (call sites, function
   uses), so the remainder still resolves;
2. **statement removal** — drop one body line at a time (headers,
   COMMON declarations, and END lines are kept; structural lines like
   ``IF .. THEN`` whose removal breaks the parse are rejected by the
   predicate itself, which treats unparseable candidates as
   non-reproducing).

Both passes repeat until a full sweep removes nothing. The predicate —
"does the discrepancy still reproduce?" — comes from the harness and is
the only thing that decides whether a candidate is kept, so the
minimizer never needs to understand *why* the program fails.
"""

from __future__ import annotations

import re
from typing import Callable, List, Sequence

Predicate = Callable[[str], bool]

#: Safety bound on full sweeps; each sweep strictly shrinks the program,
#: so this is only reached on pathological predicates.
MAX_ROUNDS = 32

_HEADER = re.compile(
    r"^\s*(PROGRAM|SUBROUTINE|(INTEGER\s+)?FUNCTION)\b", re.IGNORECASE
)
_KEEP = re.compile(
    r"^\s*(PROGRAM|SUBROUTINE|FUNCTION|INTEGER\s+FUNCTION|COMMON|INTEGER\b|RETURN\s*$|END\s*$)",
    re.IGNORECASE,
)


def split_units(source: str) -> List[List[str]]:
    """Split program text into units (line lists). A unit ends at its
    ``END`` line (exactly ``END`` — not ENDIF/ENDDO)."""
    units: List[List[str]] = []
    current: List[str] = []
    for line in source.splitlines():
        if not line.strip() and not current:
            continue
        current.append(line)
        if line.strip().upper() == "END":
            units.append(current)
            current = []
    if current:
        units.append(current)
    return units


def join_units(units: Sequence[Sequence[str]]) -> str:
    return "\n\n".join("\n".join(unit) for unit in units) + "\n"


def unit_name(unit: Sequence[str]) -> str:
    """The PROGRAM/SUBROUTINE/FUNCTION name of a unit ('' if unknown)."""
    for line in unit:
        if _HEADER.match(line):
            tokens = re.findall(r"[A-Za-z][A-Za-z0-9]*", line)
            keywords = {"program", "subroutine", "function", "integer"}
            for token in tokens:
                if token.lower() not in keywords:
                    return token
    return ""


def _is_program_unit(unit: Sequence[str]) -> bool:
    return any(
        re.match(r"^\s*PROGRAM\b", line, re.IGNORECASE) for line in unit
    )


def _drop_references(units: List[List[str]], name: str) -> List[List[str]]:
    """Remove every line mentioning ``name`` as a word (call sites,
    function-result assignments) from every unit."""
    pattern = re.compile(rf"\b{re.escape(name)}\b", re.IGNORECASE)
    return [
        [line for line in unit if not pattern.search(line)] for unit in units
    ]


def _procedure_pass(units: List[List[str]], failing: Predicate) -> List[List[str]]:
    index = 0
    while index < len(units):
        unit = units[index]
        if _is_program_unit(unit):
            index += 1
            continue
        name = unit_name(unit)
        candidate = units[:index] + units[index + 1 :]
        if name:
            candidate = _drop_references(candidate, name)
        if candidate and failing(join_units(candidate)):
            units = candidate
            continue  # same index now holds the next unit
        index += 1
    return units


_OPENER = re.compile(r"^\s*(IF\s*\(.*\)\s*THEN|DO\b)", re.IGNORECASE)
_CLOSER = re.compile(r"^\s*(ENDIF|ENDDO)\s*$", re.IGNORECASE)
_ELSE = re.compile(r"^\s*ELSE\s*$", re.IGNORECASE)


def _match_closer(unit: Sequence[str], start: int) -> int:
    """Index of the ENDIF/ENDDO closing the opener at ``start`` (or -1)."""
    depth = 0
    for index in range(start, len(unit)):
        line = unit[index]
        if _OPENER.match(line):
            depth += 1
        elif _CLOSER.match(line):
            depth -= 1
            if depth == 0:
                return index
    return -1


def _has_toplevel_else(unit: Sequence[str], start: int, closer: int) -> bool:
    """Is there an ELSE belonging directly to the IF opened at ``start``?"""
    depth = 1
    for index in range(start + 1, closer):
        line = unit[index]
        if _OPENER.match(line):
            depth += 1
        elif _CLOSER.match(line):
            depth -= 1
        elif depth == 1 and _ELSE.match(line):
            return True
    return False


def _statement_pass(units: List[List[str]], failing: Predicate) -> List[List[str]]:
    for unit_index in range(len(units)):
        line_index = 0
        while line_index < len(units[unit_index]):
            unit = units[unit_index]
            line = unit[line_index]
            if _KEEP.match(line):
                line_index += 1
                continue
            removed = False
            if _OPENER.match(line):
                closer = _match_closer(unit, line_index)
                if closer > line_index:
                    # Whole block first, then unwrapping the guard/loop
                    # (unwrap only when no top-level ELSE would dangle).
                    candidate = [list(u) for u in units]
                    del candidate[unit_index][line_index : closer + 1]
                    if failing(join_units(candidate)):
                        units = candidate
                        removed = True
                    elif not _has_toplevel_else(unit, line_index, closer):
                        candidate = [list(u) for u in units]
                        del candidate[unit_index][closer]
                        del candidate[unit_index][line_index]
                        if failing(join_units(candidate)):
                            units = candidate
                            removed = True
            else:
                candidate = [list(u) for u in units]
                del candidate[unit_index][line_index]
                if failing(join_units(candidate)):
                    units = candidate
                    removed = True
            if not removed:
                line_index += 1
    return units


def minimize_source(source: str, failing: Predicate) -> str:
    """Shrink ``source`` while ``failing`` stays True.

    ``failing`` must already be True for ``source`` itself; if it is
    not (a flaky or mis-specified predicate) the input is returned
    unchanged.
    """
    if not failing(source):
        return source
    units = split_units(source)
    for _ in range(MAX_ROUNDS):
        before = sum(len(unit) for unit in units)
        units = _procedure_pass(units, failing)
        units = _statement_pass(units, failing)
        if sum(len(unit) for unit in units) == before:
            break
    return join_units(units)


def procedure_count(source: str) -> int:
    """Number of program units (PROGRAM + subprograms) in the text."""
    return len(split_units(source))
