"""The differential harness: execution as the oracle for the analysis.

Each trial generates a seeded program with concrete driver inputs,
executes it through :mod:`repro.ir.interp` while recording per-procedure
entry snapshots, and cross-checks three properties against
``analyze_source``-equivalent runs:

1. **Soundness** — every pair the analyzer puts in ``CONSTANTS(p)``
   matches every observed entry value of ``p``, under every checked
   configuration;
2. **Semantic preservation** — interpreting the post-substitution
   source and the post-cloning program yields the original output
   trace;
3. **Resilience monotonicity** — under injected
   :class:`~repro.config.AnalysisBudget` exhaustion, the degraded
   ``CONSTANTS`` sets never *invent* pairs: every degraded pair is
   either reported identically by the unbudgeted run or sits on a
   procedure the full run proved never-invoked (⊤).

A failing trial is minimized (:mod:`repro.oracle.minimize`) and can be
persisted to a corpus directory (:mod:`repro.oracle.corpus`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import AnalysisBudget, AnalysisConfig, JumpFunctionKind
from repro.suite.generator import GeneratedCase, GeneratorConfig, generate_case

#: Property tags — stable identifiers used by the corpus and the tests.
SOUNDNESS = "soundness"
PRESERVATION = "preservation"
MONOTONICITY = "monotonicity"

PROPERTIES = (SOUNDNESS, PRESERVATION, MONOTONICITY)

#: Default generator shape for oracle trials: small enough that one
#: trial (one execution + several analyses) stays in the tens of
#: milliseconds, rich enough to cover branches, loops, call chains,
#: reads, and globals.
DEFAULT_ORACLE_CONFIG = GeneratorConfig(procedures=4, max_statements_per_procedure=8)

#: Configurations whose CONSTANTS claims are checked against execution.
#: Kept deliberately small — breadth across seeds beats breadth across
#: configs per seed; the property-based suite covers the full matrix.
SOUNDNESS_CONFIGS: Tuple[AnalysisConfig, ...] = (
    AnalysisConfig(),
    AnalysisConfig(jump_function=JumpFunctionKind.PASS_THROUGH),
    AnalysisConfig.complete_propagation(),
)

#: Budget injected for the monotonicity property.
STARVED_BUDGET = AnalysisBudget(
    solver_visits=8,
    sccp_visits=128,
    polynomial_terms=1,
    polynomial_degree=1,
    gsa_rounds=1,
    dce_rounds=1,
)

#: Execution fuel for the original program; transformed/cloned runs get
#: a multiple (the transformed program executes the same trace, but the
#: margin keeps a legitimate rewrite from tripping the limit first).
TRIAL_FUEL = 2_000_000


@dataclass(frozen=True)
class Discrepancy:
    """One violated property on one program."""

    property: str
    config: str
    detail: str

    def render(self) -> str:
        return f"[{self.property}] ({self.config}) {self.detail}"


@dataclass
class TrialResult:
    """Outcome of one seeded oracle trial."""

    seed: int
    source: str
    inputs: Tuple[int, ...]
    discrepancies: List[Discrepancy] = field(default_factory=list)
    #: True when the generated program could not serve as an oracle run
    #: (e.g. its finite-but-astronomical execution exhausted the fuel).
    skipped: bool = False
    skip_reason: str = ""

    @property
    def ok(self) -> bool:
        return not self.discrepancies


@dataclass
class OracleReport:
    """Aggregate of one ``run_oracle`` campaign."""

    trials: int = 0
    skipped: int = 0
    failures: List[TrialResult] = field(default_factory=list)
    #: Minimized source per failing seed (filled when minimization ran).
    minimized: Dict[int, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"{self.trials} trial(s): "
            f"{self.trials - self.skipped - len(self.failures)} passed, "
            f"{self.skipped} skipped, {len(self.failures)} failed"
        ]
        shown_per_trial = 8
        for failure in self.failures:
            lines.append(f"  seed {failure.seed}:")
            lines.extend(
                f"    {d.render()}"
                for d in failure.discrepancies[:shown_per_trial]
            )
            hidden = len(failure.discrepancies) - shown_per_trial
            if hidden > 0:
                lines.append(f"    ... and {hidden} more")
        return "\n".join(lines)


# -- building blocks ---------------------------------------------------------


def _fresh_program(source: str):
    """A fresh mutable lowering of ``source``. The parse is memoized
    (:mod:`repro.engine.memo`): one trial lowers the same text several
    times — execution, each analysis config, cloning — but parses it
    once."""
    from repro.engine.memo import fresh_program

    return fresh_program(source, "gen.f")


def _execute(source: str, inputs: Sequence[int], fuel: int):
    """Reference-interpreter execution, memoized per (source digest,
    input vector): a campaign re-executes the same program whenever
    checks overlap (preservation runs the transformed source the next
    trial may regenerate verbatim) and on every minimizer probe."""
    from repro.engine.memo import memoized_run

    return memoized_run(source, inputs, fuel, "gen.f")


def _analyze(source: str, config: AnalysisConfig):
    """Analyze ``source`` under ``config``, deduplicated per (source,
    config) pair: the soundness, preservation, and monotonicity checks
    all need the default-config result and now share one run. Callers
    treat the shared :class:`AnalysisResult` as read-only."""
    from repro.engine.memo import memoized_analysis

    return memoized_analysis(source, config, "gen.f")


def _constant_pairs(result) -> Dict[Tuple[str, str], int]:
    pairs: Dict[Tuple[str, str], int] = {}
    for procedure in result.program:
        for var, value in result.constants.constants_of(procedure.name).items():
            pairs[(procedure.name, var.name)] = value
    return pairs


# -- the three properties ----------------------------------------------------


def _check_soundness(
    source: str, trace, configs: Sequence[AnalysisConfig]
) -> List[Discrepancy]:
    problems: List[Discrepancy] = []
    for config in configs:
        result = _analyze(source, config)
        for procedure in result.program:
            claimed = result.constants.constants_of(procedure.name)
            if not claimed:
                continue
            for violation in trace.constant_violations(procedure.name, claimed):
                problems.append(
                    Discrepancy(SOUNDNESS, config.describe(), violation)
                )
    return problems


def _check_preservation(
    source: str, trace, inputs: Sequence[int], fuel: int
) -> List[Discrepancy]:
    from repro.analysis.ssa_out import destruct_program
    from repro.ipcp.cloning import clone_for_constants
    from repro.ir.interp import run_program

    problems: List[Discrepancy] = []

    # (a) textual constant substitution must not change the output trace.
    result = _analyze(source, AnalysisConfig())
    transformed = result.transformed_source()
    after = _execute(transformed, inputs, fuel * 4)
    if after.output != trace.output:
        problems.append(
            Discrepancy(
                PRESERVATION,
                "substitution",
                _trace_diff(trace.output, after.output),
            )
        )

    # (b) goal-directed cloning (IR-level transformation) must not either.
    program = _fresh_program(source)
    clone_for_constants(program)
    destruct_program(program)
    cloned = run_program(program, inputs=inputs, fuel=fuel * 4)
    if cloned.output != trace.output:
        problems.append(
            Discrepancy(
                PRESERVATION,
                "cloning",
                _trace_diff(trace.output, cloned.output),
            )
        )
    return problems


def _trace_diff(expected: List[str], got: List[str]) -> str:
    limit = 5
    for index, (a, b) in enumerate(zip(expected, got)):
        if a != b:
            return (
                f"output line {index} diverged: expected {a!r}, got {b!r} "
                f"(expected {len(expected)} line(s), got {len(got)})"
            )
    return (
        f"output length diverged: expected {len(expected)} line(s) "
        f"{expected[:limit]!r}, got {len(got)} line(s) {got[:limit]!r}"
    )


def _check_monotonicity(source: str) -> List[Discrepancy]:
    full = _analyze(source, AnalysisConfig())
    starved = _analyze(source, AnalysisConfig(budget=STARVED_BUDGET))
    full_pairs = _constant_pairs(full)
    problems: List[Discrepancy] = []
    for procedure in starved.program:
        for var, value in starved.constants.constants_of(procedure.name).items():
            key = (procedure.name, var.name)
            if key in full_pairs:
                if full_pairs[key] != value:
                    problems.append(
                        Discrepancy(
                            MONOTONICITY,
                            "starved-budget",
                            f"{procedure.name}.{var.name}: degraded run claims "
                            f"{value}, full run claims {full_pairs[key]}",
                        )
                    )
                continue
            # Absent from the full run's CONSTANTS: acceptable only when
            # the full run left the cell at ⊤ (procedure never invoked).
            if not full.constants.val_of(procedure.name, var).is_top:
                problems.append(
                    Discrepancy(
                        MONOTONICITY,
                        "starved-budget",
                        f"{procedure.name}.{var.name}: degraded run invented "
                        f"constant {value} the full run proved non-constant",
                    )
                )
    return problems


# -- trial drivers -----------------------------------------------------------


def check_source(
    source: str,
    inputs: Sequence[int],
    properties: Sequence[str] = PROPERTIES,
    fuel: int = TRIAL_FUEL,
) -> List[Discrepancy]:
    """Run the selected oracle properties on one program.

    Raises :class:`~repro.ir.interp.InterpreterError` when the program
    itself cannot be executed within ``fuel`` (callers treat that as a
    skip, not a failure).
    """
    trace = _execute(source, inputs, fuel)
    problems: List[Discrepancy] = []
    if SOUNDNESS in properties:
        problems.extend(_check_soundness(source, trace, SOUNDNESS_CONFIGS))
    if PRESERVATION in properties:
        problems.extend(_check_preservation(source, trace, inputs, fuel))
    if MONOTONICITY in properties:
        problems.extend(_check_monotonicity(source))
    return problems


def reproduces(
    source: str,
    inputs: Sequence[int],
    property_name: str,
    fuel: int = TRIAL_FUEL,
) -> bool:
    """Predicate for the minimizer: does ``source`` still violate
    ``property_name``? Any pipeline exception (unparseable candidate,
    fuel exhaustion) counts as "does not reproduce"."""
    try:
        return bool(check_source(source, inputs, (property_name,), fuel))
    except Exception:  # noqa: BLE001 — shrink candidates may be arbitrarily broken
        return False


def run_trial(
    seed: int,
    generator_config: Optional[GeneratorConfig] = None,
    properties: Sequence[str] = PROPERTIES,
    fuel: int = TRIAL_FUEL,
) -> TrialResult:
    """Generate, execute, and cross-check one seeded case."""
    from repro.ir.interp import InterpreterError

    case: GeneratedCase = generate_case(seed, generator_config or DEFAULT_ORACLE_CONFIG)
    result = TrialResult(seed=seed, source=case.source, inputs=case.inputs)
    try:
        result.discrepancies = check_source(
            case.source, case.inputs, properties, fuel
        )
    except InterpreterError as err:
        result.skipped = True
        result.skip_reason = str(err)
    return result


def run_oracle(
    trials: int,
    seed: int = 0,
    generator_config: Optional[GeneratorConfig] = None,
    properties: Sequence[str] = PROPERTIES,
    corpus_dir: Optional[str] = None,
    minimize: bool = True,
    fuel: int = TRIAL_FUEL,
    progress: Optional[Callable[[TrialResult], None]] = None,
    profile=None,
) -> OracleReport:
    """Run ``trials`` seeded trials (seeds ``seed .. seed+trials-1``).

    Failing programs are minimized (unless ``minimize`` is False) and —
    when ``corpus_dir`` is given — written there together with their
    metadata. Deterministic for a fixed (trials, seed, config) triple.

    ``profile`` (a :class:`repro.profiling.PipelineProfile`) times the
    trial and minimization stages and, on completion, absorbs the
    campaign's delta of the process-wide metrics registry (memo hits,
    parse counts) — only this campaign's work, not whatever the process
    counted before.
    """
    from repro.oracle.corpus import CorpusEntry, write_failure
    from repro.oracle.minimize import minimize_source
    from repro.profiling import maybe_stage

    counters_base = None
    if profile is not None:
        from repro.obs import metrics as obs_metrics

        counters_base = obs_metrics.snapshot()

    report = OracleReport()
    for index in range(trials):
        with maybe_stage(profile, "trial"):
            trial = run_trial(seed + index, generator_config, properties, fuel)
        report.trials += 1
        if trial.skipped:
            report.skipped += 1
        elif not trial.ok:
            if minimize:
                first = trial.discrepancies[0]
                with maybe_stage(profile, "minimize"):
                    report.minimized[trial.seed] = minimize_source(
                        trial.source,
                        lambda text: reproduces(
                            text, trial.inputs, first.property, fuel
                        ),
                    )
            if corpus_dir is not None:
                write_failure(
                    corpus_dir,
                    CorpusEntry(
                        seed=trial.seed,
                        property=trial.discrepancies[0].property,
                        source=report.minimized.get(trial.seed, trial.source),
                        inputs=tuple(trial.inputs),
                        detail=trial.discrepancies[0].detail,
                    ),
                )
            report.failures.append(trial)
        if progress is not None:
            progress(trial)
    if counters_base is not None:
        from repro.obs import metrics as obs_metrics

        profile.merge_counters(
            obs_metrics.delta_since(counters_base)["counters"]
        )
    return report
