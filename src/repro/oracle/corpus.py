"""Persisting minimized oracle failures.

Each failure becomes two files in the corpus directory:

- ``seed<N>_<property>.f`` — the (minimized) MiniFortran program;
- ``seed<N>_<property>.json`` — metadata: seed, property, driver
  inputs, and the first discrepancy's human-readable detail.

The ``.f`` file re-runs directly through ``repro-ipcp analyze`` /
``run`` during triage; the JSON sidecar carries everything needed to
reproduce the failing check (see docs/TESTING.md).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class CorpusEntry:
    """One persisted counterexample."""

    seed: int
    property: str
    source: str
    inputs: Tuple[int, ...]
    detail: str

    @property
    def stem(self) -> str:
        return f"seed{self.seed}_{self.property}"


def write_failure(directory: str, entry: CorpusEntry) -> Tuple[str, str]:
    """Write one entry; returns the (program, metadata) paths."""
    os.makedirs(directory, exist_ok=True)
    program_path = os.path.join(directory, entry.stem + ".f")
    meta_path = os.path.join(directory, entry.stem + ".json")
    with open(program_path, "w", encoding="utf-8") as handle:
        handle.write(entry.source)
    metadata = asdict(entry)
    metadata.pop("source")
    metadata["inputs"] = list(entry.inputs)
    metadata["program"] = os.path.basename(program_path)
    with open(meta_path, "w", encoding="utf-8") as handle:
        json.dump(metadata, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return program_path, meta_path


def load_corpus(directory: str) -> List[CorpusEntry]:
    """Read every persisted entry back (sorted by filename)."""
    entries: List[CorpusEntry] = []
    if not os.path.isdir(directory):
        return entries
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        meta_path = os.path.join(directory, name)
        with open(meta_path, "r", encoding="utf-8") as handle:
            metadata = json.load(handle)
        program_path = os.path.join(directory, metadata["program"])
        with open(program_path, "r", encoding="utf-8") as handle:
            source = handle.read()
        entries.append(
            CorpusEntry(
                seed=metadata["seed"],
                property=metadata["property"],
                source=source,
                inputs=tuple(metadata["inputs"]),
                detail=metadata["detail"],
            )
        )
    return entries
