"""The constant-propagation lattice of the paper's Figure 1.

Three levels::

            T           (top: no evidence yet / never executed)
       ... -1 0 1 2 ...  (the integer constants)
            _|_          (bottom: provably not a single constant)

with the meet operation

====================  =========
``T ∧ x``             ``x``
``c ∧ c``             ``c``
``ci ∧ cj`` (i ≠ j)   ``⊥``
``⊥ ∧ x``             ``⊥``
====================  =========

The lattice is infinite but of bounded depth: any value can be lowered at
most twice (T → constant → ⊥), which is what bounds the iterative
propagation (§2).
"""

from __future__ import annotations

from typing import Iterable, Optional


class LatticeValue:
    """An element of the constant-propagation lattice. Immutable.

    Use the module constants :data:`TOP` and :data:`BOTTOM` and the
    factory :func:`const`; equality and hashing are value-based.
    """

    __slots__ = ("kind", "value")

    _TOP_KIND = "top"
    _CONST_KIND = "const"
    _BOTTOM_KIND = "bottom"

    def __init__(self, kind: str, value: Optional[int] = None):
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "value", value)

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("LatticeValue is immutable")

    @property
    def is_top(self) -> bool:
        return self.kind == self._TOP_KIND

    @property
    def is_bottom(self) -> bool:
        return self.kind == self._BOTTOM_KIND

    @property
    def is_constant(self) -> bool:
        return self.kind == self._CONST_KIND

    def meet(self, other: "LatticeValue") -> "LatticeValue":
        """Figure 1's ∧ operation."""
        if self.is_top:
            return other
        if other.is_top:
            return self
        if self.is_bottom or other.is_bottom:
            return BOTTOM
        if self.value == other.value:
            return self
        return BOTTOM

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, LatticeValue)
            and other.kind == self.kind
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.value))

    def __repr__(self) -> str:
        if self.is_top:
            return "T"
        if self.is_bottom:
            return "_|_"
        return f"const({self.value})"

    def __le__(self, other: "LatticeValue") -> bool:
        """Lattice partial order: ``a <= b`` iff ``a`` is at or below
        ``b`` (``a ∧ b == a``)."""
        return self.meet(other) == self


#: The optimistic initial approximation for every parameter (§2).
TOP = LatticeValue(LatticeValue._TOP_KIND)

#: "Not a compile-time constant."
BOTTOM = LatticeValue(LatticeValue._BOTTOM_KIND)


def const(value: int) -> LatticeValue:
    """The lattice element for the integer constant ``value``."""
    return LatticeValue(LatticeValue._CONST_KIND, value)


def meet_all(values: Iterable[LatticeValue]) -> LatticeValue:
    """Meet of a (possibly empty) collection; the empty meet is TOP."""
    result = TOP
    for value in values:
        result = result.meet(value)
        if result.is_bottom:
            return BOTTOM
    return result


def depth_to_bottom(value: LatticeValue) -> int:
    """How many more times ``value`` can be lowered (2, 1, or 0) — the
    bounded-depth property the propagation complexity argument rests on."""
    if value.is_top:
        return 2
    if value.is_constant:
        return 1
    return 0
