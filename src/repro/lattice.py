"""The constant-propagation lattice of the paper's Figure 1.

Three levels::

            T           (top: no evidence yet / never executed)
       ... -1 0 1 2 ...  (the integer constants)
            _|_          (bottom: provably not a single constant)

with the meet operation

====================  =========
``T ∧ x``             ``x``
``c ∧ c``             ``c``
``ci ∧ cj`` (i ≠ j)   ``⊥``
``⊥ ∧ x``             ``⊥``
====================  =========

The lattice is infinite but of bounded depth: any value can be lowered at
most twice (T → constant → ⊥), which is what bounds the iterative
propagation (§2).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional


class LatticeValue:
    """An element of the constant-propagation lattice. Immutable.

    Use the module constants :data:`TOP` and :data:`BOTTOM` and the
    factory :func:`const` (which interns the common small constants, so
    repeated lattice elements are usually the *same* object); equality
    and hashing are value-based either way.
    """

    __slots__ = ("kind", "value", "_hash")

    _TOP_KIND = "top"
    _CONST_KIND = "const"
    _BOTTOM_KIND = "bottom"

    def __init__(self, kind: str, value: Optional[int] = None):
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "value", value)
        # Hashing is hot (CONSTANTS sets, VAL maps, memo keys); interned
        # instances make construction rare, so precompute once here.
        object.__setattr__(self, "_hash", hash((kind, value)))

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("LatticeValue is immutable")

    @property
    def is_top(self) -> bool:
        return self.kind == self._TOP_KIND

    @property
    def is_bottom(self) -> bool:
        return self.kind == self._BOTTOM_KIND

    @property
    def is_constant(self) -> bool:
        return self.kind == self._CONST_KIND

    def meet(self, other: "LatticeValue") -> "LatticeValue":
        """Figure 1's ∧ operation.

        This is the propagation inner loop, so it is allocation-free
        (every result is ``self``, ``other``, or the :data:`BOTTOM`
        singleton) and reads ``kind`` slots directly rather than going
        through the ``is_*`` property descriptors.
        """
        if self is other:
            return self
        kind = self.kind
        if kind == "top":
            return other
        other_kind = other.kind
        if other_kind == "top":
            return self
        if kind == "bottom" or other_kind == "bottom":
            return BOTTOM
        if self.value == other.value:
            return self
        return BOTTOM

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return (
            isinstance(other, LatticeValue)
            and other.kind == self.kind
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if self.is_top:
            return "T"
        if self.is_bottom:
            return "_|_"
        return f"const({self.value})"

    def __le__(self, other: "LatticeValue") -> bool:
        """Lattice partial order: ``a <= b`` iff ``a`` is at or below
        ``b`` (``a ∧ b == a``)."""
        return self.meet(other) == self


#: The optimistic initial approximation for every parameter (§2).
TOP = LatticeValue(LatticeValue._TOP_KIND)

#: "Not a compile-time constant."
BOTTOM = LatticeValue(LatticeValue._BOTTOM_KIND)


#: Interning window for :func:`const` — wide enough to cover loop
#: bounds, array dimensions, and the literals real programs traffic in,
#: bounded so pathological constant streams cannot grow it without
#: limit. Values outside the window get fresh (still value-equal)
#: objects.
_INTERN_MIN, _INTERN_MAX = -128, 4096
_CONST_INTERN: Dict[int, LatticeValue] = {}


def const(value: int) -> LatticeValue:
    """The lattice element for the integer constant ``value``.

    Common values are interned: ``const(c) is const(c)`` within the
    window, which makes the ``self is other`` fast path in :meth:`~
    LatticeValue.meet` (and dict/set hits on CONSTANTS cells) the usual
    case instead of the lucky one.
    """
    cached = _CONST_INTERN.get(value)
    if cached is not None:
        return cached
    element = LatticeValue(LatticeValue._CONST_KIND, value)
    if _INTERN_MIN <= value <= _INTERN_MAX:
        _CONST_INTERN[value] = element
    return element


def meet_all(values: Iterable[LatticeValue]) -> LatticeValue:
    """Meet of a (possibly empty) collection; the empty meet is TOP."""
    result = TOP
    for value in values:
        result = result.meet(value)
        if result.is_bottom:
            return BOTTOM
    return result


def depth_to_bottom(value: LatticeValue) -> int:
    """How many more times ``value`` can be lowered (2, 1, or 0) — the
    bounded-depth property the propagation complexity argument rests on."""
    if value.is_top:
        return 2
    if value.is_constant:
        return 1
    return 0
