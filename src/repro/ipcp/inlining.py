"""Procedure integration + intraprocedural propagation — the
Wegman–Zadeck approach the paper contrasts against (§5).

"Wegman and Zadeck propose combining procedure integration with
intraprocedural constant propagation to detect interprocedural
constants. Because procedure integration makes paths through the
program's call graph explicit, the interprocedural information computed
along a particular path may be improved. ... Because [the jump-function]
technique does not make paths through the call graph explicit, it
potentially detects fewer constants than the method proposed by Wegman
and Zadeck." The paper adds: "Data is not yet available to indicate
whether or not the proposed algorithm would perform efficiently in
practice."

This module supplies that data point for our suite: it inlines call
sites into the main program (bounded depth; recursive cycles are left as
calls), runs SCCP over the integrated body, and counts substitutable
references — per-path precision traded against code growth.

Inlining substance:

- a scalar variable actual aliases the callee's reference formal, so the
  formal is *renamed to* the caller variable (exact call-by-reference);
- expression actuals initialize a fresh local; writebacks through them
  are lost (consistent with lowering and the interpreter);
- array actuals rename the callee's array formal;
- globals are shared objects already — nothing to do;
- the callee body is deep-copied (fresh locals/temps/blocks), its
  RETURNs become jumps to the continuation block, and a function result
  assigns the call's result temp.

Inlining happens on the *pre-SSA* IR (fresh from lowering); the
integrated program is then analyzed intraprocedurally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.sccp import run_sccp
from repro.analysis.ssa import construct_ssa
from repro.callgraph.callgraph import build_call_graph
from repro.ir.clone import clone_procedure
from repro.ir.instructions import Assign, Call, Const, Def, Jump, Return, Use
from repro.ir.module import Procedure, Program
from repro.ir.symbols import Variable


@dataclass
class IntegrationReport:
    """Outcome of integrate-then-propagate."""

    program: Program
    inlined_calls: int
    remaining_calls: int
    instructions_before: int
    instructions_after: int
    substituted_references: int = 0

    @property
    def code_growth(self) -> float:
        if not self.instructions_before:
            return 1.0
        return self.instructions_after / self.instructions_before


def _instruction_count(program: Program) -> int:
    return sum(len(list(p.cfg.instructions())) for p in program)


def inline_call(caller: Procedure, call: Call, callee: Procedure) -> None:
    """Splice a copy of ``callee`` into ``caller`` at ``call``.

    The call instruction is removed; control flows through the copied
    body and resumes at the instructions that followed the call.
    """
    clone, var_map = clone_procedure(callee, f"{callee.name}@inline")

    # Formal binding: rename the clone's formal to the actual variable
    # (reference semantics) or initialize a fresh local from the value.
    init_instructions: List[Assign] = []
    rename: Dict[Variable, Variable] = {}
    for formal, arg in zip(callee.formals, call.args):
        clone_formal = var_map[formal]
        if arg.is_array:
            rename[clone_formal] = arg.array
        elif isinstance(arg.value, Use) and not arg.value.var.is_temp:
            rename[clone_formal] = arg.value.var
        else:
            value = arg.value if arg.value is not None else Const(0)
            init_instructions.append(Assign(Def(clone_formal), value, call.location))

    if rename:
        _rename_variables(clone, rename)

    # Split the containing block at the call.
    block = _block_containing(caller, call)
    index = block.instructions.index(call)
    continuation = caller.cfg.new_block(f"{block.name}.cont")
    continuation.instructions = block.instructions[index + 1 :]
    block.instructions = block.instructions[:index]
    block.instructions.extend(init_instructions)
    block.append(Jump(clone.cfg.entry, call.location))

    # Rewire the clone's returns to the continuation.
    for clone_block in clone.cfg.blocks:
        terminator = clone_block.terminator
        if isinstance(terminator, Return):
            replacement: List = []
            if call.result is not None and terminator.value is not None:
                replacement.append(
                    Assign(call.result, terminator.value, terminator.location)
                )
            replacement.append(Jump(continuation, terminator.location))
            clone_block.instructions = (
                clone_block.instructions[:-1] + replacement
            )

    caller.cfg.blocks.extend(clone.cfg.blocks)
    # Adopt the clone's symbols so later passes can see them.
    for variable in clone.symbols.variables():
        if caller.symbols.lookup(variable.name) is None:
            caller.symbols.declare(variable)


def _block_containing(procedure: Procedure, call: Call):
    for block in procedure.cfg.blocks:
        if call in block.instructions:
            return block
    raise ValueError("call instruction not found in procedure")


def _rename_variables(procedure: Procedure, rename: Dict[Variable, Variable]) -> None:
    for instruction in procedure.cfg.instructions():
        for use in instruction.uses():
            if use.var in rename:
                use.var = rename[use.var]
        for definition in instruction.defs():
            if definition.var in rename:
                definition.var = rename[definition.var]
        if isinstance(instruction, Call):
            for arg in instruction.args:
                if arg.array is not None and arg.array in rename:
                    arg.array = rename[arg.array]
        array = getattr(instruction, "array", None)
        if array is not None and array in rename:
            instruction.array = rename[array]


def integrate_program(program: Program, max_depth: int = 6,
                      max_instructions: int = 200_000) -> IntegrationReport:
    """Inline call sites into MAIN, innermost-first, up to ``max_depth``
    rounds. Calls into recursive SCCs (and calls left when the budget
    runs out) remain as calls. Mutates ``program`` (which must be fresh
    from lowering, pre-SSA)."""
    before = _instruction_count(program)
    callgraph = build_call_graph(program)
    recursive = {p.name for p in callgraph.recursive_procedures()}
    inlined = 0

    for _round in range(max_depth):
        progress = False
        for procedure in list(program):
            if not procedure.is_main:
                continue  # integrate into MAIN only
            for call in list(procedure.call_sites()):
                callee = program.procedure(call.callee)
                if callee.name in recursive:
                    continue
                if _instruction_count(program) > max_instructions:
                    break
                inline_call(procedure, call, callee)
                inlined += 1
                progress = True
        if not progress:
            break

    program.main.cfg.remove_unreachable()
    remaining = sum(len(p.call_sites()) for p in program if p.is_main)
    return IntegrationReport(
        program=program,
        inlined_calls=inlined,
        remaining_calls=remaining,
        instructions_before=before,
        instructions_after=_instruction_count(program),
    )


def integrate_and_propagate(program: Program, max_depth: int = 6) -> IntegrationReport:
    """The full Wegman–Zadeck-style pipeline: integrate, then run
    intraprocedural SCCP over MAIN and count substitutable references.

    Remaining calls (recursive or budget-capped) are treated with
    worst-case assumptions — annotate-and-SSA happens after integration.
    """
    from repro.config import AnalysisConfig
    from repro.ipcp.driver import prepare_program

    report = integrate_program(program, max_depth)
    prepare_program(program, AnalysisConfig())
    total = 0
    for procedure in program:
        if not procedure.is_main:
            continue
        result = run_sccp(procedure)
        total += len(result.constant_source_references())
    report.substituted_references = total
    return report
