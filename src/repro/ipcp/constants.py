"""The CONSTANTS sets — the product of interprocedural propagation.

``CONSTANTS(p)`` is the set of (name, value) pairs such that the name —
a formal parameter or global — always holds that integer value when
``p`` is invoked (§2). This module wraps the solver's VAL sets with the
queries the substitution pass and the reports need.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.ir.module import Procedure, Program
from repro.ir.symbols import Variable
from repro.lattice import BOTTOM, LatticeValue, TOP


class ConstantsResult:
    """Per-procedure VAL sets plus CONSTANTS extraction."""

    def __init__(self, val: Dict[str, Dict[Variable, LatticeValue]]):
        self._val = val

    def val_of(self, procedure_name: str, var: Variable) -> LatticeValue:
        return self._val.get(procedure_name, {}).get(var, BOTTOM)

    def val_set(self, procedure_name: str) -> Dict[Variable, LatticeValue]:
        return dict(self._val.get(procedure_name, {}))

    def constants_of(self, procedure_name: str) -> Dict[Variable, int]:
        """``CONSTANTS(p)`` as a name->value mapping."""
        return {
            var: value.value
            for var, value in self._val.get(procedure_name, {}).items()
            if value.is_constant
        }

    def entry_lattice(self, procedure: Procedure) -> Dict[Variable, LatticeValue]:
        """Entry values for the substitution SCCP run: discovered
        constants stay constants; everything else — including TOP, which
        only survives on never-invoked procedures — degrades to ⊥ (we
        refuse to exploit unreachability of a whole procedure)."""
        result: Dict[Variable, LatticeValue] = {}
        for var, value in self._val.get(procedure.name, {}).items():
            result[var] = value if value.is_constant else BOTTOM
        return result

    def relevant_constants_of(
        self, procedure_name: str, ref_sets: Dict[str, set]
    ) -> Dict[Variable, int]:
        """CONSTANTS(p) filtered to names the procedure actually
        references — Metzger & Stroud's observation that "procedures
        often have constant-valued global variables that are known but
        irrelevant" (§4.1). ``ref_sets`` is ``ModRefInfo.ref``."""
        referenced = ref_sets.get(procedure_name, set())
        return {
            var: value
            for var, value in self.constants_of(procedure_name).items()
            if var in referenced
        }

    def total_pairs(self) -> int:
        """Total number of (procedure, name, value) constant pairs."""
        return sum(
            1
            for per_proc in self._val.values()
            for value in per_proc.values()
            if value.is_constant
        )

    def procedures_with_constants(self) -> List[str]:
        return [
            name
            for name, per_proc in self._val.items()
            if any(v.is_constant for v in per_proc.values())
        ]

    def items(self) -> Iterator[Tuple[str, Variable, LatticeValue]]:
        for name, per_proc in self._val.items():
            for var, value in per_proc.items():
                yield name, var, value

    def format_report(self) -> str:
        """Human-readable CONSTANTS listing (the file the analyzer
        writes in §4.1 "Recording the results")."""
        lines: List[str] = []
        for name in sorted(self._val):
            constants = self.constants_of(name)
            if not constants:
                continue
            pairs = ", ".join(
                f"{var.name}={value}"
                for var, value in sorted(
                    constants.items(), key=lambda item: item[0].name
                )
            )
            lines.append(f"CONSTANTS({name}) = {{{pairs}}}")
        return "\n".join(lines) if lines else "(no interprocedural constants)"


def empty_constants(program: Program) -> ConstantsResult:
    """A ConstantsResult with every entry ⊥ — the intraprocedural-only
    baseline's view of entry values."""
    return ConstantsResult({procedure.name: {} for procedure in program})
