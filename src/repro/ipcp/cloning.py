"""Goal-directed procedure cloning on interprocedural constants.

The paper's "Other Work" section highlights Metzger & Stroud's result
that cloning procedures by incoming constant values "can substantially
increase the number of interprocedural constants available" (§5; also
Cooper, Hall & Kennedy's procedure cloning). This module implements that
extension on top of the propagation framework:

1. run a base analysis;
2. for every procedure whose incoming call edges disagree — the meet
   washes a parameter to ⊥ even though individual edges carry constants
   — partition the edges by their vector of constant jump-function
   values;
3. materialize one clone per additional partition (bounded), retarget
   the call sites, and re-run the propagation.

Cloning happens on the SSA-form program, so no re-lowering is needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.callgraph.callgraph import CallGraph, CallSite, build_call_graph
from repro.config import AnalysisConfig
from repro.ipcp.driver import AnalysisResult, analyze_prepared, prepare_program
from repro.ipcp.solver import entry_domain
from repro.ir.clone import clone_procedure
from repro.ir.module import Procedure, Program
from repro.ir.symbols import Variable
from repro.lattice import BOTTOM, LatticeValue
from repro.summary.modref import ModRefInfo

#: A partition signature: the constants each edge delivers, as a sorted
#: tuple of (parameter name, value) pairs.
Signature = Tuple[Tuple[str, int], ...]


@dataclass
class CloningReport:
    """What cloning changed."""

    base: AnalysisResult
    final: AnalysisResult
    clones: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def clones_created(self) -> int:
        return sum(len(names) for names in self.clones.values())

    @property
    def constants_gained(self) -> int:
        return self.final.substituted_constants - self.base.substituted_constants


def _edge_signature(
    site: CallSite,
    domain: List[Variable],
    result: AnalysisResult,
) -> Signature:
    """The vector of constants this specific edge would deliver if it
    were the only call (evaluating its jump functions against the
    caller's final VAL set)."""
    caller_val = result.constants.val_set(site.caller.name)

    def caller_value(var: Variable) -> LatticeValue:
        return caller_val.get(var, BOTTOM)

    pairs: List[Tuple[str, int]] = []
    for var in domain:
        function = result.jump_table.lookup(site.call, var)
        if function is None:
            continue
        value = function.evaluate(caller_value)
        if value.is_constant:
            pairs.append((var.name, value.value))
    return tuple(sorted(pairs))


def _cloning_plan(
    result: AnalysisResult,
    max_clones_per_procedure: int,
) -> Dict[Procedure, List[List[CallSite]]]:
    """Group each procedure's incoming edges by signature; procedures
    with >= 2 distinct signatures are cloning candidates. Partitions
    beyond the cap are merged into the first (original) group."""
    plan: Dict[Procedure, List[List[CallSite]]] = {}
    program = result.program
    for procedure in program:
        if procedure.is_main:
            continue
        sites = result.callgraph.sites_into(procedure)
        if len(sites) < 2:
            continue
        domain = entry_domain(procedure, program)
        groups: Dict[Signature, List[CallSite]] = {}
        for site in sites:
            groups.setdefault(_edge_signature(site, domain, result), []).append(site)
        if len(groups) < 2:
            continue
        # Largest groups get dedicated bodies; overflow keeps the original.
        ordered = sorted(groups.values(), key=len, reverse=True)
        kept = ordered[: max_clones_per_procedure + 1]
        overflow = [site for group in ordered[max_clones_per_procedure + 1 :] for site in group]
        kept[0] = kept[0] + overflow
        plan[procedure] = kept
    return plan


def clone_for_constants(
    program: Program,
    config: Optional[AnalysisConfig] = None,
    max_clones_per_procedure: int = 4,
) -> CloningReport:
    """Analyze, clone by incoming constant signatures, and re-analyze.

    ``program`` must be freshly lowered (not yet analyzed); it is
    mutated. Only a single cloning round is performed — enough to expose
    the effect the paper cites, without risking exponential growth.
    """
    config = config or AnalysisConfig()
    callgraph, modref = prepare_program(program, config)
    base = analyze_prepared(program, callgraph, modref, config)

    plan = _cloning_plan(base, max_clones_per_procedure)
    report = CloningReport(base=base, final=base)
    if not plan:
        return report

    for procedure, groups in plan.items():
        # Group 0 keeps the original body; each further group gets a clone.
        for index, group in enumerate(groups[1:], start=1):
            clone_name = f"{procedure.name}%clone{index}"
            clone, var_map = clone_procedure(procedure, clone_name)
            program.procedures[clone_name] = clone
            report.clones.setdefault(procedure.name, []).append(clone_name)
            if modref is not None:
                _extend_modref(modref, procedure, clone, var_map)
            for site in group:
                site.call.callee = clone_name

    new_callgraph = build_call_graph(program)
    if config.verify_ir:
        from repro.ir.verify import verify_program

        verify_program(program, ssa=True, stage="procedure cloning")
    report.final = analyze_prepared(program, new_callgraph, modref, config)
    return report


def _extend_modref(
    modref: ModRefInfo,
    original: Procedure,
    clone: Procedure,
    var_map: Dict[Variable, Variable],
) -> None:
    """Register the clone's MOD/REF sets (the original's, with local
    variables translated through the cloning map)."""
    modref.mod[clone.name] = {
        var_map.get(var, var) for var in modref.mod.get(original.name, set())
    }
    modref.ref[clone.name] = {
        var_map.get(var, var) for var in modref.ref.get(original.name, set())
    }
