"""Complete propagation: interleave propagation with dead-code
elimination (Table 3, column 3).

"After each run, dead code elimination was performed. If any dead code
was found, the propagation was performed again from scratch — all of
the values in CONSTANTS sets were reset to ⊤" (§4.2). Removing branches
that interprocedural constants prove dead can delete conflicting
definitions, which lets the next propagation find more constants. The
study observed convergence after a single DCE round on its suite; we
loop until no dead code remains (with a safety bound).

Notes on fidelity:

- Constants are *not* folded into the IR between rounds: each re-run
  re-measures every substitutable reference from scratch, so counts are
  cumulative exactly as the paper reports them.
- The call graph is rebuilt after each DCE round (eliminating a dead
  block can delete a call site — precisely the effect that exposes new
  constants, since the dead edge no longer participates in the meet).
- MOD/REF summaries are kept from the original program; after deletion
  they are a sound over-approximation.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.dce import eliminate_dead_code
from repro.callgraph.callgraph import CallGraph, build_call_graph
from repro.config import AnalysisConfig
from repro.ir.module import Program
from repro.summary.modref import ModRefInfo

#: Legacy safety bound on propagate/DCE alternations, now the default of
#: ``AnalysisBudget.dce_rounds``; the paper needed 2 runs (one DCE
#: round) on every program it measured.
MAX_ROUNDS = 10


def run_complete_propagation(
    program: Program,
    callgraph: CallGraph,
    modref: Optional[ModRefInfo],
    config: AnalysisConfig,
    resilience=None,
):
    """Iterate analyze -> DCE until no dead code appears.

    Returns the :class:`~repro.ipcp.driver.AnalysisResult` of the final
    propagation, with ``dce_rounds`` set to the number of DCE rounds
    that changed the program. The program IR is mutated (dead code
    removed). The alternation is bounded by
    ``config.budget.dce_rounds``; hitting the bound while the program is
    still changing keeps the last (sound) propagation and records a
    demotion on ``resilience``.
    """
    from repro.ipcp.driver import analyze_prepared  # circular-by-layering

    max_rounds = config.budget.dce_rounds
    rounds = 0
    exhausted = False
    while True:
        result = analyze_prepared(program, callgraph, modref, config, resilience)
        if rounds >= max_rounds:
            exhausted = rounds > 0 or max_rounds == 0
            break
        any_change = False
        for procedure in program:
            sccp = result.substitution.sccp_results.get(procedure.name)
            stats = eliminate_dead_code(
                procedure, sccp, remove_dead_definitions=False
            )
            if stats.folded_branches or stats.removed_blocks:
                any_change = True
        if not any_change:
            break
        rounds += 1
        callgraph = build_call_graph(program)
        # Propagation restarts from scratch on the next loop iteration:
        # analyze_prepared rebuilds every jump function and re-seeds
        # every VAL cell at T.
    if exhausted and resilience is not None:
        resilience.record(
            "dce", "<complete propagation loop>", "fixpoint",
            "last-round result",
            f"propagate/DCE alternation exceeded its budget of "
            f"{max_rounds} round(s)",
        )
    if config.verify_ir:
        from repro.ir.verify import verify_program

        verify_program(program, ssa=True, stage="dead-code elimination")
    result.dce_rounds = rounds
    result.callgraph = callgraph
    return result
