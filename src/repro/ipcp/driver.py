"""End-to-end analysis driver.

:func:`analyze_source` / :func:`analyze_program` run the full pipeline
for one :class:`~repro.config.AnalysisConfig`:

    parse -> lower -> call graph -> MOD/REF -> call-effect annotation
    -> SSA -> return jump functions -> forward jump functions
    -> interprocedural propagation -> substitution measurement

Complete propagation (``config.complete``) extends the tail with
substitute -> DCE -> re-propagate iterations
(:mod:`repro.ipcp.complete`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.analysis.sccp import SCCPCallModel
from repro.analysis.ssa import construct_ssa
from repro.callgraph.callgraph import CallGraph, build_call_graph
from repro.config import AnalysisConfig
from repro.diagnostics import E_IO, E_SEMANTIC, DiagnosticEngine
from repro.frontend.errors import FrontendError, SemanticError
from repro.frontend.parser import parse_source
from repro.frontend.source import SourceFile, SourceLocation
from repro.ipcp.constants import ConstantsResult, empty_constants
from repro.ipcp.jump_functions import (
    JumpFunctionTable,
    build_forward_jump_functions,
)
from repro.ipcp.resilience import ResilienceReport
from repro.ipcp.return_functions import (
    ReturnFunctionCallModel,
    ReturnFunctionMap,
    build_return_functions,
)
from repro.ipcp.solver import PropagationResult, propagate
from repro.ipcp.substitution import (
    SubstitutionReport,
    measure_substitution,
    render_transformed_source,
)
from repro.ir.lowering import lower_module
from repro.ir.module import Program
from repro.profiling import maybe_stage
from repro.summary.modref import ModRefInfo, annotate_call_effects, compute_modref


def _stage(engine, name: str):
    """Profile stage context: times the block on the engine's profile
    when an engine with profiling is attached, else a no-op."""
    return maybe_stage(engine.profile if engine is not None else None, name)


@dataclass
class AnalysisResult:
    """Everything one analysis run produced."""

    config: AnalysisConfig
    program: Program
    callgraph: CallGraph
    modref: Optional[ModRefInfo]
    return_functions: ReturnFunctionMap
    jump_table: Optional[JumpFunctionTable]
    propagation: Optional[PropagationResult]
    constants: ConstantsResult
    substitution: SubstitutionReport
    dce_rounds: int = 0
    #: Every component demoted during this run (empty = full precision).
    resilience: ResilienceReport = field(default_factory=ResilienceReport)
    #: Frontend diagnostics, when the run came through a resilient entry
    #: point (:func:`analyze_source_resilient`).
    diagnostics: Optional[DiagnosticEngine] = None

    @property
    def substituted_constants(self) -> int:
        """The headline number: source references substituted."""
        return self.substitution.total

    def transformed_source(self) -> str:
        """The original program with constants textually substituted."""
        if self.program.source is None:
            raise ValueError("program was not built from source text")
        return render_transformed_source(self.program.source, self.substitution)


def prepare_program(
    program: Program, config: AnalysisConfig
) -> "tuple[CallGraph, Optional[ModRefInfo]]":
    """Shared front half: call graph, MOD/REF, call-effect annotation,
    SSA conversion. Mutates ``program`` (which must be freshly lowered
    and not yet in SSA form)."""
    callgraph = build_call_graph(program)
    modref = compute_modref(program, callgraph) if config.use_mod else None
    annotate_call_effects(program, callgraph, modref)
    for procedure in program:
        construct_ssa(procedure)
    return callgraph, modref


def analyze_prepared(
    program: Program,
    callgraph: CallGraph,
    modref: Optional[ModRefInfo],
    config: AnalysisConfig,
    resilience: Optional[ResilienceReport] = None,
    engine=None,
) -> AnalysisResult:
    """Back half of the pipeline, on an SSA-form annotated program.

    Factored out so complete propagation can re-run it after dead-code
    elimination without reconstructing SSA. ``resilience`` collects
    demotions (a fresh report is created when None); construction faults
    and budget overruns degrade individual components instead of
    aborting (see :mod:`repro.ipcp.resilience`).

    With an ``engine`` (:class:`repro.engine.Engine`), the three
    per-procedure stages — return functions, forward functions,
    substitution — run through its scheduled/cached/parallel
    equivalents; the results are byte-identical to the serial builders.
    """
    resilience = resilience if resilience is not None else ResilienceReport()
    budget = config.budget
    with _stage(engine, "return_functions"):
        if not config.use_return_functions:
            return_map = ReturnFunctionMap()
        elif engine is not None:
            return_map = engine.return_functions(
                program, callgraph, modref, config, resilience
            )
        else:
            return_map = build_return_functions(
                program, callgraph, modref,
                budget=budget, resilience=resilience,
                fault_isolation=config.fault_isolation,
            )

    jump_table: Optional[JumpFunctionTable] = None
    propagation: Optional[PropagationResult] = None
    if config.interprocedural:
        with _stage(engine, "forward_functions"):
            if engine is not None:
                jump_table = engine.forward_functions(
                    program, callgraph, config, return_map, resilience
                )
            else:
                jump_table = build_forward_jump_functions(
                    program, callgraph, config.jump_function, return_map,
                    gcp_oracle=config.gcp_oracle,
                    budget=budget, resilience=resilience,
                    fault_isolation=config.fault_isolation,
                )
        with _stage(engine, "propagate"):
            propagation = propagate(
                program, callgraph, jump_table,
                strategy=config.solver_strategy,
                max_visits=budget.solver_visits, resilience=resilience,
            )
        constants = propagation.constants
        if config.gsa_refinement:
            jump_table, propagation = _refine_gsa_style(
                program, callgraph, config, return_map, constants,
                jump_table, propagation, resilience,
            )
            constants = propagation.constants
    else:
        constants = empty_constants(program)

    with _stage(engine, "substitution"):
        if engine is not None:
            substitution = engine.substitution(
                program, callgraph, constants, config, resilience
            )
        else:
            if config.use_return_functions:
                call_model: SCCPCallModel = ReturnFunctionCallModel(
                    program, return_map
                )
            else:
                call_model = SCCPCallModel()
            substitution = measure_substitution(
                program, constants, call_model,
                budget=budget, resilience=resilience,
                fault_isolation=config.fault_isolation,
            )

    return AnalysisResult(
        config=config,
        program=program,
        callgraph=callgraph,
        modref=modref,
        return_functions=return_map,
        jump_table=jump_table,
        propagation=propagation,
        constants=constants,
        substitution=substitution,
        resilience=resilience,
    )


#: Historic bound on GSA-style refinement rounds, now the default of
#: ``AnalysisBudget.gsa_rounds`` (the paper's suite converged after one
#: extra round of complete propagation; ours does too).
_GSA_MAX_ROUNDS = 4


def _refine_gsa_style(
    program, callgraph, config, return_map, constants,
    jump_table, propagation, resilience=None,
):
    """§4.2's remark realized: regenerate jump functions with a
    branch-sensitive oracle seeded by the previous round's CONSTANTS,
    dropping never-executed call sites, until the result stabilizes.
    Every VAL cell restarts at ⊤ each round ("reset to T"), so this is
    complete propagation without dead-code elimination.

    ``jump_table`` / ``propagation`` are the unrefined results, returned
    unchanged when the round budget is zero; hitting the round budget
    before convergence keeps the last round's (sound) result and records
    a demotion.
    """
    from repro.ipcp.jump_functions import build_refined_jump_functions

    budget = config.budget
    previous_pairs = constants.total_pairs()
    converged = budget.gsa_rounds <= 0
    for _round in range(budget.gsa_rounds):
        jump_table, excluded = build_refined_jump_functions(
            program, callgraph, config.jump_function, return_map, constants,
            budget=budget, resilience=resilience,
            fault_isolation=config.fault_isolation,
        )
        propagation = propagate(
            program, callgraph, jump_table, excluded_calls=excluded,
            strategy=config.solver_strategy,
            max_visits=budget.solver_visits, resilience=resilience,
        )
        constants = propagation.constants
        if constants.total_pairs() == previous_pairs:
            converged = True
            break
        previous_pairs = constants.total_pairs()
    if not converged and resilience is not None:
        resilience.record(
            "gsa_refinement", "<refinement loop>", "fixpoint",
            "last-round result",
            f"refinement exceeded its budget of {budget.gsa_rounds} round(s)",
        )
    return jump_table, propagation


def _maybe_verify(program: Program, config: AnalysisConfig, ssa: bool,
                  stage: str) -> None:
    if not config.verify_ir:
        return
    from repro.ir.verify import verify_program

    verify_program(program, ssa=ssa, stage=stage)


def analyze_program(
    program: Program,
    config: Optional[AnalysisConfig] = None,
    resilience: Optional[ResilienceReport] = None,
    engine=None,
) -> AnalysisResult:
    """Analyze a freshly lowered (non-SSA) program under ``config``.

    The program is mutated (annotated, converted to SSA, and — under
    complete propagation — transformed); re-lower from source to analyze
    the same program under another configuration.

    ``engine`` accelerates the per-procedure stages (see
    :func:`analyze_prepared`). Complete propagation re-runs the pipeline
    on programs it mutates between rounds, which would defeat every
    content-keyed cache — it always runs serial.
    """
    config = config or AnalysisConfig()
    resilience = resilience if resilience is not None else ResilienceReport()
    if engine is not None and not config.complete:
        engine.start(program, config)
    _maybe_verify(program, config, ssa=False, stage="lowering")
    with _stage(engine, "prepare"):
        callgraph, modref = prepare_program(program, config)
    _maybe_verify(program, config, ssa=True, stage="SSA construction")
    if config.complete:
        # Imported here: complete.py uses analyze_prepared from this module.
        from repro.ipcp.complete import run_complete_propagation

        return run_complete_propagation(
            program, callgraph, modref, config, resilience
        )
    return analyze_prepared(
        program, callgraph, modref, config, resilience, engine=engine
    )


def analyze_source(
    text: str,
    config: Optional[AnalysisConfig] = None,
    filename: str = "<string>",
    engine=None,
) -> AnalysisResult:
    """Parse, lower, and analyze MiniFortran source text.

    Strict frontend contract: raises :class:`FrontendError` on the
    first lex/parse/semantic problem. Use
    :func:`analyze_source_resilient` for multi-error recovery.
    """
    with _stage(engine, "parse"):
        module = parse_source(text, filename)
    with _stage(engine, "lower"):
        program = lower_module(module, SourceFile(filename, text))
    return analyze_program(program, config, engine=engine)


def analyze_source_resilient(
    text: str,
    config: Optional[AnalysisConfig] = None,
    filename: str = "<string>",
    diagnostics: Optional[DiagnosticEngine] = None,
    engine=None,
) -> Tuple[Optional[AnalysisResult], DiagnosticEngine]:
    """Analyze with frontend error recovery; never raises FrontendError.

    Lexer and parser recover and record every diagnostic on the engine;
    units whose bodies could not be parsed are analyzed as conservative
    stubs, so ``CONSTANTS(p)`` is still produced for every healthy
    procedure. Returns ``(result, diagnostics)`` where ``result`` is
    None only when nothing could be analyzed at all (no parseable units,
    or the recovered module fails semantic lowering).
    """
    diag = diagnostics if diagnostics is not None else DiagnosticEngine()
    with _stage(engine, "parse"):
        module = parse_source(text, filename, diag)
    if not module.units:
        return None, diag
    try:
        with _stage(engine, "lower"):
            program = lower_module(module, SourceFile(filename, text))
    except SemanticError as err:
        diag.error(E_SEMANTIC, err.message, err.location)
        return None, diag
    result = analyze_program(program, config, engine=engine)
    result.diagnostics = diag
    return result, diag


def _located_io_error(path: str, err: Exception) -> FrontendError:
    location = SourceLocation(path, 0, 0)
    if isinstance(err, UnicodeDecodeError):
        message = f"cannot decode {path!r} as UTF-8 text: {err.reason}"
    else:
        message = f"cannot read {path!r}: {err.strerror or err}"
    return FrontendError(message, location)


def analyze_file(
    path: str, config: Optional[AnalysisConfig] = None, engine=None
) -> AnalysisResult:
    """Analyze the MiniFortran program stored at ``path``.

    I/O problems (missing file, permissions, non-UTF-8 bytes) surface
    as a located :class:`FrontendError` rather than a raw OSError.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except (OSError, UnicodeDecodeError) as err:
        raise _located_io_error(path, err) from err
    return analyze_source(text, config, filename=path, engine=engine)


def analyze_file_resilient(
    path: str,
    config: Optional[AnalysisConfig] = None,
    diagnostics: Optional[DiagnosticEngine] = None,
    engine=None,
) -> Tuple[Optional[AnalysisResult], DiagnosticEngine]:
    """Resilient variant of :func:`analyze_file`: I/O and frontend
    problems land on the diagnostic engine instead of raising."""
    diag = diagnostics if diagnostics is not None else DiagnosticEngine()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except (OSError, UnicodeDecodeError) as err:
        located = _located_io_error(path, err)
        diag.error(E_IO, located.message, located.location)
        return None, diag
    return analyze_source_resilient(
        text, config, filename=path, diagnostics=diag, engine=engine
    )
