"""End-to-end analysis driver.

:func:`analyze_source` / :func:`analyze_program` run the full pipeline
for one :class:`~repro.config.AnalysisConfig`:

    parse -> lower -> call graph -> MOD/REF -> call-effect annotation
    -> SSA -> return jump functions -> forward jump functions
    -> interprocedural propagation -> substitution measurement

Complete propagation (``config.complete``) extends the tail with
substitute -> DCE -> re-propagate iterations
(:mod:`repro.ipcp.complete`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.analysis.sccp import SCCPCallModel
from repro.analysis.ssa import construct_ssa
from repro.callgraph.callgraph import CallGraph, build_call_graph
from repro.config import AnalysisConfig
from repro.frontend.parser import parse_source
from repro.frontend.source import SourceFile
from repro.ipcp.constants import ConstantsResult, empty_constants
from repro.ipcp.jump_functions import (
    JumpFunctionTable,
    build_forward_jump_functions,
)
from repro.ipcp.return_functions import (
    ReturnFunctionCallModel,
    ReturnFunctionMap,
    build_return_functions,
)
from repro.ipcp.solver import PropagationResult, propagate
from repro.ipcp.substitution import (
    SubstitutionReport,
    measure_substitution,
    render_transformed_source,
)
from repro.ir.lowering import lower_module
from repro.ir.module import Program
from repro.summary.modref import ModRefInfo, annotate_call_effects, compute_modref


@dataclass
class AnalysisResult:
    """Everything one analysis run produced."""

    config: AnalysisConfig
    program: Program
    callgraph: CallGraph
    modref: Optional[ModRefInfo]
    return_functions: ReturnFunctionMap
    jump_table: Optional[JumpFunctionTable]
    propagation: Optional[PropagationResult]
    constants: ConstantsResult
    substitution: SubstitutionReport
    dce_rounds: int = 0

    @property
    def substituted_constants(self) -> int:
        """The headline number: source references substituted."""
        return self.substitution.total

    def transformed_source(self) -> str:
        """The original program with constants textually substituted."""
        if self.program.source is None:
            raise ValueError("program was not built from source text")
        return render_transformed_source(self.program.source, self.substitution)


def prepare_program(
    program: Program, config: AnalysisConfig
) -> "tuple[CallGraph, Optional[ModRefInfo]]":
    """Shared front half: call graph, MOD/REF, call-effect annotation,
    SSA conversion. Mutates ``program`` (which must be freshly lowered
    and not yet in SSA form)."""
    callgraph = build_call_graph(program)
    modref = compute_modref(program, callgraph) if config.use_mod else None
    annotate_call_effects(program, callgraph, modref)
    for procedure in program:
        construct_ssa(procedure)
    return callgraph, modref


def analyze_prepared(
    program: Program,
    callgraph: CallGraph,
    modref: Optional[ModRefInfo],
    config: AnalysisConfig,
) -> AnalysisResult:
    """Back half of the pipeline, on an SSA-form annotated program.

    Factored out so complete propagation can re-run it after dead-code
    elimination without reconstructing SSA.
    """
    if config.use_return_functions:
        return_map = build_return_functions(program, callgraph, modref)
    else:
        return_map = ReturnFunctionMap()

    jump_table: Optional[JumpFunctionTable] = None
    propagation: Optional[PropagationResult] = None
    if config.interprocedural:
        jump_table = build_forward_jump_functions(
            program, callgraph, config.jump_function, return_map,
            gcp_oracle=config.gcp_oracle,
        )
        propagation = propagate(program, callgraph, jump_table)
        constants = propagation.constants
        if config.gsa_refinement:
            jump_table, propagation = _refine_gsa_style(
                program, callgraph, config, return_map, constants
            )
            constants = propagation.constants
    else:
        constants = empty_constants(program)

    if config.use_return_functions:
        call_model: SCCPCallModel = ReturnFunctionCallModel(program, return_map)
    else:
        call_model = SCCPCallModel()
    substitution = measure_substitution(program, constants, call_model)

    return AnalysisResult(
        config=config,
        program=program,
        callgraph=callgraph,
        modref=modref,
        return_functions=return_map,
        jump_table=jump_table,
        propagation=propagation,
        constants=constants,
        substitution=substitution,
    )


#: Bound on GSA-style refinement rounds (the paper's suite converged
#: after one extra round of complete propagation; ours does too).
_GSA_MAX_ROUNDS = 4


def _refine_gsa_style(program, callgraph, config, return_map, constants):
    """§4.2's remark realized: regenerate jump functions with a
    branch-sensitive oracle seeded by the previous round's CONSTANTS,
    dropping never-executed call sites, until the result stabilizes.
    Every VAL cell restarts at ⊤ each round ("reset to T"), so this is
    complete propagation without dead-code elimination."""
    from repro.ipcp.jump_functions import build_refined_jump_functions

    jump_table = None
    propagation = None
    previous_pairs = constants.total_pairs()
    for _round in range(_GSA_MAX_ROUNDS):
        jump_table, excluded = build_refined_jump_functions(
            program, callgraph, config.jump_function, return_map, constants
        )
        propagation = propagate(
            program, callgraph, jump_table, excluded_calls=excluded
        )
        constants = propagation.constants
        if constants.total_pairs() == previous_pairs:
            break
        previous_pairs = constants.total_pairs()
    return jump_table, propagation


def analyze_program(program: Program, config: Optional[AnalysisConfig] = None) -> AnalysisResult:
    """Analyze a freshly lowered (non-SSA) program under ``config``.

    The program is mutated (annotated, converted to SSA, and — under
    complete propagation — transformed); re-lower from source to analyze
    the same program under another configuration.
    """
    config = config or AnalysisConfig()
    callgraph, modref = prepare_program(program, config)
    if config.complete:
        # Imported here: complete.py uses analyze_prepared from this module.
        from repro.ipcp.complete import run_complete_propagation

        return run_complete_propagation(program, callgraph, modref, config)
    return analyze_prepared(program, callgraph, modref, config)


def analyze_source(
    text: str,
    config: Optional[AnalysisConfig] = None,
    filename: str = "<string>",
) -> AnalysisResult:
    """Parse, lower, and analyze MiniFortran source text."""
    module = parse_source(text, filename)
    program = lower_module(module, SourceFile(filename, text))
    return analyze_program(program, config)


def analyze_file(path: str, config: Optional[AnalysisConfig] = None) -> AnalysisResult:
    """Analyze the MiniFortran program stored at ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return analyze_source(handle.read(), config, filename=path)
