"""Aggregate statistics for one analysis run.

Surfaces the quantities the paper's §3.1.5 cost discussion is about:
how many jump functions of each payload class were built, their support
sizes and evaluation costs, how many return jump functions exist, and
how much work the propagation did. The CLI's ``analyze --stats`` prints
this; the benchmarks read individual fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.ipcp.driver import AnalysisResult


@dataclass
class AnalysisStatistics:
    """A flat summary of one :class:`AnalysisResult`."""

    configuration: str
    procedures: int
    call_sites: int
    forward_jump_functions: int
    payload_counts: Dict[str, int] = field(default_factory=dict)
    total_support: int = 0
    total_evaluation_cost: int = 0
    return_jump_functions: int = 0
    solver_strategy: str = "fifo"
    solver_visits: int = 0
    solver_jf_evaluations: int = 0
    solver_lowerings: int = 0
    constant_pairs: int = 0
    substituted_references: int = 0
    dce_rounds: int = 0

    def format(self) -> str:
        lines = [
            f"configuration:            {self.configuration}",
            f"procedures:               {self.procedures}",
            f"call sites:               {self.call_sites}",
            f"forward jump functions:   {self.forward_jump_functions}",
        ]
        for payload, count in sorted(self.payload_counts.items()):
            lines.append(f"  {payload:<22}  {count}")
        lines.extend(
            [
                f"total support size:       {self.total_support}",
                f"total evaluation cost:    {self.total_evaluation_cost}",
                f"return jump functions:    {self.return_jump_functions}",
                f"solver strategy:          {self.solver_strategy}",
                f"solver procedure visits:  {self.solver_visits}",
                f"solver JF evaluations:    {self.solver_jf_evaluations}",
                f"solver lowerings:         {self.solver_lowerings}",
                f"constant (name,value)s:   {self.constant_pairs}",
                f"substituted references:   {self.substituted_references}",
            ]
        )
        if self.dce_rounds:
            lines.append(f"DCE rounds:               {self.dce_rounds}")
        return "\n".join(lines)


def collect_statistics(result: AnalysisResult) -> AnalysisStatistics:
    """Summarize ``result``."""
    stats = AnalysisStatistics(
        configuration=result.config.describe(),
        procedures=len(result.program),
        call_sites=len(result.program.call_sites()),
        forward_jump_functions=(
            len(result.jump_table) if result.jump_table is not None else 0
        ),
        return_jump_functions=len(result.return_functions),
        constant_pairs=result.constants.total_pairs(),
        substituted_references=result.substituted_constants,
        dce_rounds=result.dce_rounds,
    )
    if result.jump_table is not None:
        stats.payload_counts = result.jump_table.payload_counts()
        stats.total_support = sum(
            len(f.support) for f in result.jump_table
        )
        stats.total_evaluation_cost = sum(
            f.cost() for f in result.jump_table
        )
    if result.propagation is not None:
        solver = result.propagation.stats
        stats.solver_strategy = solver.strategy
        stats.solver_visits = solver.procedure_visits
        stats.solver_jf_evaluations = solver.jump_function_evaluations
        stats.solver_lowerings = solver.lowerings
    return stats
