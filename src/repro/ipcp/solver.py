"""Interprocedural propagation of VAL sets around the call graph (§2).

A simple worklist iterative scheme, exactly as the study used ("the
results presented in this paper were computed using a simple worklist
iterative scheme"): each procedure's VAL set is the meet, over every
call-graph edge entering it, of its forward jump functions evaluated
against the caller's current VAL set. When a procedure's VAL set lowers,
its callees are reconsidered.

Termination: the Figure 1 lattice has depth 2, so each (procedure,
parameter) cell lowers at most twice; jump-function evaluation is
monotone; hence the fixpoint is reached in a bounded number of meets.

Initial values: every parameter of every procedure starts at ⊤ — "x
retains the value ⊤ only if the procedure containing x is never called".
The main program is the exception: it is invoked by the system, its
globals hold unknown (⊥) values at startup (MiniFortran COMMON storage
is uninitialized).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.callgraph.callgraph import CallGraph
from repro.ipcp.constants import ConstantsResult
from repro.ipcp.jump_functions import JumpFunctionTable
from repro.ir.module import Procedure, Program
from repro.ir.symbols import Variable
from repro.lattice import BOTTOM, LatticeValue, TOP, meet_all
from repro.obs import trace


#: Worklist disciplines understood by :func:`propagate`.
STRATEGIES = ("fifo", "lifo", "priority")


@dataclass
class PropagationStats:
    """Work counters for the complexity ablations."""

    procedure_visits: int = 0
    jump_function_evaluations: int = 0
    meets: int = 0
    lowerings: int = 0
    strategy: str = "fifo"


class _Worklist:
    """Worklist with explicit duplicate-enqueue bookkeeping.

    ``_pending`` tracks exact membership: a push of an already-pending
    procedure is dropped (one entry per procedure, ever), and every pop
    — on *every* strategy — prunes the popped procedure from
    ``_pending`` so it can be re-queued by a later lowering. Keeping
    the set and the container behind one interface makes it impossible
    for a strategy to update one without the other (the failure mode a
    bare ``deque`` + ``set`` pair invites).

    Strategies: ``"fifo"`` (queue), ``"lifo"`` (stack), ``"priority"``
    (always the procedure earliest in reverse postorder — an SCC-level
    topological wavefront from main toward the leaves).
    """

    def __init__(self, strategy: str, rank: Dict[Procedure, int]):
        self._strategy = strategy
        self._rank = rank
        self._pending: Set[Procedure] = set()
        self._queue: deque = deque()
        self._heap: List[tuple] = []

    def push(self, procedure: Procedure) -> bool:
        if procedure in self._pending:
            return False
        self._pending.add(procedure)
        if self._strategy == "priority":
            import heapq

            heapq.heappush(
                self._heap, (self._rank[procedure], procedure.name, procedure)
            )
        else:
            self._queue.append(procedure)
        return True

    def pop(self) -> Procedure:
        if self._strategy == "priority":
            import heapq

            procedure = heapq.heappop(self._heap)[2]
        elif self._strategy == "lifo":
            procedure = self._queue.pop()
        else:
            procedure = self._queue.popleft()
        self._pending.discard(procedure)
        return procedure

    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)


@dataclass
class PropagationResult:
    """VAL sets at fixpoint plus work statistics.

    ``excluded`` carries the call sites removed from the meets (GSA
    refinement) — provenance reconstruction needs them to explain why
    a site does not appear in a cell's derivation.
    """

    constants: ConstantsResult
    stats: PropagationStats
    excluded: frozenset = frozenset()


def entry_domain(procedure: Procedure, program: Program) -> List[Variable]:
    """The parameters tracked for ``procedure``: its scalar formals plus
    every scalar global (the paper's footnote-1 extension of "parameter"
    to global variables)."""
    domain = [v for v in procedure.formals if v.is_scalar]
    domain.extend(program.scalar_globals())
    return domain


def initial_value(procedure: Procedure, var: Variable, program: Program) -> LatticeValue:
    """The starting VAL cell: ⊤ everywhere except the main program,
    whose entry is the system — its globals hold their BLOCK DATA
    initial values when present, and are unknown (⊥) otherwise."""
    if not procedure.is_main:
        return TOP
    if var in program.global_initial_values:
        from repro.lattice import const

        return const(program.global_initial_values[var])
    return BOTTOM


def propagate(
    program: Program,
    callgraph: CallGraph,
    table: JumpFunctionTable,
    strategy: str = "fifo",
    excluded_calls: Optional[Set] = None,
    max_visits: Optional[int] = None,
    resilience=None,
) -> PropagationResult:
    """Run the iterative propagation to its fixpoint.

    ``strategy`` selects the worklist discipline (``"fifo"``,
    ``"lifo"``, or ``"priority"`` — reverse-postorder rank, an
    SCC-level topological wavefront) — the fixpoint is identical in
    every case (the lattice is finite and the meets are monotone; the
    ablation benchmark measures the work difference). The worklist is
    seeded in reverse postorder over the call graph, so values flow
    from main toward the leaves on the first sweep. ``excluded_calls``
    removes specific call sites from the meets — the GSA-style
    refinement marks never-executed calls this way (§4.2).

    ``max_visits`` is the solver's fuel (``AnalysisBudget.
    solver_visits``): when the worklist exceeds it, iteration stops and
    every non-main VAL cell drops to ⊥ — a sound fixpoint-free answer
    (⊥ claims nothing; main's cells are propagation *inputs*, not
    iterated). The exhaustion is recorded on ``resilience`` when given.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown worklist strategy {strategy!r}")

    stats = PropagationStats(strategy=strategy)
    val: Dict[str, Dict[Variable, LatticeValue]] = {}
    for procedure in program:
        val[procedure.name] = {
            var: initial_value(procedure, var, program)
            for var in entry_domain(procedure, program)
        }

    seed_order = [p for p in callgraph.reverse_postorder() if not p.is_main]
    rank = {p: index for index, p in enumerate(seed_order)}
    worklist = _Worklist(strategy, rank)
    for procedure in seed_order:
        worklist.push(procedure)
    excluded_calls = excluded_calls or set()

    while worklist:
        if max_visits is not None and stats.procedure_visits >= max_visits:
            _exhaust_to_bottom(program, val)
            if resilience is not None:
                resilience.record(
                    "solver", "<interprocedural worklist>", "fixpoint",
                    "bottom",
                    f"propagation exceeded its budget of {max_visits} "
                    f"procedure visits",
                )
            if trace.ENABLED:
                trace.instant(
                    "solver.exhausted", budget=max_visits, strategy=strategy
                )
            break
        procedure = worklist.pop()
        stats.procedure_visits += 1
        if trace.ENABLED:
            trace.instant(
                "solver.visit", procedure=procedure.name,
                pending=len(worklist), visit=stats.procedure_visits,
            )
        if _recompute_val(
            program, callgraph, table, procedure, val, stats, excluded_calls
        ):
            for callee in callgraph.callees(procedure):
                if not callee.is_main:
                    worklist.push(callee)

    return PropagationResult(
        ConstantsResult(val), stats, frozenset(excluded_calls)
    )


def _exhaust_to_bottom(
    program: Program, val: Dict[str, Dict[Variable, LatticeValue]]
) -> None:
    """Drop every non-main VAL cell to ⊥ after fuel exhaustion. Partial
    worklist results are not a fixpoint and therefore unsound to keep:
    a cell still at ⊤/const might have lowered had iteration continued."""
    for procedure in program:
        if procedure.is_main:
            continue
        cells = val[procedure.name]
        for var in cells:
            cells[var] = BOTTOM


def _recompute_val(
    program: Program,
    callgraph: CallGraph,
    table: JumpFunctionTable,
    procedure: Procedure,
    val: Dict[str, Dict[Variable, LatticeValue]],
    stats: PropagationStats,
    excluded_calls: Optional[Set] = None,
) -> bool:
    """Meet the jump-function values over all incoming edges; True when
    any cell of VAL(procedure) lowered."""
    sites = [
        s
        for s in callgraph.sites_into(procedure)
        if not excluded_calls or s.call not in excluded_calls
    ]
    current = val[procedure.name]
    changed = False
    for var in current:
        incoming: List[LatticeValue] = []
        for site in sites:
            caller_val = val[site.caller.name]

            def caller_value(v: Variable, _caller_val=caller_val) -> LatticeValue:
                return _caller_val.get(v, BOTTOM)

            function = table.lookup(site.call, var)
            if function is None:
                # No jump function was built for this slot (array formal
                # passed positionally, etc.): be safe.
                incoming.append(BOTTOM)
                continue
            stats.jump_function_evaluations += 1
            incoming.append(function.evaluate(caller_value))
        stats.meets += max(0, len(incoming))
        new_value = current[var].meet(meet_all(incoming))
        if new_value != current[var]:
            if trace.ENABLED and new_value.is_bottom:
                trace.instant(
                    "solver.meet_bottom", procedure=procedure.name,
                    name=var.name, sites=len(sites),
                )
            current[var] = new_value
            stats.lowerings += 1
            changed = True
    return changed
