"""Forward jump functions (§3.1).

For a call site ``s`` in procedure ``p`` and an actual parameter ``y``
(explicit argument or implicitly passed global), the forward jump
function ``J_s^y`` gives the value of ``y`` at ``s`` as a function of
``p``'s entry values. Four implementations, in increasing power:

====================  =====================================================
literal               constant only when the actual is a literal at the
                      call site; misses globals entirely
intraprocedural       ``gcp(y, s)`` — the constant value numbering proves,
                      with MOD information and (constant-evaluated) return
                      jump functions folded in; still no incoming values
pass-through          additionally, an actual that is an unmodified copy
                      of a formal/global forwards that entry value —
                      constants now cross paths of length > 1 in G
polynomial            additionally, any actual expressible as a polynomial
                      of entry values
====================  =====================================================

All four are extracted from one value-numbering pass (§3: "we built a
set of jump functions on top of an existing framework for global value
numbering"), so the comparison between them is apples-to-apples. Each
is built once, before propagation begins, and re-evaluated against the
caller's VAL set as the solver iterates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.expr import ConstExpr, EntryExpr, Expr
from repro.analysis.value_numbering import ValueNumbering
from repro.callgraph.callgraph import CallGraph
from repro.config import AnalysisBudget, BudgetExceeded, JumpFunctionKind
from repro.ir.instructions import Call, Const, Operand, Use
from repro.ir.module import Procedure, Program
from repro.ir.symbols import Variable
from repro.lattice import BOTTOM, LatticeValue, TOP, const
from repro.poly.polynomial import Polynomial, expr_to_polynomial
from repro.ipcp.resilience import BOTTOM_KIND, ResilienceReport
from repro.ipcp.return_functions import ForwardCallSemantics, ReturnFunctionMap


@dataclass
class ForwardJumpFunction:
    """``J_s^y`` for one (call site, callee entry variable) pair.

    Exactly one payload is set: ``constant`` (the value is a known
    constant), ``source_var`` (pass-through of a caller entry value), or
    ``polynomial``; all three None means ⊥ — the jump function can never
    produce a constant.
    """

    kind: JumpFunctionKind
    call: Call
    target: Variable
    constant: Optional[int] = None
    source_var: Optional[Variable] = None
    polynomial: Optional[Polynomial] = None

    @property
    def is_bottom(self) -> bool:
        return (
            self.constant is None
            and self.source_var is None
            and self.polynomial is None
        )

    @property
    def support(self) -> frozenset:
        """The exact set of caller entry variables used (§2)."""
        if self.source_var is not None:
            return frozenset((self.source_var,))
        if self.polynomial is not None:
            return self.polynomial.support()
        return frozenset()

    def evaluate(
        self, caller_value: Callable[[Variable], LatticeValue]
    ) -> LatticeValue:
        """Evaluate against the caller's current VAL set.

        Monotone in its inputs: TOP anywhere in the support keeps the
        result optimistic, ⊥ anywhere forces ⊥.
        """
        if self.constant is not None:
            return const(self.constant)
        if self.source_var is not None:
            return caller_value(self.source_var)
        if self.polynomial is not None:
            env: Dict[Variable, int] = {}
            for variable in self.polynomial.support():
                value = caller_value(variable)
                if value.is_bottom:
                    return BOTTOM
                if value.is_top:
                    return TOP
                env[variable] = value.value
            result = self.polynomial.evaluate(env)
            return BOTTOM if result is None else const(result)
        return BOTTOM

    def cost(self) -> int:
        """Abstract evaluation cost (operand touches), for the §3.1.5
        complexity accounting."""
        if self.constant is not None or self.is_bottom:
            return 1
        if self.source_var is not None:
            return 1
        return 1 + len(self.polynomial.terms)

    def __repr__(self) -> str:
        if self.constant is not None:
            payload = str(self.constant)
        elif self.source_var is not None:
            payload = f"pass({self.source_var.name})"
        elif self.polynomial is not None:
            payload = repr(self.polynomial)
        else:
            payload = "_|_"
        return f"J^{self.target.name}[{self.kind.value}] = {payload}"


class JumpFunctionTable:
    """All forward jump functions of one configuration."""

    def __init__(self, kind: JumpFunctionKind):
        self.kind = kind
        self._by_slot: Dict[Tuple[Call, Variable], ForwardJumpFunction] = {}
        self._by_call: Dict[Call, List[ForwardJumpFunction]] = {}

    def add(self, function: ForwardJumpFunction) -> None:
        self._by_slot[(function.call, function.target)] = function
        self._by_call.setdefault(function.call, []).append(function)

    def lookup(self, call: Call, target: Variable) -> Optional[ForwardJumpFunction]:
        return self._by_slot.get((call, target))

    def for_call(self, call: Call) -> List[ForwardJumpFunction]:
        return list(self._by_call.get(call, ()))

    def __len__(self) -> int:
        return len(self._by_slot)

    def __iter__(self):
        return iter(self._by_slot.values())

    def payload_counts(self) -> Dict[str, int]:
        """How many jump functions fell into each payload class."""
        counts = {"constant": 0, "pass_through": 0, "polynomial": 0, "bottom": 0}
        for function in self:
            if function.constant is not None:
                counts["constant"] += 1
            elif function.source_var is not None:
                counts["pass_through"] += 1
            elif function.polynomial is not None:
                counts["polynomial"] += 1
            else:
                counts["bottom"] += 1
        return counts


#: Demotion chain for graceful degradation: each kind's next-weaker
#: fallback; ``None`` past LITERAL means ⊥ (a payload-less function).
WEAKER_KIND = {
    JumpFunctionKind.POLYNOMIAL: JumpFunctionKind.PASS_THROUGH,
    JumpFunctionKind.PASS_THROUGH: JumpFunctionKind.INTRAPROCEDURAL,
    JumpFunctionKind.INTRAPROCEDURAL: JumpFunctionKind.LITERAL,
    JumpFunctionKind.LITERAL: None,
}


def check_polynomial_budget(
    polynomial: Optional[Polynomial], budget: Optional[AnalysisBudget]
) -> None:
    """Raise :class:`BudgetExceeded` for an oversized polynomial."""
    if polynomial is None or budget is None:
        return
    if (
        budget.polynomial_terms is not None
        and len(polynomial.terms) > budget.polynomial_terms
    ):
        raise BudgetExceeded(
            "polynomial size",
            budget.polynomial_terms,
            f"{len(polynomial.terms)} terms",
        )
    if (
        budget.polynomial_degree is not None
        and polynomial.degree() > budget.polynomial_degree
    ):
        raise BudgetExceeded(
            "polynomial degree",
            budget.polynomial_degree,
            f"degree {polynomial.degree()}",
        )


def _call_site_label(procedure_name: str, call: Call, target: Variable) -> str:
    where = f" @ {call.location}" if call.location is not None else ""
    return f"{procedure_name}: call {call.callee}{where} / {target.name}"


def _make_jump_function_guarded(
    kind: JumpFunctionKind,
    call: Call,
    target: Variable,
    operand: Operand,
    numbering: ValueNumbering,
    is_global: bool,
    sccp_result,
    budget: Optional[AnalysisBudget],
    resilience: ResilienceReport,
    fault_isolation: bool,
    procedure_name: str,
) -> ForwardJumpFunction:
    """Build ``J_s^y``, demoting down :data:`WEAKER_KIND` on failure.

    A :class:`BudgetExceeded` (oversized polynomial) always demotes;
    any other exception demotes only under ``fault_isolation`` —
    soundness holds because every weaker kind (ultimately ⊥) computes a
    value ≤ the intended one in the lattice order.
    """
    current: Optional[JumpFunctionKind] = kind
    last_reason = ""
    while current is not None:
        try:
            function = _make_jump_function(
                current, call, target, operand, numbering,
                is_global=is_global, sccp_result=sccp_result,
            )
            check_polynomial_budget(function.polynomial, budget)
        except BudgetExceeded as err:
            last_reason = str(err)
        except Exception as err:  # noqa: BLE001 — fault isolation boundary
            if not fault_isolation:
                raise
            last_reason = f"{type(err).__name__}: {err}"
        else:
            if current is not kind:
                resilience.record(
                    "jump_function",
                    _call_site_label(procedure_name, call, target),
                    kind.value,
                    current.value,
                    last_reason,
                )
            return function
        current = WEAKER_KIND[current]
    resilience.record(
        "jump_function",
        _call_site_label(procedure_name, call, target),
        kind.value,
        BOTTOM_KIND,
        last_reason,
    )
    return ForwardJumpFunction(kind, call, target)


def build_forward_jump_functions(
    program: Program,
    callgraph: CallGraph,
    kind: JumpFunctionKind,
    return_map: Optional[ReturnFunctionMap] = None,
    gcp_oracle: str = "value_numbering",
    budget: Optional[AnalysisBudget] = None,
    resilience: Optional[ResilienceReport] = None,
    fault_isolation: bool = True,
) -> JumpFunctionTable:
    """Generate forward jump functions in a top-down pass (§4.1).

    Value numbering runs once per procedure with
    :class:`ForwardCallSemantics` (return jump functions admit only
    constant evaluations here); the requested jump-function class is
    then extracted from the resulting expressions.

    ``gcp_oracle`` selects how the §3.1 constant oracle is computed:
    ``"value_numbering"`` reads constants straight off the expressions
    (the paper's implementation); ``"sccp"`` additionally runs sparse
    conditional constant propagation per procedure, whose dead-branch
    pruning can prove more call-site operands constant.
    """
    if gcp_oracle not in ("value_numbering", "sccp"):
        raise ValueError(f"unknown gcp oracle {gcp_oracle!r}")
    table = JumpFunctionTable(kind)
    return_map = return_map or ReturnFunctionMap()
    for procedure in callgraph.top_down_order():
        build_forward_jump_functions_for(
            program, procedure, kind, table, return_map,
            gcp_oracle=gcp_oracle, budget=budget, resilience=resilience,
            fault_isolation=fault_isolation,
        )
    return table


def build_forward_jump_functions_for(
    program: Program,
    procedure: Procedure,
    kind: JumpFunctionKind,
    table: JumpFunctionTable,
    return_map: ReturnFunctionMap,
    gcp_oracle: str = "value_numbering",
    budget: Optional[AnalysisBudget] = None,
    resilience: Optional[ResilienceReport] = None,
    fault_isolation: bool = True,
) -> None:
    """Build the forward jump functions of every call site *in*
    ``procedure`` into ``table``. Independent across procedures (the
    return map is read-only here), which is what lets the engine fan
    this out per procedure."""
    numbering = ValueNumbering(
        procedure, ForwardCallSemantics(program, return_map)
    )

    def make(call, target, operand, is_global, sccp_result):
        if resilience is None:
            return _make_jump_function(
                kind, call, target, operand, numbering,
                is_global=is_global, sccp_result=sccp_result,
            )
        return _make_jump_function_guarded(
            kind, call, target, operand, numbering,
            is_global=is_global, sccp_result=sccp_result,
            budget=budget, resilience=resilience,
            fault_isolation=fault_isolation,
            procedure_name=procedure.name,
        )

    sccp_result = None
    if gcp_oracle == "sccp":
        from repro.analysis.sccp import run_sccp
        from repro.ipcp.return_functions import ReturnFunctionCallModel

        try:
            sccp_result = run_sccp(
                procedure,
                entry_values=None,
                call_model=ReturnFunctionCallModel(program, return_map),
                max_visits=budget.sccp_visits if budget else None,
            )
        except BudgetExceeded as err:
            if resilience is None:
                raise
            # Fall back to the plain value-numbering oracle for this
            # one procedure (strictly weaker, hence sound).
            resilience.record(
                "sccp_oracle", procedure.name, "sccp",
                "value_numbering", str(err),
            )
        except Exception as err:  # noqa: BLE001 — fault isolation
            if resilience is None or not fault_isolation:
                raise
            resilience.record(
                "sccp_oracle", procedure.name, "sccp",
                "value_numbering", f"{type(err).__name__}: {err}",
            )
    for call in procedure.call_sites():
        callee = program.procedure(call.callee)
        for formal, arg in zip(callee.formals, call.args):
            if not formal.is_scalar or arg.is_array:
                continue
            table.add(make(call, formal, arg.value, False, sccp_result))
        for use in call.entry_uses:
            table.add(make(call, use.var, use, True, sccp_result))


def build_refined_jump_functions(
    program: Program,
    callgraph: CallGraph,
    kind: JumpFunctionKind,
    return_map: ReturnFunctionMap,
    constants,
    budget: Optional[AnalysisBudget] = None,
    resilience: Optional[ResilienceReport] = None,
    fault_isolation: bool = True,
) -> "Tuple[JumpFunctionTable, set]":
    """Gated-single-assignment-style generation (the paper's §4.2
    remark: "the results that we obtained with complete propagation can
    be achieved by basing the jump-function generator on gated
    single-assignment form ... [which] would never consider the dead
    assignments").

    Seeds each procedure's SCCP with the CONSTANTS discovered by a prior
    propagation round, so the constant oracle is branch-sensitive under
    interprocedural knowledge, and call sites in never-executed branches
    are *excluded* from the call graph's meets entirely. Returns
    ``(table, excluded_calls)``.
    """
    from repro.analysis.sccp import run_sccp
    from repro.ipcp.return_functions import ReturnFunctionCallModel

    table = JumpFunctionTable(kind)
    excluded: set = set()
    call_model = ReturnFunctionCallModel(program, return_map)

    def make(call, target, operand, is_global, sccp_result, procedure):
        if resilience is None:
            return _make_jump_function(
                kind, call, target, operand, numbering,
                is_global=is_global, sccp_result=sccp_result,
            )
        return _make_jump_function_guarded(
            kind, call, target, operand, numbering,
            is_global=is_global, sccp_result=sccp_result,
            budget=budget, resilience=resilience,
            fault_isolation=fault_isolation,
            procedure_name=procedure.name,
        )

    for procedure in callgraph.top_down_order():
        numbering = ValueNumbering(
            procedure, ForwardCallSemantics(program, return_map)
        )
        try:
            sccp_result = run_sccp(
                procedure, constants.entry_lattice(procedure), call_model,
                max_visits=budget.sccp_visits if budget else None,
            )
        except BudgetExceeded as err:
            if resilience is None:
                raise
            # No branch-sensitive refinement for this procedure: keep all
            # of its call sites and fall back to the plain oracle.
            resilience.record(
                "sccp_oracle", procedure.name, "sccp",
                "value_numbering", str(err),
            )
            sccp_result = None
        except Exception as err:  # noqa: BLE001 — fault isolation
            if resilience is None or not fault_isolation:
                raise
            resilience.record(
                "sccp_oracle", procedure.name, "sccp",
                "value_numbering", f"{type(err).__name__}: {err}",
            )
            sccp_result = None
        dead_blocks = (
            set(sccp_result.dead_blocks()) if sccp_result is not None else set()
        )
        for call in procedure.call_sites():
            block = _block_of_call(procedure, call)
            if block in dead_blocks:
                excluded.add(call)
                continue
            callee = program.procedure(call.callee)
            for formal, arg in zip(callee.formals, call.args):
                if not formal.is_scalar or arg.is_array:
                    continue
                table.add(
                    make(call, formal, arg.value, False, sccp_result, procedure)
                )
            for use in call.entry_uses:
                table.add(
                    make(call, use.var, use, True, sccp_result, procedure)
                )
    return table, excluded


def _block_of_call(procedure: Procedure, call: Call):
    for block in procedure.cfg.blocks:
        if call in block.instructions:
            return block
    return None


def _make_jump_function(
    kind: JumpFunctionKind,
    call: Call,
    target: Variable,
    operand: Operand,
    numbering: ValueNumbering,
    is_global: bool,
    sccp_result=None,
) -> ForwardJumpFunction:
    function = ForwardJumpFunction(kind, call, target)

    if kind is JumpFunctionKind.LITERAL:
        # Only a textual literal at the call site; constant globals are
        # passed implicitly and therefore missed entirely (§3.1.1).
        if not is_global and isinstance(operand, Const):
            function.constant = operand.value
        return function

    expr = numbering.operand_expr(operand)
    if isinstance(expr, ConstExpr):
        # gcp(y, s) produced a constant — shared by the three nontrivial
        # kinds (§3.1.2-3.1.4 all start "if gcp(y, s) = c").
        function.constant = expr.value
        return function
    if sccp_result is not None:
        # The stronger SCCP-based gcp oracle: branch-sensitive.
        value = sccp_result.operand_value(operand)
        if value.is_constant:
            function.constant = value.value
            return function

    if kind is JumpFunctionKind.INTRAPROCEDURAL:
        return function  # no incoming values: anything else is ⊥

    if kind is JumpFunctionKind.PASS_THROUGH:
        if isinstance(expr, EntryExpr):
            function.source_var = expr.var
        return function

    # Polynomial: the most general class.
    polynomial = expr_to_polynomial(expr)
    if polynomial is not None:
        identity = polynomial.is_single_variable_identity()
        if identity is not None:
            function.source_var = identity
        else:
            function.polynomial = polynomial
    return function
