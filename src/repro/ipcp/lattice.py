"""Re-export of the constant-propagation lattice (Figure 1).

The implementation lives in :mod:`repro.lattice` so that intraprocedural
analyses can use it without importing the IPCP package; this module
provides the path the design document names.
"""

from repro.lattice import BOTTOM, TOP, LatticeValue, const, depth_to_bottom, meet_all

__all__ = ["BOTTOM", "TOP", "LatticeValue", "const", "depth_to_bottom", "meet_all"]
