"""Recording the results: constant substitution and the effectiveness
metric (§4.1 "Recording the results").

After propagation, each procedure is re-analyzed by SCCP with its entry
values seeded from ``CONSTANTS(p)``; every *source-level reference* to a
scalar variable whose value is proven constant is a substitution site.
The per-program count of such references is the number the study's
Tables 2 and 3 report — the Metzger–Stroud measure, which "relates more
directly to code improvement [and] factors out procedure length and
modularity" (known-but-unreferenced constants do not count).

The module also implements the optional transformed-source output: "the
analyzer can produce a transformed version of the original source in
which the interprocedural constants are textually substituted into the
code".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.sccp import (
    SCCPCallModel,
    SCCPResult,
    modified_actual_uses,
    run_sccp,
)
from repro.frontend.source import SourceFile
from repro.ipcp.constants import ConstantsResult
from repro.ir.instructions import Const, Phi, Use
from repro.ir.module import Procedure, Program


@dataclass
class SubstitutionSite:
    """One source reference replaced by a constant."""

    procedure_name: str
    use: Use
    value: int

    @property
    def location(self):
        return self.use.location


@dataclass
class SubstitutionReport:
    """Substitution counts for one analysis configuration."""

    per_procedure: Dict[str, int] = field(default_factory=dict)
    sites: List[SubstitutionSite] = field(default_factory=list)
    sccp_results: Dict[str, SCCPResult] = field(default_factory=dict)

    @property
    def total(self) -> int:
        """The Table 2 / Table 3 cell: constants substituted into the
        program."""
        return sum(self.per_procedure.values())

    def count_for(self, procedure_name: str) -> int:
        return self.per_procedure.get(procedure_name, 0)


def measure_substitution(
    program: Program,
    constants: ConstantsResult,
    call_model: Optional[SCCPCallModel] = None,
    budget=None,
    resilience=None,
    fault_isolation: bool = True,
) -> SubstitutionReport:
    """Run the substitution SCCP per procedure and count constant
    source references. Non-mutating.

    With a ``resilience`` report, a procedure whose substitution SCCP
    exceeds ``budget.sccp_visits`` (or raises, under
    ``fault_isolation``) simply contributes zero substitutions — an
    under-count, never a wrong count.
    """
    report = SubstitutionReport()
    call_model = call_model or SCCPCallModel()
    for procedure in program:
        measure_substitution_for(
            procedure, constants, call_model, report,
            budget=budget, resilience=resilience,
            fault_isolation=fault_isolation,
        )
    return report


def measure_substitution_for(
    procedure: Procedure,
    constants: ConstantsResult,
    call_model: SCCPCallModel,
    report: SubstitutionReport,
    budget=None,
    resilience=None,
    fault_isolation: bool = True,
) -> None:
    """Measure one procedure's substitutions into ``report``.

    Independent across procedures (SCCP is per-procedure with entry
    values from CONSTANTS), which is what lets the engine fan the
    measurement out.
    """
    from repro.config import BudgetExceeded

    max_visits = budget.sccp_visits if budget is not None else None
    entry = constants.entry_lattice(procedure)
    try:
        result = run_sccp(procedure, entry, call_model, max_visits)
    except BudgetExceeded as err:
        if resilience is None:
            raise
        resilience.record(
            "substitution", procedure.name, "sccp", "skipped", str(err)
        )
        report.per_procedure[procedure.name] = 0
        return
    except Exception as err:  # noqa: BLE001 — fault isolation boundary
        if resilience is None or not fault_isolation:
            raise
        resilience.record(
            "substitution", procedure.name, "sccp", "skipped",
            f"{type(err).__name__}: {err}",
        )
        report.per_procedure[procedure.name] = 0
        return
    report.sccp_results[procedure.name] = result
    uses = result.constant_source_references()
    report.per_procedure[procedure.name] = len(uses)
    for use in uses:
        value = result.operand_value(use)
        report.sites.append(
            SubstitutionSite(procedure.name, use, value.value)
        )


def apply_substitution(program: Program, report: SubstitutionReport) -> int:
    """Rewrite every constant-valued operand (source-level or temporary)
    to a literal Const, in executable code. Mutates the IR; returns the
    number of operands rewritten. Used by complete propagation so that
    dead-code elimination can see the folded branches and unused
    definitions."""
    rewritten = 0
    for procedure in program:
        result = report.sccp_results.get(procedure.name)
        if result is None:
            continue
        for block in procedure.cfg.blocks:
            if block not in result.executable_blocks:
                continue
            for instruction in block.instructions:
                if isinstance(instruction, Phi):
                    continue
                skip = modified_actual_uses(instruction)
                for use in list(instruction.uses()):
                    if use in skip:
                        # A by-reference actual the callee may write:
                        # replacing it with a literal would sever the
                        # writeback.
                        continue
                    value = result.operand_value(use)
                    if value.is_constant:
                        instruction.replace_operand(use, Const(value.value))
                        rewritten += 1
    return rewritten


def render_transformed_source(source: SourceFile, report: SubstitutionReport) -> str:
    """Textually substitute the discovered constants into the original
    source, returning the transformed program text."""
    lines = source.lines
    # Replace right-to-left within each line so columns stay valid.
    per_line: Dict[int, List[Tuple[int, str, int]]] = {}
    for site in report.sites:
        location = site.location
        if location.filename != source.name or location.line <= 0:
            continue
        per_line.setdefault(location.line, []).append(
            (location.column, site.use.var.name, site.value)
        )
    for line_number, replacements in per_line.items():
        text = lines[line_number - 1]
        for column, name, value in sorted(replacements, reverse=True):
            start = column - 1
            end = start + len(name)
            if text[start:end].lower() != name:
                continue  # stale location (source drifted); skip safely
            text = text[:start] + str(value) + text[end:]
        lines[line_number - 1] = text
    return "\n".join(lines) + "\n"
