"""The binding multi-graph solver — the alternative formulation of the
interprocedural propagation (§2: "Alternative formulations based on the
binding multi-graph are possible [Cooper & Kennedy]; the method
presented by Callahan et al. essentially models the binding graph
computation on the call graph").

Where the call-graph worklist solver re-evaluates *every* parameter of a
procedure when anything about it changes, the binding multi-graph is
parameter-grained:

- a **node** is one (procedure, parameter) pair — a cell of some VAL set
  (parameters include globals, as everywhere in this implementation);
- an **edge** runs from the jump function of one call-site actual to the
  callee parameter it feeds, and *depends on* exactly the caller
  parameters in the jump function's support.

Propagation pushes individual edges: when a node lowers, only the edges
whose support mentions it are re-evaluated. This realizes the paper's
complexity accounting directly — each node can lower at most twice
(Figure 1's bounded depth), so each edge is re-evaluated O(|support|)
times, giving the §3.1.5 bound O(Σ_s Σ_y cost(J_s^y) · |support(J_s^y)|).

The fixpoint is identical to the call-graph solver's (asserted by tests
and the solver-ablation benchmark); only the amount of work differs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.callgraph.callgraph import CallGraph
from repro.ipcp.constants import ConstantsResult
from repro.ipcp.jump_functions import ForwardJumpFunction, JumpFunctionTable
from repro.ipcp.solver import PropagationResult, PropagationStats, entry_domain
from repro.ir.module import Procedure, Program
from repro.ir.symbols import Variable
from repro.lattice import BOTTOM, LatticeValue, TOP, meet_all

#: A node of the binding multi-graph.
Node = Tuple[str, Variable]


@dataclass
class BindingEdge:
    """One jump-function edge of the multi-graph."""

    caller: str
    callee: str
    target: Node
    function: ForwardJumpFunction

    @property
    def support_nodes(self) -> List[Node]:
        return [(self.caller, var) for var in self.function.support]


class BindingMultiGraph:
    """The multi-graph: nodes, edges, and the dependence index used to
    schedule re-evaluations."""

    def __init__(self, program: Program, callgraph: CallGraph,
                 table: JumpFunctionTable):
        self.program = program
        self.nodes: List[Node] = []
        self.edges: List[BindingEdge] = []
        #: Edges delivering a value *into* each node.
        self.in_edges: Dict[Node, List[BindingEdge]] = {}
        #: Edges whose jump-function support mentions each node.
        self.dependents: Dict[Node, List[BindingEdge]] = {}
        self._build(callgraph, table)

    def _build(self, callgraph: CallGraph, table: JumpFunctionTable) -> None:
        for procedure in self.program:
            for var in entry_domain(procedure, self.program):
                node = (procedure.name, var)
                self.nodes.append(node)
                self.in_edges[node] = []
                self.dependents[node] = []
        for site in callgraph.sites:
            for var in entry_domain(site.callee, self.program):
                target = (site.callee.name, var)
                function = table.lookup(site.call, var)
                if function is None:
                    # No jump function: a permanent bottom edge.
                    function = ForwardJumpFunction(table.kind, site.call, var)
                edge = BindingEdge(
                    site.caller.name, site.callee.name, target, function
                )
                self.edges.append(edge)
                self.in_edges[target].append(edge)
        for edge in self.edges:
            for node in edge.support_nodes:
                if node in self.dependents:
                    self.dependents[node].append(edge)

    def statistics(self) -> Dict[str, int]:
        """Structural statistics (used by the ablation benchmark)."""
        return {
            "nodes": len(self.nodes),
            "edges": len(self.edges),
            "total_support": sum(len(e.function.support) for e in self.edges),
        }


def propagate_binding_graph(
    program: Program,
    callgraph: CallGraph,
    table: JumpFunctionTable,
) -> PropagationResult:
    """Solve the interprocedural problem on the binding multi-graph.

    Produces the same CONSTANTS sets as
    :func:`repro.ipcp.solver.propagate`; the stats reflect the finer
    granularity (jump-function evaluations instead of whole-procedure
    recomputations).
    """
    graph = BindingMultiGraph(program, callgraph, table)
    stats = PropagationStats()

    from repro.ipcp.solver import initial_value

    val: Dict[Node, LatticeValue] = {}
    for node in graph.nodes:
        procedure_name, var = node
        val[node] = initial_value(
            program.procedures[procedure_name], var, program
        )

    def caller_value_fn(caller: str):
        def lookup(var: Variable) -> LatticeValue:
            return val.get((caller, var), BOTTOM)

        return lookup

    def evaluate_node(node: Node) -> LatticeValue:
        incoming = []
        for edge in graph.in_edges[node]:
            stats.jump_function_evaluations += 1
            incoming.append(
                edge.function.evaluate(caller_value_fn(edge.caller))
            )
        stats.meets += len(incoming)
        return meet_all(incoming)

    # Seed: every non-main node with at least one incoming edge.
    worklist = deque(
        node
        for node in graph.nodes
        if graph.in_edges[node] and not program.procedures[node[0]].is_main
    )
    queued: Set[Node] = set(worklist)

    while worklist:
        node = worklist.popleft()
        queued.discard(node)
        stats.procedure_visits += 1  # here: node visits
        new_value = val[node].meet(evaluate_node(node))
        if new_value == val[node]:
            continue
        val[node] = new_value
        stats.lowerings += 1
        for edge in graph.dependents[node]:
            if program.procedures[edge.target[0]].is_main:
                continue
            if edge.target not in queued:
                queued.add(edge.target)
                worklist.append(edge.target)

    per_procedure: Dict[str, Dict[Variable, LatticeValue]] = {
        p.name: {} for p in program
    }
    for (procedure_name, var), value in val.items():
        per_procedure[procedure_name][var] = value
    return PropagationResult(ConstantsResult(per_procedure), stats)
