"""Return jump functions (§3.2).

For a procedure ``p`` and a scalar ``x`` that ``p`` may modify (a
reference formal, a global, or the function result), the return jump
function ``R_p^x`` approximates ``x``'s value on return from ``p`` as a
polynomial over ``p``'s entry values. Construction happens during a
bottom-up walk of the call graph: each procedure is value-numbered with
the return jump functions of its (already processed) callees available,
and the expression every observable variable has at the RETURN points
becomes its return jump function — provided all exits agree and the
expression is polynomial.

Per the paper, each return jump function is evaluated at a call site
exactly twice:

1. while generating the *caller's* return jump functions (bottom-up),
   where symbolic results — expressions over the caller's entry values —
   are kept, "in order to expose as many return jump functions as
   possible in the calling procedure";
2. while generating forward jump functions (top-down), where "any return
   jump function that cannot be evaluated as constant using
   intraprocedural information coupled with other return jump function
   values is set to ⊥" — so a result still depending on the caller's
   parameters becomes unknown.

:class:`GenerationCallSemantics` and :class:`ForwardCallSemantics`
implement those two evaluation modes for value numbering;
:class:`ReturnFunctionCallModel` implements the lattice evaluation used
by the final SCCP substitution pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.expr import ConstExpr, EntryExpr, Expr, substitute
from repro.analysis.sccp import SCCPCallModel
from repro.analysis.value_numbering import CallSemantics, ValueNumbering
from repro.callgraph.callgraph import CallGraph
from repro.config import AnalysisBudget, BudgetExceeded
from repro.ir.instructions import Call, Operand, Return
from repro.ir.module import Procedure, Program
from repro.ir.symbols import Variable
from repro.lattice import BOTTOM, LatticeValue, TOP, const
from repro.poly.polynomial import Polynomial, expr_to_polynomial
from repro.ipcp.resilience import BOTTOM_KIND, ResilienceReport
from repro.summary.modref import ModRefInfo


@dataclass(frozen=True)
class ReturnJumpFunction:
    """``R_p^target``: the value of ``target`` after an invocation of
    ``procedure_name``, as an expression/polynomial over the procedure's
    entry values. ``support`` is the exact set of entry values used
    (§2)."""

    procedure_name: str
    target: Variable
    expr: Expr
    polynomial: Polynomial

    @property
    def support(self) -> frozenset:
        return self.polynomial.support()

    def __repr__(self) -> str:
        return (
            f"R[{self.procedure_name}]^{self.target.name} = {self.polynomial!r}"
        )


class ReturnFunctionMap:
    """All return jump functions of a program, keyed by procedure and
    target variable. An empty map models the "No Return Jump Functions"
    configurations of Table 2."""

    def __init__(self):
        self._functions: Dict[Tuple[str, Variable], ReturnJumpFunction] = {}

    def add(self, function: ReturnJumpFunction) -> None:
        self._functions[(function.procedure_name, function.target)] = function

    def lookup(self, procedure_name: str, target: Variable) -> Optional[ReturnJumpFunction]:
        return self._functions.get((procedure_name, target))

    def functions_of(self, procedure_name: str) -> List[ReturnJumpFunction]:
        return [
            f
            for (name, _var), f in self._functions.items()
            if name == procedure_name
        ]

    def __len__(self) -> int:
        return len(self._functions)

    def __iter__(self):
        return iter(self._functions.values())


# ---------------------------------------------------------------------------
# Call-site binding helpers
# ---------------------------------------------------------------------------


def callee_target_for(call: Call, callee: Procedure, var: Variable) -> Optional[Variable]:
    """Which callee entry variable models the post-call value of caller
    variable ``var``: the global itself, or the unique scalar formal
    bound to ``var``. None when the binding is ambiguous — ``var``
    passed twice, or a global that is *also* passed as an actual (an
    aliasing situation FORTRAN forbids modifying through; we refuse to
    reason about it rather than trust the program is conforming)."""
    bound_formals = [
        formal
        for formal, arg in zip(callee.formals, call.args)
        if not arg.is_array and arg.bindable_var is var and formal.is_scalar
    ]
    if var.is_global:
        if bound_formals:
            return None  # dummy/global aliasing at this very site
        return var
    if len(bound_formals) == 1:
        return bound_formals[0]
    return None


def call_site_bindings(
    call: Call, callee: Procedure, numbering: ValueNumbering
) -> Dict[Variable, Expr]:
    """Map each callee entry variable to its value expression at the
    call site, in the caller's terms: formals bind to actual-argument
    expressions, globals to their entry-use expressions."""
    bindings: Dict[Variable, Expr] = {}
    for formal, arg in zip(callee.formals, call.args):
        if formal.is_scalar and not arg.is_array:
            bindings[formal] = numbering.operand_expr(arg.value)
    for use in call.entry_uses:
        bindings[use.var] = numbering.operand_expr(use)
    return bindings


# ---------------------------------------------------------------------------
# Value-numbering call semantics (the two evaluation modes)
# ---------------------------------------------------------------------------


class _ReturnFunctionSemantics(CallSemantics):
    """Shared machinery: resolve the return jump function for a call
    effect and substitute the call-site bindings into it."""

    def __init__(self, program: Program, return_map: ReturnFunctionMap):
        self.program = program
        self.return_map = return_map

    def _evaluate(self, call: Call, target: Optional[Variable],
                  numbering: ValueNumbering) -> Optional[Expr]:
        if target is None:
            return None
        callee = self.program.procedure(call.callee)
        function = self.return_map.lookup(callee.name, target)
        if function is None:
            return None
        bindings = call_site_bindings(call, callee, numbering)
        return substitute(function.expr, bindings)

    def _resolve_and_evaluate(self, call: Call, var: Variable,
                              numbering: ValueNumbering) -> Optional[Expr]:
        callee = self.program.procedure(call.callee)
        return self._evaluate(call, callee_target_for(call, callee, var), numbering)


class GenerationCallSemantics(_ReturnFunctionSemantics):
    """Bottom-up mode: symbolic results are kept so the caller's own
    return jump functions can be composed from callee effects."""

    def modified_value(self, call: Call, var: Variable, numbering: ValueNumbering):
        return self._resolve_and_evaluate(call, var, numbering)

    def result_value(self, call: Call, numbering: ValueNumbering):
        callee = self.program.procedure(call.callee)
        return self._evaluate(call, callee.result_var, numbering)


class ForwardCallSemantics(_ReturnFunctionSemantics):
    """Top-down mode: only results that evaluate to constants survive
    (§3.2's second-evaluation rule)."""

    @staticmethod
    def _constant_only(expr: Optional[Expr]) -> Optional[Expr]:
        if isinstance(expr, ConstExpr):
            return expr
        return None

    def modified_value(self, call: Call, var: Variable, numbering: ValueNumbering):
        return self._constant_only(self._resolve_and_evaluate(call, var, numbering))

    def result_value(self, call: Call, numbering: ValueNumbering):
        callee = self.program.procedure(call.callee)
        return self._constant_only(
            self._evaluate(call, callee.result_var, numbering)
        )


# ---------------------------------------------------------------------------
# SCCP call model (lattice evaluation for the substitution pass)
# ---------------------------------------------------------------------------


class ReturnFunctionCallModel(SCCPCallModel):
    """Evaluates return jump functions over the SCCP lattice: ⊥ in any
    support position is ⊥, TOP is TOP (optimistic), otherwise the
    polynomial value."""

    def __init__(self, program: Program, return_map: ReturnFunctionMap):
        self.program = program
        self.return_map = return_map

    def _binding_operand(self, call: Call, callee: Procedure,
                         entry_var: Variable) -> Optional[Operand]:
        if entry_var.is_global:
            return call.entry_use_of(entry_var)
        position = callee.formal_position(entry_var)
        if position is None or position >= len(call.args):
            return None
        arg = call.args[position]
        return None if arg.is_array else arg.value

    def _evaluate(self, call: Call, target: Optional[Variable],
                  operand_value: Callable[[Operand], LatticeValue]) -> LatticeValue:
        if target is None:
            return BOTTOM
        callee = self.program.procedure(call.callee)
        function = self.return_map.lookup(callee.name, target)
        if function is None:
            return BOTTOM
        env: Dict[Variable, int] = {}
        saw_top = False
        for entry_var in function.support:
            operand = self._binding_operand(call, callee, entry_var)
            if operand is None:
                return BOTTOM
            value = operand_value(operand)
            if value.is_bottom:
                return BOTTOM
            if value.is_top:
                saw_top = True
            else:
                env[entry_var] = value.value
        if saw_top:
            return TOP
        result = function.polynomial.evaluate(env)
        return BOTTOM if result is None else const(result)

    def modified_value(self, call: Call, var: Variable, operand_value):
        callee = self.program.procedure(call.callee)
        return self._evaluate(
            call, callee_target_for(call, callee, var), operand_value
        )

    def result_value(self, call: Call, operand_value):
        callee = self.program.procedure(call.callee)
        return self._evaluate(call, callee.result_var, operand_value)


# ---------------------------------------------------------------------------
# Construction (phase 1 of the pipeline)
# ---------------------------------------------------------------------------


def build_return_functions(
    program: Program,
    callgraph: CallGraph,
    modref: Optional[ModRefInfo] = None,
    budget: Optional[AnalysisBudget] = None,
    resilience: Optional[ResilienceReport] = None,
    fault_isolation: bool = True,
) -> ReturnFunctionMap:
    """Generate return jump functions in one bottom-up pass (§4.1).

    With MOD information, functions are built exactly for the scalars
    each procedure may modify (plus function results); without it, for
    every scalar formal and global — an unmodified variable then gets an
    *identity* return jump function, which is the only way its value can
    survive a call under worst-case kill assumptions.

    Procedures inside recursive SCCs see no return jump functions for
    their SCC siblings (conservative: those call effects stay unknown).

    With a :class:`ResilienceReport`, a procedure whose construction
    raises (under ``fault_isolation``) or whose polynomials exceed the
    ``budget`` contributes no / fewer return jump functions instead of
    aborting: a missing entry evaluates as ⊥ at every call site, which
    is always sound.
    """
    return_map = ReturnFunctionMap()
    build_return_functions_for(
        program, callgraph.bottom_up_order(), return_map, modref,
        budget=budget, resilience=resilience,
        fault_isolation=fault_isolation,
    )
    return return_map


def build_return_functions_for(
    program: Program,
    procedures,
    return_map: ReturnFunctionMap,
    modref: Optional[ModRefInfo] = None,
    budget: Optional[AnalysisBudget] = None,
    resilience: Optional[ResilienceReport] = None,
    fault_isolation: bool = True,
) -> None:
    """Build return jump functions for ``procedures`` (in the given
    order) into ``return_map``, which must already hold the functions of
    every callee outside the given set. The engine's SCC scheduler calls
    this per component; :func:`build_return_functions` calls it once
    over the whole bottom-up order."""
    for procedure in procedures:
        if procedure.is_main:
            continue
        try:
            _build_for_procedure(
                program, procedure, return_map, modref,
                budget=budget, resilience=resilience,
                fault_isolation=fault_isolation,
            )
        except Exception as err:  # noqa: BLE001 — fault isolation boundary
            if resilience is None or not fault_isolation:
                raise
            resilience.record(
                "return_function", procedure.name, "polynomial",
                BOTTOM_KIND, f"{type(err).__name__}: {err}",
            )


def _return_targets(procedure: Procedure, modref: Optional[ModRefInfo],
                    program: Program) -> List[Variable]:
    targets: List[Variable] = []
    if modref is not None:
        targets.extend(v for v in modref.modified_formals(procedure) if v.is_scalar)
        targets.extend(v for v in modref.modified_globals(procedure.name) if v.is_scalar)
    else:
        targets.extend(v for v in procedure.formals if v.is_scalar)
        targets.extend(program.scalar_globals())
    return targets


def _build_for_procedure(
    program: Program,
    procedure: Procedure,
    return_map: ReturnFunctionMap,
    modref: Optional[ModRefInfo],
    budget: Optional[AnalysisBudget] = None,
    resilience: Optional[ResilienceReport] = None,
    fault_isolation: bool = True,
) -> None:
    numbering = ValueNumbering(
        procedure, GenerationCallSemantics(program, return_map)
    )
    returns = [
        instruction
        for instruction in procedure.cfg.instructions()
        if isinstance(instruction, Return)
    ]
    if not returns:
        return  # The procedure never returns; its effects are unobservable.

    targets = _return_targets(procedure, modref, program)
    if procedure.result_var is not None:
        targets.append(procedure.result_var)

    for target in targets:
        try:
            exprs: List[Expr] = []
            for ret in returns:
                if target is procedure.result_var:
                    exprs.append(numbering.operand_expr(ret.value))
                else:
                    use = ret.exit_use_of(target)
                    if use is None:
                        exprs = []
                        break
                    exprs.append(numbering.operand_expr(use))
            if not exprs or any(e != exprs[0] for e in exprs):
                continue  # exits disagree: no single return jump function
            polynomial = expr_to_polynomial(exprs[0])
            if polynomial is None:
                continue  # not representable (unknowns / non-polynomial ops)
            if budget is not None:
                from repro.ipcp.jump_functions import check_polynomial_budget

                check_polynomial_budget(polynomial, budget)
        except BudgetExceeded as err:
            if resilience is None:
                raise
            resilience.record(
                "return_function", f"{procedure.name} / {target.name}",
                "polynomial", BOTTOM_KIND, str(err),
            )
            continue
        except Exception as err:  # noqa: BLE001 — fault isolation boundary
            if resilience is None or not fault_isolation:
                raise
            resilience.record(
                "return_function", f"{procedure.name} / {target.name}",
                "polynomial", BOTTOM_KIND, f"{type(err).__name__}: {err}",
            )
            continue
        return_map.add(
            ReturnJumpFunction(procedure.name, target, exprs[0], polynomial)
        )
