"""Fault-isolation bookkeeping for one analysis run.

The CCKT86 framework is built around a lattice of fallbacks: a
polynomial jump function that cannot be built is not an error, it is a
*weaker jump function* (pass-through, intraprocedural, literal, and
ultimately ⊥ — which claims nothing and is always sound). The
resilience layer exploits exactly that structure: when constructing a
jump or return function raises or runs past its
:class:`~repro.config.AnalysisBudget`, the affected call site or
procedure is demoted down the lattice and the run continues; when a
worklist exhausts its fuel, the affected cells drop to ⊥.

Every such decision is recorded here as a :class:`Demotion` so the
result is auditable: an empty :class:`ResilienceReport` means the run
completed at full precision; a non-empty one lists precisely which
sites were degraded and why (``--strict`` in the CLI turns any
demotion into a failure exit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional


#: ``to_kind`` used when a component fell all the way to ⊥ / was dropped.
BOTTOM_KIND = "bottom"


@dataclass(frozen=True)
class Demotion:
    """One component that was degraded instead of aborting the run.

    ``component`` is a stable machine-readable tag (``jump_function``,
    ``return_function``, ``sccp_oracle``, ``substitution``, ``solver``,
    ``gsa_refinement``, ``dce``); ``site`` locates it (procedure name,
    call site); ``from_kind`` / ``to_kind`` bracket the lattice drop;
    ``reason`` carries the triggering exception or budget message.
    """

    component: str
    site: str
    from_kind: str
    to_kind: str
    reason: str

    def render(self) -> str:
        return (
            f"{self.component} at {self.site}: "
            f"{self.from_kind} -> {self.to_kind} ({self.reason})"
        )


class ResilienceReport:
    """All demotions of one analysis run, in occurrence order."""

    def __init__(self) -> None:
        self.demotions: List[Demotion] = []

    def record(
        self,
        component: str,
        site: str,
        from_kind: str,
        to_kind: str,
        reason: str,
    ) -> Demotion:
        demotion = Demotion(component, site, from_kind, to_kind, reason)
        self.demotions.append(demotion)
        from repro.obs import metrics, trace

        metrics.inc(f"demotions_{component}")
        if trace.ENABLED:
            trace.instant(
                "demotion", component=component, site=site,
                from_kind=from_kind, to_kind=to_kind,
            )
        return demotion

    # -- queries -----------------------------------------------------------

    @property
    def ok(self) -> bool:
        """True when the run completed at full precision."""
        return not self.demotions

    def count(self, component: Optional[str] = None) -> int:
        if component is None:
            return len(self.demotions)
        return sum(1 for d in self.demotions if d.component == component)

    def by_component(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for demotion in self.demotions:
            counts[demotion.component] = counts.get(demotion.component, 0) + 1
        return counts

    def summary(self) -> str:
        """Human-readable multi-line report (empty string when ok)."""
        if self.ok:
            return ""
        lines = [f"{len(self.demotions)} component(s) degraded:"]
        lines.extend(f"  - {d.render()}" for d in self.demotions)
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.demotions)

    def __iter__(self) -> Iterator[Demotion]:
        return iter(self.demotions)

    def __bool__(self) -> bool:
        # Truthy as a container even when empty; use ``.ok`` for content.
        return True
