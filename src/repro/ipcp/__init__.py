"""Interprocedural constant propagation — the paper's core contribution.

The pipeline (§4.1) has four stages, each a module here:

1. :mod:`repro.ipcp.return_functions` — bottom-up generation of
   polynomial return jump functions;
2. :mod:`repro.ipcp.jump_functions` — top-down generation of forward
   jump functions (literal / intraprocedural / pass-through /
   polynomial);
3. :mod:`repro.ipcp.solver` — iterative propagation of VAL sets around
   the call graph on the Figure 1 lattice;
4. :mod:`repro.ipcp.substitution` — recording: substitute discovered
   constants and count substituted source references.

:mod:`repro.ipcp.driver` wires the stages together behind one call;
:mod:`repro.ipcp.complete` adds the propagate/DCE iteration, and
:mod:`repro.ipcp.cloning` the procedure-cloning extension.
"""

from repro.ipcp.binding_graph import BindingMultiGraph, propagate_binding_graph
from repro.ipcp.cloning import CloningReport, clone_for_constants
from repro.ipcp.constants import ConstantsResult
from repro.ipcp.driver import AnalysisResult, analyze_program, analyze_source
from repro.ipcp.jump_functions import ForwardJumpFunction, JumpFunctionTable, build_forward_jump_functions
from repro.ipcp.return_functions import ReturnFunctionMap, ReturnJumpFunction, build_return_functions
from repro.ipcp.inlining import IntegrationReport, integrate_and_propagate
from repro.ipcp.solver import PropagationResult, propagate
from repro.ipcp.stats import AnalysisStatistics, collect_statistics
from repro.ipcp.substitution import SubstitutionReport, measure_substitution

__all__ = [
    "AnalysisResult",
    "AnalysisStatistics",
    "BindingMultiGraph",
    "CloningReport",
    "IntegrationReport",
    "ConstantsResult",
    "ForwardJumpFunction",
    "JumpFunctionTable",
    "PropagationResult",
    "ReturnFunctionMap",
    "ReturnJumpFunction",
    "SubstitutionReport",
    "analyze_program",
    "analyze_source",
    "clone_for_constants",
    "collect_statistics",
    "integrate_and_propagate",
    "propagate_binding_graph",
    "build_forward_jump_functions",
    "build_return_functions",
    "measure_substitution",
    "propagate",
]
