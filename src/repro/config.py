"""Analysis configuration: which jump functions to use and which
supporting information to incorporate.

One :class:`AnalysisConfig` value corresponds to one column of the
study's Tables 2 and 3; the named constructors build the exact
configurations those tables compare.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace


class JumpFunctionKind(enum.Enum):
    """The four forward jump function implementations (§3.1), in
    increasing order of construction complexity and power. Constants
    found by one kind are a subset of those found by later kinds."""

    LITERAL = "literal"
    INTRAPROCEDURAL = "intraprocedural"
    PASS_THROUGH = "pass_through"
    POLYNOMIAL = "polynomial"

    @property
    def order(self) -> int:
        return _KIND_ORDER[self]


_KIND_ORDER = {
    JumpFunctionKind.LITERAL: 0,
    JumpFunctionKind.INTRAPROCEDURAL: 1,
    JumpFunctionKind.PASS_THROUGH: 2,
    JumpFunctionKind.POLYNOMIAL: 3,
}


@dataclass(frozen=True)
class AnalysisConfig:
    """Knobs for one interprocedural constant propagation run.

    - ``jump_function``: forward jump function implementation;
    - ``use_return_functions``: build and apply polynomial return jump
      functions (§3.2);
    - ``use_mod``: compute MOD summaries and use them to limit call-site
      kills; when False every call is assumed to clobber every global
      and every bindable actual (Table 3, column 1);
    - ``complete``: iterate propagation with dead-code elimination until
      no further dead code appears (Table 3, column 3);
    - ``interprocedural``: when False, skip propagation entirely and
      measure a purely intraprocedural run (Table 3, column 4);
    - ``gcp_oracle``: how the ``gcp(y, s)`` constant oracle of §3.1 is
      computed — ``"value_numbering"`` (the paper's implementation) or
      ``"sccp"`` (branch-sensitive conditional propagation, which can
      prove more call-site operands constant by pruning dead arms).
    """

    jump_function: JumpFunctionKind = JumpFunctionKind.POLYNOMIAL
    use_return_functions: bool = True
    use_mod: bool = True
    complete: bool = False
    interprocedural: bool = True
    gcp_oracle: str = "value_numbering"
    #: GSA-style refinement (§4.2's closing remark): after a first
    #: propagation, regenerate jump functions with branch-sensitive
    #: oracles seeded by CONSTANTS and exclude never-executed call
    #: sites, then re-propagate — achieving complete-propagation
    #: results without any dead-code elimination.
    gsa_refinement: bool = False

    # -- the named configurations of the paper's tables ----------------

    @classmethod
    def table2(cls, kind: JumpFunctionKind, returns: bool = True) -> "AnalysisConfig":
        """A Table 2 column: forward kind x return-function toggle."""
        return cls(jump_function=kind, use_return_functions=returns)

    @classmethod
    def polynomial_without_mod(cls) -> "AnalysisConfig":
        return cls(use_mod=False)

    @classmethod
    def polynomial_with_mod(cls) -> "AnalysisConfig":
        return cls()

    @classmethod
    def complete_propagation(cls) -> "AnalysisConfig":
        return cls(complete=True)

    @classmethod
    def intraprocedural_only(cls) -> "AnalysisConfig":
        return cls(interprocedural=False)

    def with_kind(self, kind: JumpFunctionKind) -> "AnalysisConfig":
        return replace(self, jump_function=kind)

    def describe(self) -> str:
        """Short human-readable description for reports."""
        if not self.interprocedural:
            return "intraprocedural propagation (with MOD)"
        parts = [self.jump_function.value]
        parts.append("ret" if self.use_return_functions else "noret")
        parts.append("mod" if self.use_mod else "nomod")
        if self.complete:
            parts.append("complete")
        if self.gsa_refinement:
            parts.append("gsa")
        return "+".join(parts)
