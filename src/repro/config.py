"""Analysis configuration: which jump functions to use and which
supporting information to incorporate.

One :class:`AnalysisConfig` value corresponds to one column of the
study's Tables 2 and 3; the named constructors build the exact
configurations those tables compare.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional


class JumpFunctionKind(enum.Enum):
    """The four forward jump function implementations (§3.1), in
    increasing order of construction complexity and power. Constants
    found by one kind are a subset of those found by later kinds."""

    LITERAL = "literal"
    INTRAPROCEDURAL = "intraprocedural"
    PASS_THROUGH = "pass_through"
    POLYNOMIAL = "polynomial"

    @property
    def order(self) -> int:
        return _KIND_ORDER[self]


_KIND_ORDER = {
    JumpFunctionKind.LITERAL: 0,
    JumpFunctionKind.INTRAPROCEDURAL: 1,
    JumpFunctionKind.PASS_THROUGH: 2,
    JumpFunctionKind.POLYNOMIAL: 3,
}


class BudgetExceeded(Exception):
    """An analysis component ran past its configured fuel.

    Raised internally by budgeted loops (SCCP, jump-function size
    checks); the resilience layer catches it and demotes the affected
    component down the jump-function lattice instead of aborting — the
    exception only escapes to callers who run with fault isolation
    disabled and no demotion path.
    """

    def __init__(self, stage: str, limit: int, detail: str = ""):
        self.stage = stage
        self.limit = limit
        self.detail = detail
        suffix = f" ({detail})" if detail else ""
        super().__init__(f"{stage} exceeded its budget of {limit}{suffix}")


@dataclass(frozen=True)
class AnalysisBudget:
    """Fuel limits for every unbounded-ish loop in the pipeline.

    ``None`` means unlimited (the default — every loop in the system is
    structurally terminating, so limits exist to bound *time*, not to
    guarantee termination). When a limit is hit the affected component
    is demoted deterministically (recorded in the run's
    :class:`~repro.ipcp.resilience.ResilienceReport`) rather than
    raising out of the pipeline:

    - ``solver_visits``: interprocedural worklist procedure visits;
      on exhaustion every non-main VAL cell drops to ⊥ (sound — ⊥
      claims nothing);
    - ``sccp_visits``: per-procedure SCCP instruction evaluations; an
      exhausted SCCP oracle run is discarded (value numbering remains);
    - ``polynomial_terms`` / ``polynomial_degree``: size cap on any
      polynomial jump or return function; an oversized function is
      demoted to the next weaker jump-function kind;
    - ``gsa_rounds``: GSA-style refinement rounds (§4.2);
    - ``dce_rounds``: propagate/DCE alternations under complete
      propagation.
    """

    solver_visits: Optional[int] = None
    sccp_visits: Optional[int] = None
    polynomial_terms: Optional[int] = None
    polynomial_degree: Optional[int] = None
    gsa_rounds: int = 4
    dce_rounds: int = 10

    @classmethod
    def tight(cls) -> "AnalysisBudget":
        """A deliberately small budget for stress/degradation testing."""
        return cls(
            solver_visits=16,
            sccp_visits=256,
            polynomial_terms=1,
            polynomial_degree=1,
            gsa_rounds=1,
            dce_rounds=1,
        )


@dataclass(frozen=True)
class AnalysisConfig:
    """Knobs for one interprocedural constant propagation run.

    - ``jump_function``: forward jump function implementation;
    - ``use_return_functions``: build and apply polynomial return jump
      functions (§3.2);
    - ``use_mod``: compute MOD summaries and use them to limit call-site
      kills; when False every call is assumed to clobber every global
      and every bindable actual (Table 3, column 1);
    - ``complete``: iterate propagation with dead-code elimination until
      no further dead code appears (Table 3, column 3);
    - ``interprocedural``: when False, skip propagation entirely and
      measure a purely intraprocedural run (Table 3, column 4);
    - ``gcp_oracle``: how the ``gcp(y, s)`` constant oracle of §3.1 is
      computed — ``"value_numbering"`` (the paper's implementation) or
      ``"sccp"`` (branch-sensitive conditional propagation, which can
      prove more call-site operands constant by pruning dead arms).
    """

    jump_function: JumpFunctionKind = JumpFunctionKind.POLYNOMIAL
    use_return_functions: bool = True
    use_mod: bool = True
    complete: bool = False
    interprocedural: bool = True
    gcp_oracle: str = "value_numbering"
    #: Worklist discipline of the interprocedural solver: ``"fifo"``,
    #: ``"lifo"``, or ``"priority"`` (reverse-postorder rank — an
    #: SCC-level topological wavefront). The fixpoint is identical for
    #: every strategy; only the amount of work differs.
    solver_strategy: str = "fifo"
    #: GSA-style refinement (§4.2's closing remark): after a first
    #: propagation, regenerate jump functions with branch-sensitive
    #: oracles seeded by CONSTANTS and exclude never-executed call
    #: sites, then re-propagate — achieving complete-propagation
    #: results without any dead-code elimination.
    gsa_refinement: bool = False
    #: Fuel limits for the pipeline's loops; defaults are unlimited
    #: except the refinement/DCE round caps, which keep their historic
    #: values.
    budget: AnalysisBudget = AnalysisBudget()
    #: Contain per-call-site/per-procedure faults during jump- and
    #: return-function construction by demoting the affected site down
    #: the :class:`JumpFunctionKind` lattice (recorded in the run's
    #: ResilienceReport) instead of aborting the whole analysis. Turn
    #: off to let construction exceptions propagate (debugging).
    fault_isolation: bool = True
    #: Run the structural IR/SSA verifier between pipeline stages and
    #: after DCE rounds; a corrupt program raises
    #: :class:`repro.ir.verify.VerificationError` at the stage that
    #: caused it. Off by default (it is a debugging/hardening tool).
    verify_ir: bool = False

    # -- the named configurations of the paper's tables ----------------

    @classmethod
    def table2(cls, kind: JumpFunctionKind, returns: bool = True) -> "AnalysisConfig":
        """A Table 2 column: forward kind x return-function toggle."""
        return cls(jump_function=kind, use_return_functions=returns)

    @classmethod
    def polynomial_without_mod(cls) -> "AnalysisConfig":
        return cls(use_mod=False)

    @classmethod
    def polynomial_with_mod(cls) -> "AnalysisConfig":
        return cls()

    @classmethod
    def complete_propagation(cls) -> "AnalysisConfig":
        return cls(complete=True)

    @classmethod
    def intraprocedural_only(cls) -> "AnalysisConfig":
        return cls(interprocedural=False)

    def with_kind(self, kind: JumpFunctionKind) -> "AnalysisConfig":
        return replace(self, jump_function=kind)

    def describe(self) -> str:
        """Short human-readable description for reports."""
        if not self.interprocedural:
            return "intraprocedural propagation (with MOD)"
        parts = [self.jump_function.value]
        parts.append("ret" if self.use_return_functions else "noret")
        parts.append("mod" if self.use_mod else "nomod")
        if self.complete:
            parts.append("complete")
        if self.gsa_refinement:
            parts.append("gsa")
        return "+".join(parts)
