"""Deterministic fault injection for the robustness test matrix.

A long-lived analysis service cannot treat worker crashes, torn cache
entries, or slow requests as exceptional — they are steady-state
events, and every degradation path the system promises ("rebuild the
pool once, then fall back to serial"; "a corrupt cache entry is a
miss") must be *exercised*, not trusted. This module is the switchboard
that makes those events reproducible: production code calls cheap,
named injection points, and a test (or an operator running a chaos
drill) arms specific faults at specific occurrences.

A **fault spec** is ``point:key=value,key=value,...``. The point names
what breaks; the parameters say where and when:

- ``kill-worker`` — SIGKILL the current *pool worker* process (never
  the host process) at an engine task (``level=N``, ``stage=ret|fwd|
  sub``) or a batch file task (``stage=batch``);
- ``truncate-cache`` / ``corrupt-cache`` — tear or bit-rot a cache
  entry as it is written (detected later by the checksum layer);
- ``fail-write`` — the cache write raises ``OSError`` (full disk);
- ``delay-request`` — sleep ``ms=M`` inside the daemon's request
  lifecycle (``op=analyze`` etc.) — how deadline expiry is tested;
- ``delay-file`` — sleep ``ms=M`` per batch/serve file analysis — how
  drain-under-load and signal handling are tested;
- ``corrupt-arena`` — bit-rot a shared-memory arena record as it is
  appended (``namespace=ret|fwd|sub``); the reader's crc check must
  quarantine the arena and fall back to the pickle path;
- ``unlink-arena`` — remove the arena segment at attach time, the
  "operator deleted /dev/shm files" drill; attaches fail cleanly and
  the run falls back to the pickle path, never to a failed analysis.

Triggering is deterministic:

- **match parameters** (``level``, ``stage``, ``op``, ``path``,
  ``namespace``) restrict the spec to call sites whose context carries
  equal values; a context that lacks the key never matches;
- ``nth=K`` fires on exactly the Kth match (per process — each pool
  worker counts its own matches);
- ``flag=PATH`` fires only while the file at PATH exists and consumes
  it atomically (``os.unlink``), giving *fire-once-globally* semantics
  across a pool of worker processes: exactly one worker wins the
  unlink, every retry after it sees the fault disarmed.

Activation: :func:`install` (used by ``--inject-fault``) or the
``REPRO_FAULTS`` environment variable (specs joined with ``;``), which
spawn-context pool workers re-read on import so injection crosses
process boundaries either way. With no plan armed, every injection
point is a single ``None`` check.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Environment variable carrying the armed plan across processes.
ENV_VAR = "REPRO_FAULTS"

#: Spec parameters that must equal the call-site context to match.
MATCH_KEYS = ("level", "stage", "op", "path", "namespace")

#: Known injection points (parse-time typo guard).
POINTS = (
    "kill-worker",
    "truncate-cache",
    "corrupt-cache",
    "fail-write",
    "delay-request",
    "delay-file",
    "corrupt-arena",
    "unlink-arena",
)


class FaultSpecError(ValueError):
    """A fault spec string that does not parse."""


@dataclass
class FaultSpec:
    """One armed fault: an injection point plus trigger parameters."""

    point: str
    params: Dict[str, str] = field(default_factory=dict)
    #: Matches seen so far (``nth`` counts against this).
    hits: int = 0
    #: Times this spec actually fired.
    fired: int = 0

    def describe(self) -> str:
        if not self.params:
            return self.point
        rendered = ",".join(
            f"{key}={self.params[key]}" for key in sorted(self.params)
        )
        return f"{self.point}:{rendered}"

    def matches(self, context: Dict[str, object]) -> bool:
        for key in MATCH_KEYS:
            wanted = self.params.get(key)
            if wanted is None:
                continue
            if key not in context or str(context[key]) != wanted:
                return False
        return True


def parse_spec(text: str) -> FaultSpec:
    """Parse one ``point:key=value,...`` spec string."""
    text = text.strip()
    if not text:
        raise FaultSpecError("empty fault spec")
    point, _, rest = text.partition(":")
    point = point.strip()
    if point not in POINTS:
        raise FaultSpecError(
            f"unknown fault point {point!r} (known: {', '.join(POINTS)})"
        )
    params: Dict[str, str] = {}
    if rest.strip():
        for item in rest.split(","):
            key, separator, value = item.partition("=")
            if not separator or not key.strip():
                raise FaultSpecError(
                    f"malformed fault parameter {item!r} in {text!r}"
                )
            params[key.strip()] = value.strip()
    for key in ("nth", "ms"):
        if key in params:
            try:
                int(params[key])
            except ValueError:
                raise FaultSpecError(
                    f"fault parameter {key}={params[key]!r} is not an integer"
                ) from None
    return FaultSpec(point=point, params=params)


def parse_plan(text: str) -> List[FaultSpec]:
    """Parse a ``;``-separated plan string (blank segments skipped)."""
    specs = []
    for segment in text.split(";"):
        if segment.strip():
            specs.append(parse_spec(segment))
    return specs


class FaultPlan:
    """All armed specs of one process, with deterministic triggering."""

    def __init__(self, specs: List[FaultSpec]):
        self.specs = specs
        self._lock = threading.Lock()

    def describe(self) -> List[str]:
        return [spec.describe() for spec in self.specs]

    def fire(self, point: str, **context) -> Optional[FaultSpec]:
        """The first armed spec for ``point`` that matches ``context``
        and whose trigger condition holds, or None. Firing is recorded
        on the spec and in the metrics registry
        (``faults_fired_<point>``)."""
        for spec in self.specs:
            if spec.point != point or not spec.matches(context):
                continue
            with self._lock:
                spec.hits += 1
                hits = spec.hits
            nth = spec.params.get("nth")
            if nth is not None and hits != int(nth):
                continue
            flag = spec.params.get("flag")
            if flag is not None and not _consume_flag(flag):
                continue
            with self._lock:
                spec.fired += 1
            _note_fired(point)
            return spec
        return None


def _consume_flag(path: str) -> bool:
    """Atomically consume the flag file; only one process wins."""
    try:
        os.unlink(path)
    except OSError:
        return False
    return True


def _note_fired(point: str) -> None:
    from repro.obs import metrics, trace

    metrics.inc("faults_fired")
    metrics.inc(f"faults_fired_{point.replace('-', '_')}")
    if trace.ENABLED:
        trace.instant("fault.fired", point=point)


def _plan_from_env() -> Optional[FaultPlan]:
    text = os.environ.get(ENV_VAR)
    if not text:
        return None
    try:
        specs = parse_plan(text)
    except FaultSpecError:
        # A malformed env plan must never take down an analysis that
        # did not opt into faults; it is simply not armed.
        return None
    return FaultPlan(specs) if specs else None


#: The process's armed plan (None = everything disabled). Initialized
#: from the environment at import so spawn-context pool workers arm
#: themselves; fork children simply inherit the parent's object.
_PLAN: Optional[FaultPlan] = _plan_from_env()

#: PID of the process that armed the plan — ``kill-worker`` refuses to
#: kill it (only *pool workers* die, never the host/parent process).
_HOST_PID: int = os.getpid()


def install(specs, export_env: bool = True) -> FaultPlan:
    """Arm a plan in this process (and, via the environment, in any
    worker process started afterwards). ``specs`` is a plan string or
    an iterable of spec strings/:class:`FaultSpec` objects."""
    global _PLAN, _HOST_PID
    if isinstance(specs, str):
        parsed = parse_plan(specs)
    else:
        parsed = [
            spec if isinstance(spec, FaultSpec) else parse_spec(spec)
            for spec in specs
        ]
    _PLAN = FaultPlan(parsed) if parsed else None
    _HOST_PID = os.getpid()
    if export_env:
        if _PLAN is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = ";".join(_PLAN.describe())
    return _PLAN if _PLAN is not None else FaultPlan([])


def clear() -> None:
    """Disarm everything (tests call this between cases)."""
    global _PLAN
    _PLAN = None
    os.environ.pop(ENV_VAR, None)


def active() -> Optional[FaultPlan]:
    return _PLAN


def fire(point: str, **context) -> Optional[FaultSpec]:
    """Hot-path injection check: one ``is None`` test when disarmed."""
    if _PLAN is None:
        return None
    return _PLAN.fire(point, **context)


def delay(point: str, **context) -> float:
    """Sleep ``ms`` at a delay point; returns the seconds slept."""
    spec = fire(point, **context)
    if spec is None:
        return 0.0
    seconds = int(spec.params.get("ms", "0")) / 1000.0
    if seconds > 0:
        time.sleep(seconds)
    return seconds


def maybe_kill_worker(**context) -> None:
    """``kill-worker`` point: SIGKILL the current process — but only
    when it is a *pool worker* (its pid differs from the host process
    that armed the plan). The host process never self-destructs, so an
    inline/thread-executor run ignores the fault instead of taking the
    daemon down."""
    if _PLAN is None:
        return
    spec = _PLAN.fire("kill-worker", **context)
    if spec is None:
        return
    if os.getpid() == _HOST_PID:
        return
    import signal

    os.kill(os.getpid(), signal.SIGKILL)
