"""SCC condensation levels: the engine's unit of parallelism.

Return-jump-function generation is a bottom-up walk in which each
procedure consults the summaries of its (direct) callees. Partitioning
the condensation into *levels* — level 0 holds the SCCs with no
external callees, level k+1 the SCCs all of whose external callees sit
at levels ≤ k — makes every SCC within one level independent of every
other (two same-level SCCs cannot call each other, or their levels
would differ), so a level's components can be generated concurrently
and the results merged in the serial (Tarjan) order. The whole-SCC
granularity is deliberate: members of one component *do* see each
other's partial summaries during generation, so a component is never
split across workers.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.callgraph.callgraph import CallGraph
from repro.ir.module import Procedure


def condensation_levels(callgraph: CallGraph) -> List[List[List[Procedure]]]:
    """Bottom-up levels of the SCC condensation.

    Returns ``levels[k] = [scc, ...]`` where each SCC is the member list
    exactly as :meth:`CallGraph.sccs` produced it; concatenating the
    levels in order (and the SCCs within each level in their given
    order) reproduces the full bottom-up order, so a merge that walks
    this structure observes summaries in the serial pipeline's order.
    """
    components = callgraph.sccs()  # reverse topological: callees first
    component_of: Dict[Procedure, int] = {}
    for index, component in enumerate(components):
        for member in component:
            component_of[member] = index

    level_of: List[int] = []
    for index, component in enumerate(components):
        callee_levels = [
            level_of[component_of[callee]]
            for member in component
            for callee in callgraph.callees(member)
            if component_of[callee] != index
        ]
        level_of.append(max(callee_levels) + 1 if callee_levels else 0)

    depth = max(level_of) + 1 if level_of else 0
    levels: List[List[List[Procedure]]] = [[] for _ in range(depth)]
    for index, component in enumerate(components):
        levels[level_of[index]].append(component)
    return levels


def partition(
    items: List, chunks: int, max_chunk: Optional[int] = None
) -> List[List]:
    """Split ``items`` into at most ``chunks`` contiguous, order-
    preserving, near-equal slices (no empty slices).

    ``max_chunk`` caps the slice size by raising the slice count — the
    arena-mode scheduler uses it to cut waves finer than one-per-worker
    (task messages are near-constant-size there, so extra tasks cost
    almost nothing and stragglers stop serializing a wave). Without the
    arena each extra task re-ships the full summary payload, so the
    engine leaves it unset on the pickle path.
    """
    if not items:
        return []
    if max_chunk is not None and max_chunk >= 1:
        chunks = max(chunks, -(-len(items) // max_chunk))
    chunks = max(1, min(chunks, len(items)))
    size, remainder = divmod(len(items), chunks)
    result = []
    start = 0
    for index in range(chunks):
        end = start + size + (1 if index < remainder else 0)
        result.append(items[start:end])
        start = end
    return result
