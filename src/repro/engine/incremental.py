"""Incremental re-analysis: dirty-set computation over Merkle manifests.

The summary cache (:mod:`repro.engine.cache`) already *implements*
incrementality — a procedure's Merkle key changes exactly when the
procedure was edited or one of its (transitive) callees was, so a warm
run recomputes precisely the invalidated summaries and splices cached
payloads for everything else. What the cache cannot do by itself is
*tell you* what happened: which procedures were dirty, why, and whether
the engine really did confine recomputation to that set.

This module adds that accounting. A **manifest** is a per-(path,
config) snapshot of the :func:`repro.engine.fingerprint.summary_index`
— one ``{digest, key}`` pair per procedure — stored in the cache under
the ``man`` namespace after every engine run. Diffing the previous
manifest against the current index classifies every procedure:

- **edited** — its own post-SSA IR digest changed (the procedure body,
  its interface, or its call sites' MOD/REF annotations differ);
- **downstream** — digest unchanged but Merkle key changed: some
  transitive *callee* was edited, so this procedure's summaries may
  evaluate differently. (Keys fold callee keys into callers, so "key
  changed, digest same" is exactly "transitive caller of an edit".)
- **added** / **removed** — present on only one side;
- **clean** — digest and key both unchanged: every summary is served
  from the cache.

The dirty set (edited + downstream + added) is what the engine's
``ret``/``fwd`` stages recompute on a warm run; the
:class:`InvalidationReport` renders it (CLI ``--explain-invalidation``)
and the tests assert the engine's recomputed-procedure counters match
it exactly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.engine.fingerprint import _sha, config_fingerprint

#: Cache namespace holding one manifest per (path, config fingerprint).
MANIFEST_NAMESPACE = "man"


def manifest_key(path: str, config) -> str:
    """Cache key of the manifest for ``path`` under ``config``.

    Keyed by *path* (absolutized, so relative and absolute spellings of
    one file share a history), not content — the manifest's job is to
    remember what the previous run of this file looked like, whatever
    it was.
    """
    return _sha(
        ["manifest", os.path.abspath(path), config_fingerprint(config)]
    )


def build_manifest(index: Dict[str, Dict[str, str]]) -> dict:
    """The JSON-able manifest payload for one run's summary index."""
    return {"procedures": index}


@dataclass
class InvalidationReport:
    """What an incremental run recomputed, and why.

    ``reasons`` maps each dirty procedure to a human-readable cause;
    ``dirty`` is edited + downstream + added, in program order.
    """

    path: str
    edited: List[str] = field(default_factory=list)
    downstream: List[str] = field(default_factory=list)
    added: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)
    clean: List[str] = field(default_factory=list)
    reasons: Dict[str, str] = field(default_factory=dict)
    #: True when there was no previous manifest to diff against — every
    #: procedure is "dirty" but calling the run incremental would be
    #: misleading, so renderers say "cold" instead.
    cold: bool = False
    #: True when the whole run was replayed from the run-level cache
    #: (unchanged source): nothing was recomputed at all.
    replayed: bool = False

    @property
    def dirty(self) -> List[str]:
        return self.edited + self.downstream + self.added

    @property
    def total(self) -> int:
        return len(self.dirty) + len(self.clean)

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "cold": self.cold,
            "replayed": self.replayed,
            "edited": list(self.edited),
            "downstream": list(self.downstream),
            "added": list(self.added),
            "removed": list(self.removed),
            "clean_count": len(self.clean),
            "dirty_count": len(self.dirty),
            "reasons": dict(self.reasons),
        }

    def format(self) -> str:
        return format_invalidation(self.to_dict())


def format_invalidation(payload: dict) -> str:
    """Render a report — or its :meth:`~InvalidationReport.to_dict`
    payload, which is all that survives a pool worker's trip — as the
    ``--explain-invalidation`` text."""
    path = payload["path"]
    if payload.get("replayed"):
        return (
            f"{path}: unchanged — replayed from the run cache "
            f"(0 procedures recomputed)"
        )
    total = payload["dirty_count"] + payload["clean_count"]
    if payload.get("cold"):
        return (
            f"{path}: no previous manifest — cold run, all "
            f"{total} procedure(s) computed"
        )
    reasons = payload["reasons"]
    lines = [
        f"{path}: {payload['dirty_count']}/{total} procedure(s) "
        f"dirty, {payload['clean_count']} served from cache"
    ]
    for name in payload["edited"]:
        lines.append(f"  edited      {name}: {reasons[name]}")
    for name in payload["downstream"]:
        lines.append(f"  downstream  {name}: {reasons[name]}")
    for name in payload["added"]:
        lines.append(f"  added       {name}: {reasons[name]}")
    for name in payload["removed"]:
        lines.append(f"  removed     {name}")
    return "\n".join(lines)


def diff_manifest(
    path: str,
    old: Optional[dict],
    index: Dict[str, Dict[str, str]],
    callgraph,
) -> InvalidationReport:
    """Classify every procedure of the current program against ``old``.

    ``index`` is the current :func:`~repro.engine.fingerprint.
    summary_index`; ``callgraph`` (the current program's) supplies the
    callee lists the *why* strings point at. ``old`` is the previous
    manifest payload, or None for a cold run.
    """
    report = InvalidationReport(path=path)
    if old is None or "procedures" not in old:
        report.cold = True
        report.added = list(index)
        for name in index:
            report.reasons[name] = "no previous run"
        return report

    previous: Dict[str, Dict[str, str]] = old["procedures"]
    dirty_keys = {
        name
        for name, entry in index.items()
        if previous.get(name, {}).get("key") != entry["key"]
    }
    by_name = {procedure.name: procedure for procedure in callgraph.nodes()}
    for name, entry in index.items():
        before = previous.get(name)
        if before is None:
            report.added.append(name)
            report.reasons[name] = "procedure is new"
        elif before["digest"] != entry["digest"]:
            report.edited.append(name)
            report.reasons[name] = "post-SSA IR changed"
        elif before["key"] != entry["key"]:
            report.downstream.append(name)
            culprits = sorted(
                callee.name
                for callee in callgraph.callees(by_name[name])
                if callee.name in dirty_keys
            )
            report.reasons[name] = (
                f"calls dirty procedure(s): {', '.join(culprits)}"
                if culprits
                else "a transitive callee changed"
            )
        else:
            report.clean.append(name)
    report.removed = sorted(set(previous) - set(index))
    return report
