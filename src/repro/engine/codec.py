"""Compact binary codec for summary payloads.

The shared-memory arena (:mod:`repro.engine.arena`) exchanges summary
payloads between processes as raw bytes in a memory-mapped segment, so
the JSON-able payload dicts that :mod:`repro.engine.summaries` produces
need a byte encoding that is

- **self-contained** — no schema negotiation: every value carries a tag
  byte, so a decoder never guesses;
- **exact** — ``decode(encode(x)) == x`` including the ``bool`` /
  ``int`` distinction and arbitrary-precision integers (polynomial
  coefficients are unbounded), so arena-served summaries merge
  byte-identically to pickle-served ones;
- **compact** — integers are zigzag varints, strings are length-
  prefixed UTF-8; a typical return-function record is smaller than its
  JSON rendering;
- **versioned** — :data:`CODEC_VERSION` is stamped into every arena
  segment header; an attach against a different codec version is
  refused and the engine falls back to the pickle path, so two code
  versions sharing a host can never misread each other's records.

The value domain is the JSON data model (None, bool, int, float, str,
list, dict-with-str-keys) — exactly what the summary codecs emit.
Anything else is a :class:`CodecError` at encode time, never silent
truncation.
"""

from __future__ import annotations

import struct
from typing import List

#: Bumped whenever the wire format below changes shape. Stamped into
#: arena headers; a mismatch refuses the attach (pickle fallback).
CODEC_VERSION = 1

_TAG_NONE = 0x00
_TAG_FALSE = 0x01
_TAG_TRUE = 0x02
_TAG_INT = 0x03
_TAG_FLOAT = 0x04
_TAG_STR = 0x05
_TAG_LIST = 0x06
_TAG_DICT = 0x07

_FLOAT = struct.Struct("<d")


class CodecError(ValueError):
    """A value outside the codec's domain, or malformed bytes."""


def _write_uvarint(out: List[bytes], value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(bytes((byte | 0x80,)))
        else:
            out.append(bytes((byte,)))
            return


def _encode_into(value, out: List[bytes]) -> None:
    kind = type(value)
    if kind is str:
        data = value.encode("utf-8")
        out.append(bytes((_TAG_STR,)))
        _write_uvarint(out, len(data))
        out.append(data)
    elif kind is int:
        out.append(bytes((_TAG_INT,)))
        # Zigzag so small negatives stay one byte; arbitrary precision
        # (polynomial coefficients are unbounded).
        _write_uvarint(
            out, ((-value) << 1) - 1 if value < 0 else value << 1
        )
    elif kind is list:
        out.append(bytes((_TAG_LIST,)))
        _write_uvarint(out, len(value))
        for item in value:
            _encode_into(item, out)
    elif kind is dict:
        out.append(bytes((_TAG_DICT,)))
        _write_uvarint(out, len(value))
        for key, item in value.items():
            if type(key) is not str:
                raise CodecError(
                    f"dict key {key!r} is not a string"
                )
            data = key.encode("utf-8")
            _write_uvarint(out, len(data))
            out.append(data)
            _encode_into(item, out)
    elif value is None:
        out.append(bytes((_TAG_NONE,)))
    elif kind is bool:
        out.append(bytes((_TAG_TRUE if value else _TAG_FALSE,)))
    elif kind is float:
        out.append(bytes((_TAG_FLOAT,)))
        out.append(_FLOAT.pack(value))
    elif kind is tuple:
        # Summary payloads are built from JSON round-trips and never
        # contain tuples, but an encoder that silently listified them
        # would break decode(encode(x)) == x; refuse instead.
        raise CodecError("tuples are not encodable (use lists)")
    else:
        raise CodecError(f"value of type {kind.__name__} is not encodable")


def encode_value(value) -> bytes:
    """Encode one JSON-model value to bytes."""
    out: List[bytes] = []
    _encode_into(value, out)
    return b"".join(out)


def _read_uvarint(data: bytes, index: int):
    result = 0
    shift = 0
    while True:
        try:
            byte = data[index]
        except IndexError:
            raise CodecError("truncated varint") from None
        index += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, index
        shift += 7
        if shift > 128 * 7:
            raise CodecError("varint too long")


def _decode_at(data: bytes, index: int):
    try:
        tag = data[index]
    except IndexError:
        raise CodecError("truncated value") from None
    index += 1
    if tag == _TAG_STR:
        length, index = _read_uvarint(data, index)
        end = index + length
        if end > len(data):
            raise CodecError("truncated string")
        return data[index:end].decode("utf-8"), end
    if tag == _TAG_INT:
        raw, index = _read_uvarint(data, index)
        return (-(raw + 1) >> 1) if raw & 1 else raw >> 1, index
    if tag == _TAG_LIST:
        count, index = _read_uvarint(data, index)
        items = []
        append = items.append
        for _ in range(count):
            item, index = _decode_at(data, index)
            append(item)
        return items, index
    if tag == _TAG_DICT:
        count, index = _read_uvarint(data, index)
        result = {}
        for _ in range(count):
            length, index = _read_uvarint(data, index)
            end = index + length
            if end > len(data):
                raise CodecError("truncated dict key")
            key = data[index:end].decode("utf-8")
            value, index = _decode_at(data, end)
            result[key] = value
        return result, index
    if tag == _TAG_NONE:
        return None, index
    if tag == _TAG_TRUE:
        return True, index
    if tag == _TAG_FALSE:
        return False, index
    if tag == _TAG_FLOAT:
        end = index + 8
        if end > len(data):
            raise CodecError("truncated float")
        return _FLOAT.unpack_from(data, index)[0], end
    raise CodecError(f"unknown value tag 0x{tag:02x}")


def decode_value(data: bytes):
    """Decode bytes produced by :func:`encode_value`. Trailing garbage
    is an error — a record is exactly one value."""
    value, index = _decode_at(bytes(data), 0)
    if index != len(data):
        raise CodecError(
            f"{len(data) - index} trailing byte(s) after value"
        )
    return value
