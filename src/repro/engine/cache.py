"""Persistent on-disk summary cache.

Layout: ``<root>/v<ENGINE_CACHE_VERSION>/<namespace>/<k[:2]>/<k>.json``
— one JSON file per entry, written atomically (temp file + rename), so
concurrent readers/writers (parallel workers, simultaneous CLI runs)
can never observe a torn entry. A version bump simply orphans the old
``v<N>`` directory.

Entries are **checksummed**: the stored object is a wrapper
``{"sha256": <digest of canonical body JSON>, "body": <payload>}``,
verified on every read. The atomic-rename protocol already rules out
*torn* entries, but a long-lived daemon also has to survive what rename
cannot prevent — bit rot, a concurrent writer with a different code
version, an operator editing cache files, or a filesystem that lied
about durability. Any entry that fails to parse, lacks the wrapper
shape, or whose body hashes differently is **quarantined**: counted as
a miss, renamed to ``<entry>.corrupt`` (so the bad bytes are kept for
forensics but never consulted again), and surfaced through the
``cache_quarantined`` metric. Warm reuse is only sound if stale or
corrupt state is detected and evicted; a quarantined entry is simply
recomputed.

Namespaces in use: ``ret`` (return jump functions per procedure),
``fwd`` (forward jump functions per procedure), ``sub`` (substitution
measurements per procedure), ``run`` (whole-run outcomes keyed on
source digest + config fingerprint — the ``repro analyze`` fast path),
``man`` (incremental manifests).

This is the *cross-run* summary tier. Within one run, workers exchange
the same Merkle-keyed summaries through the shared-memory arena
(:mod:`repro.engine.arena`) instead — RAM-speed, zero pickling — and
only the parent persists them here. Handles may be shared across the
batch driver's (no longer serialized) threads, so the stats counters
are lock-protected; the entry files themselves were always safe under
concurrency via atomic rename.

Fault-injection points (:mod:`repro.faults`): ``fail-write`` makes a
store raise mid-write (degrades to a smaller cache), ``truncate-cache``
tears the serialized entry in half, ``corrupt-cache`` flips the stored
digest — the latter two exercise exactly the quarantine path above.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from dataclasses import dataclass, field
from typing import Optional

from repro import faults
from repro.engine import fingerprint


def default_cache_root() -> str:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else
    ``~/.cache/repro``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return override
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        return os.path.join(xdg, "repro")
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def payload_digest(payload) -> str:
    """Canonical content hash of a cache body (key-sorted compact JSON,
    so semantically equal payloads hash equally regardless of insertion
    order)."""
    text = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Lookup/store accounting for one cache handle."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Misses caused by integrity failures (subset of ``misses``).
    quarantined: int = 0
    #: Stores that failed (full disk, injected write fault).
    store_failures: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "quarantined": self.quarantined,
            "store_failures": self.store_failures,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass
class SummaryCache:
    """Content-addressed JSON object store with hit/miss accounting
    and payload integrity verification."""

    root: str
    stats: CacheStats = field(default_factory=CacheStats)
    #: Guards ``stats`` (the ``+=`` read-modify-writes would drop
    #: counts under real thread overlap). Not comparable/serializable
    #: state, hence excluded from the dataclass protocol.
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def _path(self, namespace: str, key: str) -> str:
        return os.path.join(
            self.root,
            f"v{fingerprint.ENGINE_CACHE_VERSION}",
            namespace,
            key[:2],
            f"{key}.json",
        )

    def get(self, namespace: str, key: str) -> Optional[dict]:
        path = self._path(namespace, key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError:
            with self._lock:
                self.stats.misses += 1
            return None
        try:
            wrapper = json.loads(text)
        except ValueError:
            # Unparseable bytes under the checksummed layout mean the
            # entry was torn or rotted after the atomic rename.
            self._quarantine(namespace, path, "unparseable")
            return None
        if (
            not isinstance(wrapper, dict)
            or "sha256" not in wrapper
            or "body" not in wrapper
        ):
            self._quarantine(namespace, path, "missing checksum wrapper")
            return None
        body = wrapper["body"]
        if payload_digest(body) != wrapper["sha256"]:
            self._quarantine(namespace, path, "digest mismatch")
            return None
        with self._lock:
            self.stats.hits += 1
        return body

    def put(self, namespace: str, key: str, payload: dict) -> None:
        path = self._path(namespace, key)
        directory = os.path.dirname(path)
        digest = payload_digest(payload)
        text = json.dumps(
            {"sha256": digest, "body": payload}, separators=(",", ":")
        )
        # Fault-injection points: tear, rot, or fail this write.
        if faults.fire("truncate-cache", namespace=namespace) is not None:
            text = text[: max(1, len(text) // 2)]
        if faults.fire("corrupt-cache", namespace=namespace) is not None:
            text = text.replace(digest, "0" * len(digest), 1)
        try:
            if faults.fire("fail-write", namespace=namespace) is not None:
                raise OSError("injected cache write failure")
            os.makedirs(directory, exist_ok=True)
            descriptor, temp_path = tempfile.mkstemp(
                dir=directory, suffix=".tmp"
            )
        except OSError:
            self._note_store_failure()
            return
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(temp_path, path)
        except OSError:
            # A full/read-only cache disk degrades to a smaller cache,
            # never to a failed analysis.
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            self._note_store_failure()
            return
        with self._lock:
            self.stats.stores += 1

    def delete(self, namespace: str, key: str) -> bool:
        """Drop one entry (the daemon's ``invalidate`` op). True when
        an entry existed and was removed."""
        try:
            os.unlink(self._path(namespace, key))
        except OSError:
            return False
        return True

    # -- integrity -----------------------------------------------------------

    def _quarantine(self, namespace: str, path: str, reason: str) -> None:
        """Evict a failed entry: count a miss, keep the bytes aside as
        ``<entry>.corrupt``, and make the event visible in metrics and
        the trace. Renaming (not deleting) preserves the evidence while
        guaranteeing the entry can never be served again; if even the
        rename fails the entry stays in place but every future read
        re-fails verification, so correctness never depends on the
        quarantine write succeeding."""
        with self._lock:
            self.stats.misses += 1
            self.stats.quarantined += 1
        try:
            os.replace(path, path + ".corrupt")
        except OSError:
            pass
        from repro.obs import metrics, trace

        metrics.inc("cache_quarantined")
        if trace.ENABLED:
            trace.instant(
                "cache.quarantine", namespace=namespace,
                entry=os.path.basename(path), reason=reason,
            )

    def _note_store_failure(self) -> None:
        with self._lock:
            self.stats.store_failures += 1
        from repro.obs import metrics

        metrics.inc("cache_store_failures")
