"""Persistent on-disk summary cache.

Layout: ``<root>/v<ENGINE_CACHE_VERSION>/<namespace>/<k[:2]>/<k>.json``
— one JSON file per entry, written atomically (temp file + rename), so
concurrent readers/writers (parallel workers, simultaneous CLI runs)
can never observe a torn entry. A version bump simply orphans the old
``v<N>`` directory; corrupt or unreadable entries count as misses.

Namespaces in use: ``ret`` (return jump functions per procedure),
``fwd`` (forward jump functions per procedure), ``sub`` (substitution
measurements per procedure), ``run`` (whole-run outcomes keyed on
source digest + config fingerprint — the ``repro analyze`` fast path).
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Optional

from repro.engine import fingerprint


def default_cache_root() -> str:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else
    ``~/.cache/repro``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return override
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        return os.path.join(xdg, "repro")
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


@dataclass
class CacheStats:
    """Lookup/store accounting for one cache handle."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass
class SummaryCache:
    """Content-addressed JSON object store with hit/miss accounting."""

    root: str
    stats: CacheStats = field(default_factory=CacheStats)

    def _path(self, namespace: str, key: str) -> str:
        return os.path.join(
            self.root,
            f"v{fingerprint.ENGINE_CACHE_VERSION}",
            namespace,
            key[:2],
            f"{key}.json",
        )

    def get(self, namespace: str, key: str) -> Optional[dict]:
        path = self._path(namespace, key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def put(self, namespace: str, key: str, payload: dict) -> None:
        path = self._path(namespace, key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        descriptor, temp_path = tempfile.mkstemp(
            dir=directory, suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(temp_path, path)
        except OSError:
            # A full/read-only cache disk degrades to a smaller cache,
            # never to a failed analysis.
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            return
        self.stats.stores += 1
