"""In-process memoization of lowering and whole analyses.

The oracle and golden harnesses analyze the *same* source text under
several configurations (and execute it besides), re-parsing and
re-lowering each time. Parsing never depends on configuration, and
:func:`~repro.ir.lowering.lower_module` does not mutate the parsed
module, so one AST per source text serves every lowering; whole
analysis results are likewise reusable per (source, config) pair —
``AnalysisResult`` consumers treat them as read-only.

Both memos are process-local LRU maps keyed by content digests (never
by object identity), bounded so long generator sweeps cannot grow
memory without bound, and observable through the profiling counters
``parse_memo_hits`` / ``analysis_memo_hits`` (plus the raw ``parses`` /
``lowerings`` counters bumped by the frontend itself).

Only the strict no-diagnostics paths memoize: error recovery threads a
caller-owned :class:`~repro.diagnostics.DiagnosticEngine` through
parsing, which is a side effect a cache hit would silently skip.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from repro import profiling
from repro.engine.fingerprint import config_fingerprint, source_digest

_PARSE_CAPACITY = 128
_ANALYSIS_CAPACITY = 64
_INTERP_CAPACITY = 256

_parse_memo: "OrderedDict[Tuple[str, str], object]" = OrderedDict()
_analysis_memo: "OrderedDict[Tuple[str, str, str], object]" = OrderedDict()
_interp_memo: "OrderedDict[Tuple[str, Tuple[int, ...]], object]" = OrderedDict()


def clear_memos() -> None:
    _parse_memo.clear()
    _analysis_memo.clear()
    _interp_memo.clear()


def _remember(memo: OrderedDict, key, value, capacity: int) -> None:
    memo[key] = value
    memo.move_to_end(key)
    while len(memo) > capacity:
        memo.popitem(last=False)


def parsed_module(text: str, filename: str = "<string>"):
    """The parsed (never-mutated) AST of ``text`` — one parse per
    distinct source, however many times it is lowered."""
    key = (source_digest(text), filename)
    if key in _parse_memo:
        _parse_memo.move_to_end(key)
        profiling.bump("parse_memo_hits")
        return _parse_memo[key]
    from repro.frontend.parser import parse_source

    module = parse_source(text, filename)
    _remember(_parse_memo, key, module, _PARSE_CAPACITY)
    return module


def fresh_program(text: str, filename: str = "<string>"):
    """A freshly lowered (mutable, pre-SSA) program for ``text``,
    re-lowered from the memoized AST."""
    from repro.frontend.source import SourceFile
    from repro.ir.lowering import lower_module

    return lower_module(parsed_module(text, filename), SourceFile(filename, text))


def memoized_analysis(text: str, config=None, filename: str = "<string>"):
    """Analyze ``text`` under ``config``, reusing a previous result for
    the identical (source, config) pair.

    The returned :class:`~repro.ipcp.driver.AnalysisResult` is shared
    between callers and must be treated as read-only — which every
    in-tree consumer (the oracle comparisons, the golden checks, the
    report renderers) already does.
    """
    from repro.config import AnalysisConfig

    config = config or AnalysisConfig()
    key = (source_digest(text), config_fingerprint(config), filename)
    if key in _analysis_memo:
        _analysis_memo.move_to_end(key)
        profiling.bump("analysis_memo_hits")
        return _analysis_memo[key]
    from repro.ipcp.driver import analyze_program

    result = analyze_program(fresh_program(text, filename), config)
    _remember(_analysis_memo, key, result, _ANALYSIS_CAPACITY)
    return result


def memoized_run(text: str, inputs, fuel: int, filename: str = "<string>"):
    """Execute ``text`` through the reference interpreter, reusing the
    recorded :class:`~repro.ir.interp.Trace` for an identical
    (source digest, input vector) pair.

    Execution is deterministic given (program, inputs); fuel only cuts
    it short. A recorded trace therefore satisfies any request whose
    budget covers the steps it actually took (``steps <= fuel``), while
    a smaller budget re-runs live so fuel exhaustion raises exactly as
    it would uncached. Only completed runs are stored — an
    InterpreterError propagates and leaves no entry. The shared Trace
    is read-only to callers; its entry snapshots are matched by
    variable *name* downstream, so reuse across independent lowerings
    of the same text is sound. Hits bump ``interp_memo_hits``.
    """
    key = (source_digest(text), tuple(inputs))
    cached = _interp_memo.get(key)
    if cached is not None and cached.steps <= fuel:
        _interp_memo.move_to_end(key)
        profiling.bump("interp_memo_hits")
        return cached
    from repro.ir.interp import run_program

    trace = run_program(
        fresh_program(text, filename), inputs=list(inputs), fuel=fuel
    )
    _remember(_interp_memo, key, trace, _INTERP_CAPACITY)
    return trace
