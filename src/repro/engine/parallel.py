"""Worker-side state and task functions for the engine's pool.

One module-level :data:`_STATE` per worker process (or, for the thread
executor and the inline jobs=1 path, per *host* process) holds the
worker's own isomorphic copy of the program plus the return-function
map it has reconstructed so far. Three executor bootstraps feed it:

- **fork** (the default on POSIX): the parent sets :data:`_STATE` and
  then creates the pool — ``ProcessPoolExecutor`` forks workers during
  the first ``submit`` calls, so every child inherits the fully
  prepared program (and its variable identities) copy-on-write, with
  zero serialization;
- **spawn** (fallback when fork is unavailable): workers receive the
  original source text and rebuild their program with
  :func:`_init_spawn` — parse, lower, and prepare are deterministic,
  so the rebuilt program is isomorphic to the parent's and the
  name/position-based summary encoding lines up exactly;
- **thread / inline**: the parent installs its own prepared state
  directly; tasks share the parent's objects (all stage work is
  read-only on the IR, and the shared return map is guarded).

Return-function summaries flow between waves as an *append-only
canonical payload*: the parent appends every generated/cached entry in
a fixed order. On the classic pickle path each task call carries the
full payload; with the shared-memory arena
(:mod:`repro.engine.arena`) the parent publishes the same entries, in
the same order, as arena records and each task carries only an
``("arena", stream_path, upto, exchange_path)`` marker — a worker
reads the unseen tail ``[applied_returns, upto)`` straight out of the
mapped segment. Indices align one-to-one with the canonical payload,
so the two transports can interleave freely (the engine falls back to
pickling mid-run if the arena degrades) and a worker applies each
entry exactly once either way. Results travel back the same way:
a worker appends its summary dict to the *exchange* segment and
returns a tiny ``{"@": index}`` descriptor (or the dict itself when
the exchange is unavailable — the parent accepts both).

:data:`_STATE` is layered: a module global (what fork children inherit
and an engine's own thread pool reads) under a ``threading.local``
override (what lets the *batch* thread executor run several engines
concurrently in one process — each batch thread sees only its own
program). :func:`_get_state` prefers the thread-local.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Union

from repro import faults
from repro.config import AnalysisConfig
from repro.ir.module import Program
from repro.engine import summaries

#: A wave's return-function transport: the canonical payload itself,
#: or an ("arena", stream_path, upto, exchange_path) marker.
ReturnsRef = Union[List[dict], tuple]


class _WorkerState:
    """Everything one worker needs across task invocations."""

    def __init__(
        self,
        program: Program,
        config: AnalysisConfig,
        prepared: bool = False,
        callgraph=None,
        modref=None,
    ):
        self.program = program
        self.config = config
        self.prepared = prepared
        self.callgraph = callgraph
        self.modref = modref
        from repro.ipcp.return_functions import ReturnFunctionMap

        self.return_map = ReturnFunctionMap()
        self.applied_returns = 0
        self.lock = threading.Lock()


#: The current worker's state; installed by one of the bootstraps below.
_STATE: Optional[_WorkerState] = None

#: Per-thread override of :data:`_STATE`. Batch threads install their
#: engine's state here so concurrent files never clobber each other;
#: fork children inherit the forking thread's value (CPython preserves
#: ``threading.local`` across fork for the surviving thread), and an
#: engine's own thread-pool workers — fresh threads with an empty
#: local — fall through to the global.
_TLS = threading.local()


def _set_state(state: Optional[_WorkerState]) -> None:
    global _STATE
    _STATE = state
    _TLS.state = state


def _set_thread_state(state: Optional[_WorkerState]) -> None:
    """Install (or clear) only this thread's state, leaving the global
    for other threads — the batch thread executor's isolation."""
    _TLS.state = state


def _get_state() -> Optional[_WorkerState]:
    state = getattr(_TLS, "state", None)
    if state is not None:
        return state
    return _STATE


def _traced_call(task, *args):
    """Run ``task`` under a worker-local tracer and ship the events it
    recorded back with the result (Chrome-format dicts pickle fine).

    A fork child inherits the parent's tracer object — detected via
    ``owner_pid`` and replaced with a fresh one so the parent's events
    are not re-shipped; a spawn worker simply has none yet. Either way
    the worker's pid tags its events, giving it its own trace track.
    The tracer persists across tasks in the same worker, so later calls
    ship only the events recorded since the previous one.
    """
    import os

    from repro.obs import trace

    from repro.obs import context as obs_context

    tracer = trace.active()
    if tracer is None or tracer.owner_pid != os.getpid():
        tracer = trace.enable()
    marker = tracer.event_count()
    context = obs_context.current()
    if context is not None:
        # Flow step: stitches this worker's events back to the request
        # root span that emitted the matching "s" event. Emitted after
        # the marker so it ships with this task's batch.
        tracer.flow(
            "request", "t", obs_context.flow_id(context.request_id)
        )
    with trace.span(
        "worker.task", task=getattr(task, "__name__", str(task))
    ):
        result = task(*args)
    return {"result": result, "events": tracer.events_since(marker)}


def _ctx_call(ctx, traced, task, *args):
    """Run ``task`` with the request's correlation context installed.

    ``ctx`` is the ``(request_id, trace_id)`` wire pair from
    :func:`repro.obs.context.current_ids` (or None) — the explicit
    channel that survives both the pickle path and spawn workers,
    where nothing is inherited. ``traced`` says whether to also wrap
    in :func:`_traced_call`; the untraced shape matches it so the
    dispatcher unwraps both the same way.
    """
    from repro.obs import context as obs_context

    previous = obs_context.current()
    obs_context.set_thread_context(obs_context.from_ids(ctx))
    try:
        if traced:
            return _traced_call(task, *args)
        return {"result": task(*args), "events": []}
    finally:
        obs_context.set_thread_context(previous)


def _worker_init() -> None:
    """Pool-worker initializer: restore default signal dispositions.

    Fork workers inherit whatever SIGINT/SIGTERM handlers the host
    installed — the batch CLI's raise-to-drain handler, the daemon's
    request_stop handler — and both are wrong inside a worker: the
    first turns the executor's own shutdown SIGTERM into a traceback,
    the second makes the worker *ignore* termination. Workers die by
    default disposition; only the host drains."""
    import signal

    for name in ("SIGINT", "SIGTERM"):
        signum = getattr(signal, name, None)
        if signum is None:
            continue
        try:
            signal.signal(signum, signal.SIG_DFL)
        except (ValueError, OSError):
            pass


def _init_spawn(text: str, filename: str, config: AnalysisConfig) -> None:
    """Spawn-context initializer: rebuild the program from source."""
    from repro.frontend.parser import parse_source
    from repro.frontend.source import SourceFile
    from repro.ir.lowering import lower_module

    _worker_init()
    module = parse_source(text, filename)
    program = lower_module(module, SourceFile(filename, text))
    _set_state(_WorkerState(program, config))


def _ensure_prepared() -> _WorkerState:
    state = _get_state()
    if state is None:
        raise RuntimeError("engine worker state was never installed")
    if not state.prepared:
        with state.lock:
            if not state.prepared:
                from repro.ipcp.driver import prepare_program

                state.callgraph, state.modref = prepare_program(
                    state.program, state.config
                )
                state.prepared = True
    return state


def _prime() -> bool:
    """No-op task submitted at pool start so fork-context workers fork
    (and, in spawn mode, prepare) before the first real wave."""
    _ensure_prepared()
    return True


def _apply_returns(state: _WorkerState, payload: List[dict]) -> None:
    """Fold the unseen tail of the canonical return-function payload
    into this worker's map. Entries are keyed (procedure, target), so
    re-applying one the worker built itself is an idempotent overwrite
    with an equal-valued function."""
    if state.applied_returns >= len(payload):
        return
    with state.lock:
        for data in payload[state.applied_returns:]:
            state.return_map.add(
                summaries.decode_return_function(data, state.program)
            )
        state.applied_returns = len(payload)


def _resolve_returns(state: _WorkerState, returns_ref: ReturnsRef) -> None:
    """Bring this worker's return map up to date from either transport.

    A list is the canonical payload itself (pickle path). A marker
    tuple names the stream arena and how many records are relevant to
    this wave; the worker reads only its unseen tail. Arena failures
    (unlinked segment, checksum mismatch) raise
    :class:`~repro.engine.arena.ArenaError` out of the task — the
    engine catches it, quarantines the arena, and re-dispatches the
    wave over the pickle path.
    """
    if isinstance(returns_ref, list):
        _apply_returns(state, returns_ref)
        return
    _, stream_path, upto, _ = returns_ref
    if state.applied_returns >= upto:
        return
    from repro.engine.arena import SummaryArena

    segment = SummaryArena.attach_cached(stream_path)
    with state.lock:
        start = state.applied_returns
        if start >= upto:
            return
        for index in range(start, upto):
            _, _, data = segment.read(index)
            state.return_map.add(
                summaries.decode_return_function(data, state.program)
            )
        state.applied_returns = upto


def _publish_result(
    returns_ref: ReturnsRef, stage: str, results: Dict[str, dict]
) -> Dict[str, dict]:
    """Ship a task's results: through the exchange arena as a
    ``{"@": index}`` descriptor when one is attached, inline otherwise.
    ``"@"`` can never collide with a procedure name (identifiers only).
    An exchange append that fails for any reason degrades to the inline
    dict — never a failed task."""
    if isinstance(returns_ref, list):
        return results
    _, _, _, exchange_path = returns_ref
    if exchange_path is None:
        return results
    from repro.engine import arena as arena_mod

    try:
        segment = arena_mod.SummaryArena.attach_cached(exchange_path)
        index = segment.append(stage, "x", results)
    except Exception:  # noqa: BLE001 — any exchange trouble (full,
        return results  # unlinked, codec) degrades to inline shipping
    return {"@": index}


def _demotions_guard(config: AnalysisConfig):
    """Per-task resilience sink, so each procedure's demotions can be
    shipped back (and cached) with exact attribution."""
    from repro.ipcp.resilience import ResilienceReport

    return ResilienceReport()


def _task_returns(
    component_names: List[List[str]],
    returns_payload: ReturnsRef,
    level: int = 0,
) -> Dict[str, dict]:
    """Build the return jump functions of the given SCCs (each a member
    name list in Tarjan order). All their callees' functions are in
    ``returns_payload`` — same-level components never call each other.
    ``level`` is the condensation level index, carried so the
    ``kill-worker`` fault point can target a specific wave."""
    faults.maybe_kill_worker(stage="ret", level=level)
    state = _ensure_prepared()
    _resolve_returns(state, returns_payload)
    from repro.ipcp.return_functions import build_return_functions_for

    results: Dict[str, dict] = {}
    for names in component_names:
        for name in names:
            procedure = state.program.procedure(name)
            report = _demotions_guard(state.config)
            build_return_functions_for(
                state.program, [procedure], state.return_map, state.modref,
                budget=state.config.budget, resilience=report,
                fault_isolation=state.config.fault_isolation,
            )
            results[name] = {
                "fns": summaries.encode_return_functions_of(
                    state.return_map, name, state.program
                ),
                "dem": summaries.encode_demotions(report),
            }
    return _publish_result(returns_payload, "ret", results)


def _task_forwards(
    procedure_names: List[str], returns_payload: ReturnsRef
) -> Dict[str, dict]:
    """Build the forward jump functions of each named procedure's call
    sites. Independent per procedure: the return map is read-only."""
    faults.maybe_kill_worker(stage="fwd")
    state = _ensure_prepared()
    _resolve_returns(state, returns_payload)
    from repro.ipcp.jump_functions import (
        JumpFunctionTable,
        build_forward_jump_functions_for,
    )

    results: Dict[str, dict] = {}
    for name in procedure_names:
        procedure = state.program.procedure(name)
        table = JumpFunctionTable(state.config.jump_function)
        report = _demotions_guard(state.config)
        build_forward_jump_functions_for(
            state.program, procedure, state.config.jump_function, table,
            state.return_map, gcp_oracle=state.config.gcp_oracle,
            budget=state.config.budget, resilience=report,
            fault_isolation=state.config.fault_isolation,
        )
        results[name] = {
            "fns": summaries.encode_forward_functions_of(
                table, procedure, state.program
            ),
            "dem": summaries.encode_demotions(report),
        }
    return _publish_result(returns_payload, "fwd", results)


def _task_substitution(
    procedure_names: List[str],
    returns_payload: ReturnsRef,
    constants_payload: Union[dict, tuple],
) -> Dict[str, dict]:
    """Measure each named procedure's substitutions against the final
    CONSTANTS sets. Independent per procedure. ``constants_payload`` is
    the encoded-cells dict itself, or a ``("const", path, index)``
    citation of one exchange-arena record holding it."""
    faults.maybe_kill_worker(stage="sub")
    state = _ensure_prepared()
    _resolve_returns(state, returns_payload)
    if not isinstance(constants_payload, dict):
        from repro.engine.arena import SummaryArena

        _, exchange_path, index = constants_payload
        constants_payload = SummaryArena.attach_cached(
            exchange_path
        ).read_payload(index)
    from repro.analysis.sccp import SCCPCallModel
    from repro.ipcp.return_functions import ReturnFunctionCallModel
    from repro.ipcp.substitution import (
        SubstitutionReport,
        measure_substitution_for,
    )

    constants = summaries.decode_constants(constants_payload, state.program)
    if state.config.use_return_functions:
        call_model: SCCPCallModel = ReturnFunctionCallModel(
            state.program, state.return_map
        )
    else:
        call_model = SCCPCallModel()

    results: Dict[str, dict] = {}
    for name in procedure_names:
        procedure = state.program.procedure(name)
        report = SubstitutionReport()
        demotions = _demotions_guard(state.config)
        measure_substitution_for(
            procedure, constants, call_model, report,
            budget=state.config.budget, resilience=demotions,
            fault_isolation=state.config.fault_isolation,
        )
        results[name] = {
            "sub": summaries.encode_substitution_of(report, name),
            "dem": summaries.encode_demotions(demotions),
        }
    return _publish_result(returns_payload, "sub", results)
