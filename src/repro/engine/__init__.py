"""The analysis engine: SCC-scheduled parallel summary generation, a
persistent content-addressed summary cache, and per-run profiling.

:class:`~repro.engine.core.Engine` is the only object callers touch; it
plugs into :func:`repro.ipcp.driver.analyze_prepared` (and the
``analyze_*`` entry points above it) and replaces the serial
return-function / forward-function / substitution stages with
scheduled, cached, optionally parallel equivalents whose outputs are
byte-identical to the serial pipeline's. See ``docs/PERFORMANCE.md``.
"""

from repro.engine.batch import BatchResult, FileOutcome, run_batch
from repro.engine.cache import CacheStats, SummaryCache, default_cache_root
from repro.engine.core import Engine
from repro.engine.fingerprint import (
    ENGINE_CACHE_VERSION,
    config_fingerprint,
    procedure_digest,
    source_digest,
    summary_index,
    summary_keys,
)
from repro.engine.incremental import InvalidationReport, diff_manifest
from repro.engine.scheduler import condensation_levels

__all__ = [
    "BatchResult",
    "CacheStats",
    "Engine",
    "ENGINE_CACHE_VERSION",
    "FileOutcome",
    "InvalidationReport",
    "SummaryCache",
    "condensation_levels",
    "config_fingerprint",
    "default_cache_root",
    "diff_manifest",
    "procedure_digest",
    "run_batch",
    "source_digest",
    "summary_index",
    "summary_keys",
]
