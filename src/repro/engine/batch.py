"""Batch analysis: many programs, one persistent worker pool.

A single ``repro`` invocation pays interpreter start-up, imports, and
(under ``--jobs``) pool spin-up once *per file*. :func:`run_batch`
amortizes all of that: the batch driver prepares every input against
one long-lived pool of workers, each of which analyzes whole files
serially (file-level parallelism composes better than per-file SCC
parallelism when there are many small inputs) and shares the persistent
summary cache on disk.

Scheduling is **big-first**: files are submitted in decreasing size
order so small files fill the slots left idle while a worker chews on a
large one — classic LPT list scheduling. Results are reported in the
caller's input order regardless.

Every file flows through the same per-file pipeline the ``analyze``
subcommand uses — run-level replay cache first, then resilient
analysis, then :meth:`~repro.engine.core.Engine.record_run` and the
incremental manifest update — so a batch run leaves the cache exactly
as N sequential ``analyze --cache`` runs would, and a later incremental
batch recomputes only the dirty procedures of edited files.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro import faults
from repro.config import AnalysisConfig

#: Outcome statuses, in severity order.
OK = "ok"
DIAGNOSTICS = "diagnostics"
ERROR = "error"


@dataclass
class FileOutcome:
    """One file's result, JSON-able end to end (it crosses the pool)."""

    path: str
    status: str = OK
    config: Optional[str] = None
    constants_report: Optional[str] = None
    total_pairs: int = 0
    substituted: int = 0
    per_procedure: Dict[str, int] = field(default_factory=dict)
    diagnostics: Optional[str] = None
    error: Optional[str] = None
    #: Served wholesale from the run-level replay cache.
    replayed: bool = False
    #: ``InvalidationReport.to_dict()`` (cache-enabled runs only).
    invalidation: Optional[dict] = None
    #: ``PipelineProfile.to_dict()`` (profiled runs only).
    profile: Optional[dict] = None
    #: Per-file :class:`~repro.obs.metrics.MetricsRegistry` delta
    #: (metrics-enabled runs only) — counters this file caused, isolated
    #: from everything the process did before it.
    metrics: Optional[dict] = None
    #: Chrome trace events recorded by a pool worker, shipped back for
    #: the parent tracer to adopt (cleared once adopted).
    trace_events: Optional[list] = None
    #: Rendered :class:`~repro.opt.report.OptReport` (``--optimize``
    #: runs only), plus its total change count for the summary line.
    opt_report: Optional[str] = None
    opt_changes: int = 0

    @property
    def ok(self) -> bool:
        return self.status == OK

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "status": self.status,
            "total_pairs": self.total_pairs,
            "substituted": self.substituted,
            "replayed": self.replayed,
            "error": self.error,
            "invalidation": self.invalidation,
            "profile": self.profile,
            "metrics": self.metrics,
            "opt_changes": self.opt_changes if self.opt_report else None,
        }

    def summary_line(self) -> str:
        if self.status == ERROR:
            return f"{self.path}: error: {self.error}"
        if self.status == DIAGNOSTICS:
            return f"{self.path}: diagnostics reported (no result)"
        opt = (
            f", optimized ({self.opt_changes} change(s))"
            if self.opt_report is not None else ""
        )
        suffix = "  [replayed]" if self.replayed else ""
        return (
            f"{self.path}: {self.total_pairs} constant(s), "
            f"{self.substituted} substituted{opt}{suffix}"
        )


@dataclass
class BatchResult:
    """Every file's outcome (input order) plus batch-level aggregates."""

    files: List[FileOutcome]
    jobs: int = 1
    #: Batch-level degradation notes (pool rebuilt/demoted), so a
    #: recovered run is visibly different from an undisturbed one.
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.files)

    def outcome(self, path: str) -> FileOutcome:
        for candidate in self.files:
            if candidate.path == path:
                return candidate
        raise KeyError(path)

    def totals(self) -> dict:
        by_status: Dict[str, int] = {}
        for outcome in self.files:
            by_status[outcome.status] = by_status.get(outcome.status, 0) + 1
        return {
            "files": len(self.files),
            "jobs": self.jobs,
            "by_status": by_status,
            "replayed": sum(1 for o in self.files if o.replayed),
            "total_pairs": sum(o.total_pairs for o in self.files),
            "substituted": sum(o.substituted for o in self.files),
        }

    def profile_report(self) -> dict:
        """Per-file profiles plus their aggregation — ``--profile``'s
        batch shape, where fixed-cost amortization is visible in one
        JSON (N files, one set of pool/import costs)."""
        from repro.profiling import aggregate_profiles

        per_file = {
            outcome.path: outcome.profile
            for outcome in self.files
            if outcome.profile is not None
        }
        report = self.totals()
        report["per_file"] = per_file
        report["aggregate"] = aggregate_profiles(list(per_file.values()))
        metrics = self.merged_metrics()
        if metrics is not None:
            report["metrics"] = metrics.snapshot()
        return report

    def merged_metrics(self):
        """All per-file metrics deltas folded into one registry (None
        when the batch ran without metrics collection)."""
        from repro.obs.metrics import MetricsRegistry

        collected = [o.metrics for o in self.files if o.metrics is not None]
        if not collected:
            return None
        registry = MetricsRegistry()
        for delta in collected:
            registry.merge(delta)
        return registry


def analyze_one(
    path: str,
    config: AnalysisConfig,
    cache_dir: Optional[str] = None,
    want_profile: bool = False,
    explain: bool = False,
    want_metrics: bool = False,
    want_trace: bool = False,
    optimize: Optional[Sequence[str]] = None,
) -> FileOutcome:
    """The per-file unit of batch work: replay-or-analyze ``path``.

    Runs inline (``jobs=1``) or inside a pool worker; everything it
    touches and returns is picklable. Each call uses a private serial
    :class:`~repro.engine.core.Engine` over the shared on-disk cache —
    workers coordinate through the cache's atomic file writes, never
    through shared memory.

    Per-file counter isolation: process-wide counters are *snapshotted*
    at entry and only the delta is attributed to this file — never
    reset, so neither a caller's accounting nor a concurrent thread's
    is clobbered, and the Nth file of a batch reports the same numbers
    it would report analyzed alone.
    """
    import time

    from repro import profiling
    from repro.engine.core import Engine
    from repro.frontend.errors import FrontendError
    from repro.ipcp.driver import analyze_file_resilient
    from repro.obs import context as obs_context
    from repro.obs import metrics as obs_metrics
    from repro.obs import trace

    # Fault points: die here to break the batch pool mid-file (only
    # ever fires inside a pool worker), or dawdle to make drain-under-
    # load and signal-delivery windows deterministic in tests.
    faults.maybe_kill_worker(stage="batch", path=path)
    faults.delay("delay-file", path=path)

    profile = profiling.PipelineProfile() if want_profile else None
    # Metric isolation: a thread-scoped registry captures exactly this
    # file's instrumentation even when sibling batch threads analyze
    # concurrently (snapshot/delta over the shared registry would
    # attribute their counters to us); the scope is merged back into
    # the enclosing registry on exit, so process totals still add up.
    scoped = want_profile or want_metrics
    if scoped:
        obs_metrics.push_scope()
    registry = obs_metrics.default_registry()
    counters_base = registry.snapshot() if scoped else None
    # A pool worker (fresh spawn process, or fork child holding the
    # parent's tracer) records into its own tracer and ships the events
    # back; inline and thread-mode calls write straight into the live
    # tracer (per-thread tids keep tracks apart).
    owns_tracer = False
    if want_trace:
        tracer = trace.active()
        if tracer is None or tracer.owner_pid != os.getpid():
            trace.enable()
            owns_tracer = True
    began = time.perf_counter()
    engine = Engine(jobs=1, cache_dir=cache_dir, profile=profile)
    outcome = FileOutcome(path=path)
    # Each file is its own correlation unit: telemetry recorded while
    # analyzing it (log records, worker spans) carries a per-file
    # request id, under the enclosing session's trace id. Thread-scoped
    # so concurrent batch threads never adopt a sibling's ids.
    enclosing_ctx = obs_context.current()
    file_ctx = obs_context.RequestContext(
        f"file:{path}",
        enclosing_ctx.trace_id if enclosing_ctx is not None else None,
    )
    obs_context.set_thread_context(file_ctx)
    file_span = trace.span("batch.file", path=path, request_id=file_ctx.request_id)
    file_span.__enter__()
    if trace.ENABLED:
        trace.flow(
            "request", "s", obs_context.flow_id(file_ctx.request_id),
            request_id=file_ctx.request_id, path=path,
        )
    try:
        text: Optional[str] = None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except (OSError, UnicodeDecodeError) as err:
            outcome.status = ERROR
            outcome.error = str(err)
            return outcome

        if engine.cache is not None:
            payload = engine.cached_run(text, config)
            opt_payload = (
                engine.cached_opt(text, config, optimize)
                if optimize is not None else None
            )
            # With --optimize, a replay needs BOTH cached outcomes —
            # the optimization mutates the program, so it cannot be
            # recomputed from a replayed analysis.
            if payload is not None and (
                optimize is None or opt_payload is not None
            ):
                outcome.config = payload["config"]
                outcome.constants_report = payload["constants_report"]
                outcome.total_pairs = payload["total_pairs"]
                outcome.substituted = payload["substituted"]
                outcome.per_procedure = dict(payload["per_procedure"])
                outcome.replayed = True
                if opt_payload is not None:
                    outcome.opt_report = opt_payload["report"]
                    outcome.opt_changes = (
                        opt_payload["opt"]["total_changes"]
                    )
                if explain:
                    outcome.invalidation = (
                        engine.replayed_report(path).to_dict()
                    )
                return outcome

        try:
            result, diagnostics = analyze_file_resilient(
                path, config, engine=engine
            )
        except FrontendError as err:
            outcome.status = ERROR
            outcome.error = str(err)
            return outcome
        if result is None:
            outcome.status = DIAGNOSTICS
            outcome.diagnostics = diagnostics.format()
            return outcome
        outcome.config = config.describe()
        outcome.constants_report = result.constants.format_report()
        outcome.total_pairs = result.constants.total_pairs()
        outcome.substituted = result.substituted_constants
        outcome.per_procedure = dict(result.substitution.per_procedure)
        if len(diagnostics):
            outcome.diagnostics = diagnostics.format()
        engine.record_run(text, config, result)
        if optimize is not None:
            from repro.opt import optimize_result

            opt_report = optimize_result(result, tuple(optimize))
            outcome.opt_report = opt_report.render()
            outcome.opt_changes = opt_report.total_changes
            engine.record_opt(text, config, optimize, result, opt_report)
        report = engine.finish_incremental(path)
        if report is not None:
            outcome.invalidation = report.to_dict()
        return outcome
    except Exception as err:  # noqa: BLE001 — a worker must not die on
        outcome.status = ERROR  # one bad input; the batch reports it
        outcome.error = f"{type(err).__name__}: {err}"
        return outcome
    finally:
        file_span.__exit__(None, None, None)
        obs_context.set_thread_context(enclosing_ctx)
        if profile is not None:
            engine.finish_profile()
        if counters_base is not None:
            if want_metrics:
                registry.observe(
                    "batch_file_seconds", time.perf_counter() - began
                )
                registry.inc("batch_files")
            delta = registry.delta_since(counters_base)
            if profile is not None:
                profile.merge_counters(delta["counters"])
                outcome.profile = profile.to_dict()
            if want_metrics:
                outcome.metrics = delta
        elif profile is not None:
            outcome.profile = profile.to_dict()
        if owns_tracer:
            worker_tracer = trace.disable()
            if worker_tracer is not None:
                outcome.trace_events = worker_tracer.events
        engine.close()
        if scoped:
            obs_metrics.pop_scope()


def _schedule(paths: Sequence[str]) -> List[str]:
    """Big-first (LPT) submission order, sizes from the filesystem.

    Unreadable paths sort last (size 0) — they fail fast in a worker.
    Ties keep input order, so scheduling is deterministic.
    """

    def size(path: str) -> int:
        try:
            return os.path.getsize(path)
        except OSError:
            return 0

    indexed = list(enumerate(paths))
    indexed.sort(key=lambda pair: (-size(pair[1]), pair[0]))
    return [path for _, path in indexed]


def run_batch(
    paths: Sequence[str],
    config: Optional[AnalysisConfig] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    want_profile: bool = False,
    explain: bool = False,
    executor: str = "process",
    want_metrics: bool = False,
    want_trace: bool = False,
    optimize: Optional[Sequence[str]] = None,
) -> BatchResult:
    """Analyze every file in ``paths`` against one persistent pool.

    ``jobs=1`` runs everything inline (still amortizing imports and the
    cache handle). ``executor`` mirrors :class:`~repro.engine.core.
    Engine`: ``"process"`` for real parallelism, ``"thread"`` for
    GIL-bound determinism testing. ``want_metrics`` attaches a per-file
    metrics delta to each outcome; ``want_trace`` records trace events
    in the workers and folds them into the caller's live tracer.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if executor not in ("process", "thread"):
        raise ValueError(f"unknown executor {executor!r}")
    config = config or AnalysisConfig()
    paths = list(paths)
    if jobs == 1 or len(paths) <= 1:
        outcomes = {
            path: analyze_one(
                path, config, cache_dir, want_profile, explain,
                want_metrics, want_trace, optimize,
            )
            for path in _schedule(paths)
        }
        return _collect(
            [outcomes[path] for path in paths], jobs
        )

    import concurrent.futures as cf

    task_args = (config, cache_dir, want_profile, explain,
                 want_metrics, want_trace, optimize)

    if executor == "thread":
        # Files genuinely overlap here: each thread's engine installs
        # its worker state thread-locally (parallel._get_state) and its
        # metrics land in a thread-scoped registry, so concurrent
        # engines never clobber each other. Still GIL-bound — real
        # speedups come from I/O overlap and the process executor — but
        # no longer serialized behind a lock. (Threads cannot break the
        # executor, so no recovery loop here.)
        pool = cf.ThreadPoolExecutor(max_workers=jobs)
        try:
            futures = {
                path: pool.submit(analyze_one, path, *task_args)
                for path in _schedule(paths)
            }
            return _collect(
                [futures[path].result() for path in paths], jobs
            )
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    # Process executor, with broken-pool recovery: a worker killed
    # mid-file (OOM killer, operator, injected fault) breaks every
    # in-flight future. Completed outcomes are kept, the pool is
    # rebuilt once and the unfinished files resubmitted after a
    # jittered backoff; a second break demotes the rest of the batch
    # to in-process serial analysis. Per-file work is idempotent
    # (replay/summary caches are content-addressed), so resubmission
    # never changes a result — only where it was computed.
    import multiprocessing as mp

    from repro.obs import metrics as obs_metrics

    methods = mp.get_all_start_methods()
    context = mp.get_context("fork" if "fork" in methods else "spawn")
    outcomes: Dict[str, FileOutcome] = {}
    notes: List[str] = []
    remaining = _schedule(list(dict.fromkeys(paths)))
    rebuilt = False
    while remaining:
        from repro.engine.parallel import _worker_init

        pool = cf.ProcessPoolExecutor(
            max_workers=jobs, mp_context=context, initializer=_worker_init
        )
        broke = False
        try:
            futures = {
                path: pool.submit(analyze_one, path, *task_args)
                for path in remaining
            }
            for path in remaining:
                try:
                    outcomes[path] = futures[path].result()
                except cf.BrokenExecutor:
                    broke = True
                    # Keep every outcome that did complete before the
                    # break; only genuinely unfinished files re-run.
                    for other in remaining:
                        future = futures[other]
                        if other in outcomes or not future.done():
                            continue
                        try:
                            outcomes[other] = future.result()
                        except Exception:  # noqa: BLE001 — broken too
                            pass
                    break
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        if not broke:
            break
        remaining = [path for path in remaining if path not in outcomes]
        obs_metrics.inc("batch_pool_broken")
        if not rebuilt and remaining:
            rebuilt = True
            obs_metrics.inc("batch_pool_rebuilds")
            _rebuild_backoff()
            continue
        if remaining:
            obs_metrics.inc("batch_pool_demotions")
            notes.append(
                f"worker pool broke twice; {len(remaining)} file(s) "
                f"analyzed serially in-process"
            )
            for path in remaining:
                outcomes[path] = analyze_one(path, *task_args)
        break
    return _collect(
        [outcomes[path] for path in paths], jobs, notes=notes
    )


def _rebuild_backoff() -> None:
    """Jittered pause before the single pool rebuild, so many batch
    processes recovering from one shared cause (a machine-wide OOM
    sweep) do not refork in lockstep."""
    import random
    import time

    time.sleep(0.05 + random.uniform(0, 0.05))


def _collect(
    outcomes: List[FileOutcome], jobs: int, notes: Optional[List[str]] = None
) -> BatchResult:
    """Assemble the batch result, folding worker-shipped trace events
    into the live tracer (each keeps its worker pid, so Perfetto shows
    one track per worker)."""
    from repro.obs import trace

    tracer = trace.active()
    for outcome in outcomes:
        if outcome.trace_events:
            if tracer is not None:
                tracer.adopt(outcome.trace_events)
            outcome.trace_events = None
    return BatchResult(files=outcomes, jobs=jobs, notes=notes or [])


def read_stdin_list(stream) -> List[str]:
    """File paths from ``stream``, one per line; blanks and ``#``
    comment lines are skipped (so lists can be annotated)."""
    paths: List[str] = []
    for line in stream:
        stripped = line.strip()
        if stripped and not stripped.startswith("#"):
            paths.append(stripped)
    return paths
