"""Serialization of per-procedure analysis summaries.

Worker processes and the on-disk cache exchange summaries as plain
JSON-able payloads; this module defines the codecs. The encoding must
be *identity-free*: :class:`~repro.ir.symbols.Variable` objects compare
by identity and carry process-local uids, so every variable is encoded
as a structural reference —

- ``["f", procedure, index]`` — the ``index``-th formal of ``procedure``;
- ``["g", block, name]`` — a global in COMMON block ``block``;
- ``["r", procedure]`` — the function result variable;

— and resolved back against the *decoder's* program object, which is
guaranteed isomorphic (same source, same lowering) even across process
boundaries. Expressions are encoded as their literal trees (return
jump functions never contain unknowns — they are polynomial-convertible
by construction), so decoded expressions are structurally equal to the
originals and the exit-agreement checks behave identically.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.expr import ConstExpr, EntryExpr, Expr, OpExpr
from repro.config import JumpFunctionKind
from repro.frontend.source import SourceLocation
from repro.ipcp.constants import ConstantsResult
from repro.ipcp.jump_functions import ForwardJumpFunction, JumpFunctionTable
from repro.ipcp.resilience import ResilienceReport
from repro.ipcp.return_functions import ReturnFunctionMap, ReturnJumpFunction
from repro.ipcp.solver import entry_domain
from repro.ipcp.substitution import SubstitutionReport, SubstitutionSite
from repro.ir.instructions import Use
from repro.ir.module import Procedure, Program
from repro.ir.symbols import Variable
from repro.lattice import BOTTOM, TOP, LatticeValue, const
from repro.poly.polynomial import Monomial, Polynomial, _sorted_monomial


def _json_key(value) -> str:
    import json

    return json.dumps(value)


# -- variable references -----------------------------------------------------


def encode_varref(var: Variable, procedure: Procedure) -> list:
    if var.is_global:
        return ["g", var.common_block, var.name]
    if procedure.result_var is not None and var is procedure.result_var:
        return ["r", procedure.name]
    position = procedure.formal_position(var)
    if position is None:
        raise ValueError(
            f"variable {var.name!r} of {procedure.name} is not encodable "
            f"(not a formal, global, or result)"
        )
    return ["f", procedure.name, position]


def resolve_varref(ref: list, program: Program) -> Variable:
    tag = ref[0]
    if tag == "g":
        variable = program.commons[ref[1]].member(ref[2])
        if variable is None:
            raise ValueError(f"unknown global {ref!r}")
        return variable
    if tag == "r":
        result_var = program.procedure(ref[1]).result_var
        if result_var is None:
            raise ValueError(f"procedure {ref[1]!r} has no result variable")
        return result_var
    if tag == "f":
        return program.procedure(ref[1]).formals[ref[2]]
    raise ValueError(f"unknown varref tag {ref!r}")


# -- expressions and polynomials ---------------------------------------------


def encode_expr(expr: Expr, procedure: Procedure) -> list:
    if isinstance(expr, ConstExpr):
        return ["c", expr.value]
    if isinstance(expr, EntryExpr):
        return ["e", encode_varref(expr.var, procedure)]
    if isinstance(expr, OpExpr):
        return ["o", expr.op, [encode_expr(a, procedure) for a in expr.args]]
    raise ValueError(f"expression {expr!r} is not serializable")


def decode_expr(data: list, program: Program) -> Expr:
    tag = data[0]
    if tag == "c":
        return ConstExpr(data[1])
    if tag == "e":
        return EntryExpr(resolve_varref(data[1], program))
    if tag == "o":
        # Rebuild verbatim (no smart-constructor re-canonicalization):
        # the encoded tree is already canonical, and structural equality
        # with parent-built expressions must be preserved exactly.
        return OpExpr(data[1], tuple(decode_expr(a, program) for a in data[2]))
    raise ValueError(f"unknown expr tag {data!r}")


def encode_polynomial(poly: Polynomial, procedure: Procedure) -> list:
    terms = []
    for monomial, coefficient in poly.terms.items():
        terms.append(
            [
                coefficient,
                [[encode_varref(var, procedure), power]
                 for var, power in monomial],
            ]
        )
    # json text as the sort key: a total, deterministic order over the
    # heterogeneous nested lists (tuple comparison would raise on
    # mixed-type positions).
    terms.sort(key=_json_key)
    return terms


def decode_polynomial(data: list, program: Program) -> Polynomial:
    terms: Dict[Monomial, int] = {}
    for coefficient, pairs in data:
        monomial = _sorted_monomial(
            (resolve_varref(ref, program), power) for ref, power in pairs
        )
        terms[monomial] = coefficient
    return Polynomial(terms)


# -- return jump functions ---------------------------------------------------


def encode_return_function(fn: ReturnJumpFunction, program: Program) -> dict:
    procedure = program.procedure(fn.procedure_name)
    return {
        "p": fn.procedure_name,
        "t": encode_varref(fn.target, procedure),
        "e": encode_expr(fn.expr, procedure),
        "poly": encode_polynomial(fn.polynomial, procedure),
    }


def decode_return_function(data: dict, program: Program) -> ReturnJumpFunction:
    return ReturnJumpFunction(
        procedure_name=data["p"],
        target=resolve_varref(data["t"], program),
        expr=decode_expr(data["e"], program),
        polynomial=decode_polynomial(data["poly"], program),
    )


def encode_return_functions_of(
    return_map: ReturnFunctionMap, procedure_name: str, program: Program
) -> List[dict]:
    return [
        encode_return_function(fn, program)
        for fn in return_map.functions_of(procedure_name)
    ]


# -- forward jump functions --------------------------------------------------


def encode_forward_function(
    fn: ForwardJumpFunction, caller: Procedure, call_index: int,
    program: Program,
) -> dict:
    callee = program.procedure(fn.call.callee)
    target_owner = callee if not fn.target.is_global else caller
    data: dict = {
        "call": [caller.name, call_index],
        "k": fn.kind.value,
        "t": encode_varref(fn.target, target_owner),
    }
    if fn.constant is not None:
        data["c"] = fn.constant
    if fn.source_var is not None:
        data["s"] = encode_varref(fn.source_var, caller)
    if fn.polynomial is not None:
        data["poly"] = encode_polynomial(fn.polynomial, caller)
    return data


def decode_forward_function(data: dict, program: Program) -> ForwardJumpFunction:
    caller = program.procedure(data["call"][0])
    call = caller.call_sites()[data["call"][1]]
    fn = ForwardJumpFunction(
        kind=JumpFunctionKind(data["k"]),
        call=call,
        target=resolve_varref(data["t"], program),
    )
    if "c" in data:
        fn.constant = data["c"]
    if "s" in data:
        fn.source_var = resolve_varref(data["s"], program)
    if "poly" in data:
        fn.polynomial = decode_polynomial(data["poly"], program)
    return fn


def encode_forward_functions_of(
    table: JumpFunctionTable, procedure: Procedure, program: Program
) -> List[dict]:
    """Encode the functions of every call site in ``procedure``, in call
    order then table insertion order (the construction order)."""
    encoded = []
    for index, call in enumerate(procedure.call_sites()):
        for fn in table.for_call(call):
            encoded.append(
                encode_forward_function(fn, procedure, index, program)
            )
    return encoded


# -- CONSTANTS (VAL sets) ----------------------------------------------------


def encode_constants(constants: ConstantsResult, program: Program) -> dict:
    """Encode the full VAL map in entry-domain order per procedure."""
    encoded: Dict[str, list] = {}
    for procedure in program:
        cells = []
        for var in entry_domain(procedure, program):
            value = constants.val_of(procedure.name, var)
            if value.is_constant:
                cells.append(["c", value.value])
            elif value.is_top:
                cells.append(["t"])
            else:
                cells.append(["b"])
        encoded[procedure.name] = cells
    return encoded


def decode_constants(data: dict, program: Program) -> ConstantsResult:
    val: Dict[str, Dict[Variable, LatticeValue]] = {}
    for procedure in program:
        cells: Dict[Variable, LatticeValue] = {}
        encoded = data.get(procedure.name, [])
        for var, cell in zip(entry_domain(procedure, program), encoded):
            if cell[0] == "c":
                cells[var] = const(cell[1])
            elif cell[0] == "t":
                cells[var] = TOP
            else:
                cells[var] = BOTTOM
        val[procedure.name] = cells
    return ConstantsResult(val)


# -- substitution sites ------------------------------------------------------


def encode_substitution_of(
    report: SubstitutionReport, procedure_name: str
) -> dict:
    sites = []
    for site in report.sites:
        if site.procedure_name != procedure_name:
            continue
        location = site.location
        sites.append(
            [
                site.use.var.name,
                site.use.version,
                [location.filename, location.line, location.column],
                site.value,
            ]
        )
    return {"n": report.per_procedure.get(procedure_name, 0), "sites": sites}


def decode_substitution_into(
    data: dict, procedure: Procedure, report: SubstitutionReport
) -> None:
    report.per_procedure[procedure.name] = data["n"]
    for name, version, (filename, line, column), value in data["sites"]:
        var = procedure.symbols.lookup(name)
        if var is None:
            raise ValueError(
                f"unknown variable {name!r} in {procedure.name}"
            )
        use = Use(var, SourceLocation(filename, line, column), from_source=True)
        use.version = version
        report.sites.append(SubstitutionSite(procedure.name, use, value))


# -- demotions ---------------------------------------------------------------


def encode_demotions(resilience: ResilienceReport) -> List[list]:
    return [
        [d.component, d.site, d.from_kind, d.to_kind, d.reason]
        for d in resilience.demotions
    ]


def apply_demotions(data: List[list], resilience: Optional[ResilienceReport]) -> None:
    if resilience is None:
        return
    for component, site, from_kind, to_kind, reason in data:
        resilience.record(component, site, from_kind, to_kind, reason)


# -- wire format (shared-memory arena) ---------------------------------------
#
# Every payload this module emits lives in the JSON data model (None,
# bool, int, float, str, list, dict-with-str-keys) — that is the *wire
# contract* the shared-memory arena depends on: arena records skip the
# JSON round-trip the disk cache performs, so a payload that json.dumps
# would accept but the binary codec would not (tuples, sets, objects)
# must never appear here. to_wire/from_wire are the contract's
# canonical entry points; decode helpers above deliberately accept
# lists wherever they would accept tuples so a codec round-trip is
# transparent.


def to_wire(payload) -> bytes:
    """Encode one summary payload with the arena's binary codec
    (:mod:`repro.engine.codec`). Raises
    :class:`~repro.engine.codec.CodecError` on anything outside the
    wire contract — loudly, at the producer, not in a worker."""
    from repro.engine import codec

    return codec.encode_value(payload)


def from_wire(data: bytes):
    """Decode bytes produced by :func:`to_wire`; exact inverse
    (``from_wire(to_wire(x)) == x`` including bool/int distinctions)."""
    from repro.engine import codec

    return codec.decode_value(data)
