"""Content-addressed cache keys for procedure summaries.

The summary cache must never serve a stale answer, so keys are *content
hashes* over everything a summary's value can depend on:

- the procedure's post-SSA IR text (:func:`repro.ir.printer.
  format_procedure`), plus the call-effect annotations the printer
  omits (``entry_uses``), the formal list, the result variable, and the
  program's scalar-global layout (which shapes return-function targets
  and entry domains);
- the :class:`~repro.config.AnalysisConfig` fingerprint — every
  semantic knob, serialized canonically;
- the summaries of every (transitive) callee, folded in Merkle-style:
  an SCC's key hashes its members' IR digests together with the keys of
  the child SCCs it calls into. Editing one procedure therefore
  invalidates exactly that procedure and its transitive callers;
- :data:`ENGINE_CACHE_VERSION`, bumped whenever the serialized payload
  format changes.

Variables are identity objects with process-local uids, so nothing
derived from a uid may enter a hash; every input above is spelled with
names, positions, and source text only.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List

from repro.config import AnalysisConfig
from repro.ir.module import Procedure, Program
from repro.ir.printer import format_procedure

#: Bump to invalidate every existing cache entry (payload schema changes,
#: semantics-affecting fixes in summary construction).
#: v2: run-level payloads grew ``stats``/``ir`` renderings, and the
#: ``man`` namespace (incremental manifests) joined the layout.
#: v3: entries are stored inside a ``{"sha256", "body"}`` integrity
#: wrapper, verified (and quarantined on mismatch) at read time.
ENGINE_CACHE_VERSION = 3


def _sha(parts: List[str]) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def source_digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def config_fingerprint(config: AnalysisConfig) -> str:
    """Canonical hash of every semantic field of ``config``.

    ``verify_ir`` is excluded (it can only raise, never change a
    result); everything else — including the budget, whose exhaustion
    deterministically degrades summaries — is included.
    """
    budget = config.budget
    payload = {
        "jump_function": config.jump_function.value,
        "use_return_functions": config.use_return_functions,
        "use_mod": config.use_mod,
        "complete": config.complete,
        "interprocedural": config.interprocedural,
        "gcp_oracle": config.gcp_oracle,
        "solver_strategy": config.solver_strategy,
        "gsa_refinement": config.gsa_refinement,
        "fault_isolation": config.fault_isolation,
        "budget": [
            budget.solver_visits, budget.sccp_visits,
            budget.polynomial_terms, budget.polynomial_degree,
            budget.gsa_rounds, budget.dce_rounds,
        ],
    }
    return _sha([json.dumps(payload, sort_keys=True)])


def _globals_signature(program: Program) -> str:
    return json.dumps(
        [[v.common_block, v.name] for v in program.scalar_globals()]
    )


def procedure_digest(procedure: Procedure, program: Program) -> str:
    """Hash of one procedure's analysis-relevant content (post-SSA)."""
    parts = [format_procedure(procedure)]
    for call in procedure.call_sites():
        parts.append(",".join(use.var.name for use in call.entry_uses))
        parts.append(
            ",".join(d.var.name for d in call.may_define)
        )
    parts.append(",".join(v.name for v in procedure.formals))
    parts.append(
        procedure.result_var.name if procedure.result_var is not None else ""
    )
    parts.append(_globals_signature(program))
    return _sha(parts)


def location_digest(procedure: Procedure) -> str:
    """Hash of every source coordinate the procedure's IR carries.

    Summary *semantics* are location-free — :func:`procedure_digest`
    excludes locations on purpose, so editing one procedure does not
    dirty the jump/return functions of procedures whose text merely
    moved down the file. But the substitution payload records absolute
    source coordinates for the transformed-source renderer, which go
    stale under exactly such shifts. The substitution cache key
    therefore salts the semantic key with this digest: a procedure
    whose text moved re-records its sites at the new coordinates while
    its ret/fwd summaries keep hitting.
    """
    parts: List[str] = []
    for block in procedure.cfg.blocks:
        for instruction in block.instructions:
            parts.append(str(instruction.location))
            for use in instruction.uses():
                parts.append(str(use.location))
    return _sha(parts)


def summary_index(
    program: Program, callgraph, config: AnalysisConfig
) -> Dict[str, Dict[str, str]]:
    """Per-procedure ``{"digest": ..., "key": ...}``, Merkle-folded.

    The ``digest`` is the procedure's own post-SSA content hash; the
    ``key`` folds the cache version, the config fingerprint, the SCC's
    member digests, and the keys of the child components it calls into.
    Every member of one SCC shares the component hash (their summaries
    are built together and depend on each other); the member key salts
    it with the member's name. The incremental layer diffs two indexes
    of the same file to separate *edited* procedures (digest changed)
    from procedures that are merely *downstream* of an edit (key changed
    via a callee's key).
    """
    config_fp = config_fingerprint(config)
    components = callgraph.sccs()  # reverse topological: callees first
    component_of: Dict[Procedure, int] = {}
    for index, component in enumerate(components):
        for member in component:
            component_of[member] = index
    component_keys: List[str] = []
    index_out: Dict[str, Dict[str, str]] = {}
    for index, component in enumerate(components):
        child_keys = sorted(
            {
                component_keys[component_of[callee]]
                for member in component
                for callee in callgraph.callees(member)
                if component_of[callee] != index
            }
        )
        digests = [procedure_digest(member, program) for member in component]
        component_key = _sha(
            [f"v{ENGINE_CACHE_VERSION}", config_fp] + digests + child_keys
        )
        component_keys.append(component_key)
        for member, digest in zip(component, digests):
            index_out[member.name] = {
                "digest": digest,
                "key": _sha([component_key, member.name]),
            }
    return index_out


def summary_keys(
    program: Program, callgraph, config: AnalysisConfig
) -> Dict[str, str]:
    """One cache key per procedure (see :func:`summary_index`)."""
    return {
        name: entry["key"]
        for name, entry in summary_index(program, callgraph, config).items()
    }


def run_key(text: str, config: AnalysisConfig) -> str:
    """Key of one whole (source, config) analysis outcome."""
    return _sha(
        [f"v{ENGINE_CACHE_VERSION}", source_digest(text),
         config_fingerprint(config)]
    )


def opt_key(text: str, config: AnalysisConfig, passes) -> str:
    """Key of one whole (source, config, passes) optimization outcome —
    the ``opt`` cache namespace's analogue of :func:`run_key`."""
    return _sha([run_key(text, config), "opt", ",".join(passes)])
