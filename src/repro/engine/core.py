"""The analysis engine: scheduled, cached, optionally parallel summary
generation with byte-identical results.

An :class:`Engine` slots into :func:`repro.ipcp.driver.analyze_prepared`
and replaces the three per-procedure pipeline stages — return jump
functions, forward jump functions, substitution measurement — with
versions that

1. schedule the work over the call graph's SCC condensation
   (:mod:`repro.engine.scheduler`) and fan each wave out over a worker
   pool (``--jobs N``);
2. consult a persistent content-addressed summary cache
   (:mod:`repro.engine.cache`) keyed by Merkle fingerprints
   (:mod:`repro.engine.fingerprint`), so unchanged procedures are never
   re-analyzed across runs;
3. time and count everything into a
   :class:`~repro.profiling.PipelineProfile` (``--profile``).

Determinism is the design invariant: cached, parallel, and serial
results are byte-identical because every path merges the same
identity-free payloads (:mod:`repro.engine.summaries`) in the same
serial order — the worker/cache layer only changes *where* a summary
came from, never what is merged or when.

The interprocedural solver itself stays in the parent (it is a tiny
fraction of the pipeline and inherently sequential), as does the
GSA-refinement loop and complete propagation (the driver passes
``engine=None`` under ``config.complete``).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.config import AnalysisConfig
from repro.engine import fingerprint, parallel, summaries
from repro.engine import arena as arena_mod
from repro.engine.cache import SummaryCache
from repro.engine.fingerprint import _sha
from repro.engine.scheduler import condensation_levels, partition
from repro.ir.module import Program
from repro.obs import context as obs_context
from repro.obs import metrics as obs_metrics
from repro.obs import trace
from repro.profiling import PipelineProfile

#: Arena-mode chunk-size bound: task messages are near-constant-size
#: there, so waves are cut finer than one-per-worker and stragglers
#: stop serializing a level. (On the pickle path every extra task
#: re-ships the whole summary payload, so no bound applies.)
ARENA_MAX_CHUNK = 200


class Engine:
    """One engine instance drives one or more analysis runs.

    ``jobs=1`` with no cache and no profile degenerates to the plain
    serial builders. ``executor`` selects the pool flavor: ``"process"``
    (fork when available, else spawn; real parallelism) or ``"thread"``
    (GIL-bound — useful for determinism testing and on single-CPU
    machines, not for speed).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        cache: Optional[SummaryCache] = None,
        profile: Optional[PipelineProfile] = None,
        executor: str = "process",
        arena: Optional[bool] = None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if executor not in ("process", "thread"):
            raise ValueError(f"unknown executor {executor!r}")
        self.jobs = jobs
        if cache is None and cache_dir is not None:
            cache = SummaryCache(cache_dir)
        self.cache = cache
        self.profile = profile
        self.executor_kind = executor
        #: Shared-memory summary exchange policy: ``None`` (auto) turns
        #: the arena on whenever a pool is in play, ``False`` pins the
        #: classic pickle transport (``--no-arena``), ``True`` insists
        #: (still degrades to pickling if segments cannot be created —
        #: the arena is an optimization, never a correctness gate).
        self.arena_mode = arena
        #: Optional cooperative-cancellation hook: called between
        #: scheduling waves; raising aborts the run (the daemon sets
        #: this to its per-request deadline check).
        self.checkpoint: Optional[callable] = None
        #: True once the worker pool broke twice and this engine fell
        #: back to in-process serial execution for good.
        self.pool_demoted = False
        self._pool_rebuilt = False
        self._pool = None
        self._pool_kind: Optional[str] = None
        self._program: Optional[Program] = None
        self._config: Optional[AnalysisConfig] = None
        self._attached: Optional[Program] = None
        self._keys: Optional[Dict[str, str]] = None
        self._index: Optional[Dict[str, Dict[str, str]]] = None
        self._loc_digests: Dict[str, str] = {}
        self._callgraph = None
        self._returns_payload: List[dict] = []
        #: Per-run arena segments: the *stream* (parent-published
        #: canonical return-function records) and the *exchange*
        #: (worker-published result records + the constants payload).
        self._arena_stream: Optional[arena_mod.SummaryArena] = None
        self._arena_exchange: Optional[arena_mod.SummaryArena] = None
        #: False once anything arena-shaped failed this run — the rest
        #: of the run sticks to the pickle path.
        self._arena_healthy = True
        #: Procedure names whose summaries were actually (re)computed
        #: this run, per stage namespace — the incremental layer's
        #: ground truth that recomputation stayed inside the dirty set.
        self.recomputed: Dict[str, List[str]] = {"ret": [], "fwd": [], "sub": []}

    # -- lifecycle -----------------------------------------------------------

    def start(self, program: Program, config: AnalysisConfig) -> None:
        """Bind the engine to one analysis run. Per-run state resets
        here (and again whenever :meth:`_attach` sees a new program),
        so one engine can serve many runs, sharing its cache, pool
        policy, and profile."""
        self._program = program
        self._config = config
        self._reset_run()

    def _reset_run(self) -> None:
        self._attached = None
        self._keys = None
        self._index = None
        self._loc_digests = {}
        self._callgraph = None
        self._returns_payload = []
        self._destroy_arenas()
        self._arena_healthy = True
        self.recomputed = {"ret": [], "fwd": [], "sub": []}
        if self._pool is not None:
            # Worker state is per-run; a surviving pool holds stale
            # programs. Recycle it (cheap relative to a full analysis).
            self._shutdown_pool()
        parallel._set_state(None)

    def close(self) -> None:
        self._shutdown_pool()
        self._destroy_arenas()
        parallel._set_state(None)

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _shutdown_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            self._pool_kind = None

    # -- shared-memory arena -------------------------------------------------

    def _arena_active(self) -> bool:
        """Whether waves should ride the arena — creating the per-run
        segments on first use. Only meaningful with a pool (``jobs >
        1``); creation failure quarantines the arena for the run."""
        if (
            not self._arena_healthy
            or self.jobs <= 1
            or self.arena_mode is False
        ):
            return False
        if self._arena_stream is None:
            try:
                self._arena_stream = arena_mod.SummaryArena.create(
                    label="stream"
                )
                self._arena_exchange = arena_mod.SummaryArena.create(
                    label="exchange"
                )
            except arena_mod.ArenaError:
                self._destroy_arenas()
                self._disable_arena("create")
                return False
        return True

    def _disable_arena(self, stage: str) -> None:
        """Quarantine the arena for the rest of this run (the segments
        stay mapped so in-flight workers can still finish reading) and
        fall back to the pickle transport."""
        if self._arena_healthy:
            self._arena_healthy = False
            self._count("arena_fallbacks")
            if trace.ENABLED:
                trace.instant("arena.fallback", stage=stage)

    def _destroy_arenas(self) -> None:
        for segment in (self._arena_stream, self._arena_exchange):
            if segment is not None:
                try:
                    segment.destroy()
                except Exception:  # noqa: BLE001 — teardown is best-
                    pass  # effort; reap_stale collects leftovers
        self._arena_stream = None
        self._arena_exchange = None

    def _publish_returns(self, pairs: List[tuple]) -> None:
        """Mirror freshly appended canonical-payload entries into the
        stream segment, in payload order, keyed like the Merkle cache.
        The invariant ``stream record i == payload entry i`` (up to the
        moment of a fallback) is what lets arena and pickle transports
        interleave mid-run."""
        if not pairs or not self._arena_active():
            return
        records = []
        for name, entries in pairs:
            key = (self._keys or {}).get(name, name)
            for entry in entries:
                records.append(("ret", key, entry))
        if not records:
            return
        try:
            self._arena_stream.append_many(records)
            self._count("arena_stream_records", len(records))
        except arena_mod.ArenaError:
            self._disable_arena("publish")

    def _dispatch_wave(
        self,
        task,
        make_args,
        resilience=None,
        stage: Optional[str] = None,
    ) -> List[dict]:
        """Dispatch one wave over the preferred transport.

        ``make_args(returns_ref)`` builds the task argument tuples for
        a given return-function transport. Arena first: tasks get an
        ``("arena", stream, upto, exchange)`` marker and may answer
        with exchange descriptors, resolved here. Any
        :class:`~repro.engine.arena.ArenaError` — a worker failing to
        attach or read, or this parent failing to resolve a descriptor
        — quarantines the arena and re-dispatches the *whole wave* over
        the pickle path: waves are idempotent (pure summary computation
        plus content-addressed cache stores), so the retry is
        byte-identical to an undisturbed run.
        """
        if self._arena_active():
            ref = (
                "arena",
                self._arena_stream.path,
                len(self._returns_payload),
                self._arena_exchange.path,
            )
            try:
                results = self._dispatch(
                    task, make_args(ref), resilience=resilience, stage=stage
                )
                return [self._resolve_result(data) for data in results]
            except arena_mod.ArenaError:
                self._disable_arena(stage or "dispatch")
        snapshot = list(self._returns_payload)
        args = make_args(snapshot)
        # The counter the arena-equivalence tests pivot on: entries
        # shipped through the pool's pickle channel. Arena waves ship
        # zero.
        self._count(
            "engine_pickle_payload_entries", len(snapshot) * len(args)
        )
        return self._dispatch(
            task, args, resilience=resilience, stage=stage
        )

    def _resolve_result(self, data: dict) -> dict:
        """Unwrap a worker's ``{"@": index}`` exchange descriptor (a
        plain result dict passes through — workers degrade to inline
        shipping when the exchange is unavailable)."""
        if "@" not in data:
            return data
        return self._arena_exchange.read_payload(data["@"])

    # -- attachment (first stage call) ---------------------------------------

    def _attach(self, program: Program, callgraph, config: AnalysisConfig):
        """Late binding at the first stage call: the program is prepared
        (SSA form) by now, so summary keys can be computed and worker
        state installed. A program the engine has not seen resets all
        per-run state, so reuse without :meth:`start` is safe."""
        if self._attached is not program:
            self._reset_run()
            self._attached = program
        self._program = program
        self._config = config
        self._callgraph = callgraph
        if self._keys is None:
            with self.maybe_stage("fingerprint"):
                if self.cache is not None:
                    self._index = fingerprint.summary_index(
                        program, callgraph, config
                    )
                    self._keys = {
                        name: entry["key"]
                        for name, entry in self._index.items()
                    }
                else:
                    self._index = None
                    self._keys = {}
        state = parallel._get_state()
        if state is None or state.program is not program:
            # Thread/inline tasks run against the parent's own prepared
            # objects; a process pool's forked children inherit this
            # very state copy-on-write at submit time. (The getter is
            # thread-scoped so concurrent batch-thread engines each see
            # their own program, not a sibling's.)
            state = parallel._WorkerState(
                program, config, prepared=True,
                callgraph=callgraph, modref=None,
            )
            parallel._set_state(state)
        # modref only matters to return-function generation:
        return state

    def _ensure_pool(self):
        if self.jobs <= 1 or self._pool is not None:
            return self._pool
        import concurrent.futures as cf

        if self.executor_kind == "thread":
            self._pool = cf.ThreadPoolExecutor(max_workers=self.jobs)
            self._pool_kind = "thread"
            return self._pool
        import multiprocessing as mp

        methods = mp.get_all_start_methods()
        if "fork" in methods:
            # Workers fork during the submit calls below and inherit the
            # already-installed prepared state copy-on-write.
            self._pool = cf.ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=mp.get_context("fork"),
                initializer=parallel._worker_init,
            )
            self._pool_kind = "fork"
        else:
            source = self._program.source if self._program is not None else None
            if source is None:
                # Spawn workers cannot rebuild the program without its
                # source text; fall back to threads.
                self._pool = cf.ThreadPoolExecutor(max_workers=self.jobs)
                self._pool_kind = "thread"
                return self._pool
            self._pool = cf.ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=mp.get_context("spawn"),
                initializer=parallel._init_spawn,
                initargs=(source.text, source.filename, self._config),
            )
            self._pool_kind = "spawn"
        for _ in range(self.jobs):
            self._pool.submit(parallel._prime)
        return self._pool

    def _dispatch(
        self,
        task,
        arg_tuples: List[tuple],
        resilience=None,
        stage: Optional[str] = None,
    ) -> List[dict]:
        """Run ``task(*args)`` for each tuple — across the pool when
        ``jobs > 1``, inline otherwise. Results keep submission order
        (which per-chunk results are merged in is irrelevant anyway:
        chunks are disjoint and merging is key-ordered by the caller).

        A broken pool (a worker SIGKILLed by the OOM killer, an
        operator, or the ``kill-worker`` fault point) is survived, not
        propagated: the pool is rebuilt once and the wave retried after
        a jittered backoff; if the rebuilt pool breaks too, the engine
        demotes itself to in-process serial execution for the rest of
        its life and records the demotion on ``resilience``. Waves are
        idempotent (pure summary computation plus content-addressed
        cache stores), so a retry can never double-apply work — the
        result is byte-identical to an undisturbed run.
        """
        import concurrent.futures as cf

        pool = self._ensure_pool()
        if pool is None:
            return [task(*args) for args in arg_tuples]
        try:
            return self._pool_dispatch(pool, task, arg_tuples)
        except cf.BrokenExecutor:
            self._count("engine_pool_broken")
            self._shutdown_pool()
            if not self._pool_rebuilt:
                self._pool_rebuilt = True
                self._backoff(attempt=1)
                self._count("engine_pool_rebuilds")
                if trace.ENABLED:
                    trace.instant("engine.pool_rebuild", stage=stage or "")
                pool = self._ensure_pool()
                try:
                    return self._pool_dispatch(pool, task, arg_tuples)
                except cf.BrokenExecutor:
                    self._count("engine_pool_broken")
                    self._shutdown_pool()
            # Second failure: degrade to serial, permanently for this
            # engine. The parent's installed worker state serves the
            # inline path, so results are unchanged — only slower.
            self.pool_demoted = True
            self.jobs = 1
            self._count("engine_pool_demotions")
            if trace.ENABLED:
                trace.instant("engine.pool_demoted", stage=stage or "")
            if resilience is not None:
                resilience.record(
                    "engine_pool",
                    stage or "engine",
                    f"{self.executor_kind}-pool",
                    "serial",
                    "worker pool broke twice; degraded to in-process "
                    "serial execution",
                )
            return [task(*args) for args in arg_tuples]

    @staticmethod
    def _backoff(attempt: int) -> None:
        """Jittered backoff before a pool rebuild: base delay doubling
        per attempt, plus up to 50% random jitter so a fleet of daemons
        recovering from one shared cause does not rebuild in lockstep."""
        import random
        import time

        base = 0.05 * (2 ** (attempt - 1))
        time.sleep(base + random.uniform(0, base * 0.5))

    def _check(self) -> None:
        if self.checkpoint is not None:
            self.checkpoint()

    def _pool_dispatch(self, pool, task, arg_tuples: List[tuple]) -> List[dict]:
        if trace.ENABLED:
            trace.instant(
                "engine.dispatch", tasks=len(arg_tuples),
                pool=self._pool_kind or "inline", jobs=self.jobs,
            )
        ctx = obs_context.current_ids()
        if self._pool_kind in ("fork", "spawn") and (
            trace.ENABLED or ctx is not None
        ):
            # Process workers record into their own tracer and ship
            # the new events back with each result; the parent adopts
            # them (worker pids become separate trace tracks). Thread
            # workers share the live tracer and the thread's context.
            # The wrapper also carries the request's correlation ids —
            # the explicit channel that covers spawn workers and the
            # pickle path, where nothing is inherited.
            tracer = trace.active()
            futures = [
                pool.submit(
                    parallel._ctx_call, ctx, trace.ENABLED, task, *args
                )
                for args in arg_tuples
            ]
            results = []
            for future in futures:
                wrapped = future.result()
                if tracer is not None and wrapped["events"]:
                    tracer.adopt(wrapped["events"])
                results.append(wrapped["result"])
            return results
        futures = [pool.submit(task, *args) for args in arg_tuples]
        return [future.result() for future in futures]

    def _chunks(self, items: List, arena_wave: bool = False) -> List[List]:
        return partition(
            items, self.jobs,
            max_chunk=ARENA_MAX_CHUNK if arena_wave else None,
        )

    # -- profiling helpers ---------------------------------------------------

    def maybe_stage(self, name: str):
        from repro.profiling import maybe_stage

        return maybe_stage(self.profile, name)

    def _count(self, name: str, amount: int = 1) -> None:
        # The process-wide metrics registry is the single sink
        # (``--metrics`` works without ``--profile``); profiles absorb
        # these counts once, via a registry delta (batch) or a
        # global-counters merge at emission time (CLI analyze) —
        # counting into the profile here as well would double them.
        obs_metrics.inc(name, amount)

    # -- stage: return jump functions ----------------------------------------

    def return_functions(self, program, callgraph, modref, config, resilience):
        """Engine version of :func:`repro.ipcp.return_functions.
        build_return_functions`: level-scheduled, cached, parallel."""
        from repro.ipcp.return_functions import ReturnFunctionMap

        state = self._attach(program, callgraph, config)
        state.modref = modref
        levels = condensation_levels(callgraph)
        member_data: Dict[str, dict] = {}
        payload = self._returns_payload = []

        for level_index, level in enumerate(levels):
            self._check()
            pending: List[List[str]] = []
            fresh: List[tuple] = []
            for component in level:
                names = [p.name for p in component]
                cached = self._lookup_members("ret", names)
                if cached is not None:
                    member_data.update(cached)
                    for name in names:
                        payload.extend(cached[name]["fns"])
                        fresh.append((name, cached[name]["fns"]))
                else:
                    pending.append(names)
            # Cache-served entries reach sibling workers through the
            # stream segment too — publish before the wave that cites
            # them.
            self._publish_returns(fresh)
            if not pending:
                continue
            # Chunk whole SCCs across workers; every task of this wave
            # cites the same payload prefix (by arena marker or by an
            # identical pickled snapshot).
            computed: Dict[str, dict] = {}
            for result in self._dispatch_wave(
                parallel._task_returns,
                lambda ref, _level=level_index, _pending=pending: [
                    (chunk, ref, _level)
                    for chunk in self._chunks(
                        _pending, arena_wave=not isinstance(ref, list)
                    )
                ],
                resilience=resilience,
                stage="ret",
            ):
                computed.update(result)
            fresh = []
            for names in pending:
                for name in names:
                    data = computed[name]
                    member_data[name] = data
                    payload.extend(data["fns"])
                    fresh.append((name, data["fns"]))
                    self._store_member("ret", name, data)
                    self._note_recomputed("ret", name)
            self._publish_returns(fresh)

        # Merge in the serial pipeline's order — the full Tarjan
        # bottom-up order, not level order — so the parent's map and the
        # demotion log are indistinguishable from a serial run's.
        return_map = ReturnFunctionMap()
        for component in callgraph.sccs():
            for member in component:
                data = member_data.get(member.name)
                if data is None:
                    continue  # the main program: no return functions
                for encoded in data["fns"]:
                    return_map.add(
                        summaries.decode_return_function(encoded, program)
                    )
                summaries.apply_demotions(data["dem"], resilience)
        return return_map

    # -- stage: forward jump functions ---------------------------------------

    def forward_functions(self, program, callgraph, config, return_map,
                          resilience):
        """Engine version of :func:`repro.ipcp.jump_functions.
        build_forward_jump_functions`: flat fan-out (independent per
        procedure given the final return map)."""
        from repro.ipcp.jump_functions import JumpFunctionTable

        self._attach(program, callgraph, config)
        order = [p.name for p in callgraph.top_down_order()]
        member_data: Dict[str, dict] = {}
        pending: List[str] = []
        for name in order:
            cached = self._lookup_member("fwd", name)
            if cached is not None:
                member_data[name] = cached
            else:
                pending.append(name)
        if pending:
            self._check()
            for result in self._dispatch_wave(
                parallel._task_forwards,
                lambda ref: [
                    (chunk, ref)
                    for chunk in self._chunks(
                        pending, arena_wave=not isinstance(ref, list)
                    )
                ],
                resilience=resilience,
                stage="fwd",
            ):
                member_data.update(result)
            for name in pending:
                self._store_member("fwd", name, member_data[name])
                self._note_recomputed("fwd", name)

        table = JumpFunctionTable(config.jump_function)
        for name in order:
            data = member_data[name]
            for encoded in data["fns"]:
                table.add(summaries.decode_forward_function(encoded, program))
            summaries.apply_demotions(data["dem"], resilience)
        return table

    # -- stage: substitution measurement -------------------------------------

    def substitution(self, program, callgraph, constants, config, resilience):
        """Engine version of :func:`repro.ipcp.substitution.
        measure_substitution`: flat fan-out. The report carries no
        ``sccp_results`` (only complete propagation reads those, and the
        driver never routes complete propagation through the engine)."""
        from repro.ipcp.substitution import SubstitutionReport

        self._attach(program, callgraph, config)
        constants_payload = summaries.encode_constants(constants, program)
        order = [p.name for p in program]
        member_data: Dict[str, dict] = {}
        pending: List[str] = []
        for name in order:
            key = self._substitution_key(name, constants_payload)
            cached = (
                self.cache.get("sub", key) if key is not None else None
            )
            if cached is not None:
                self._count("summary_cache_hits")
                member_data[name] = cached
            else:
                if key is not None:
                    self._count("summary_cache_misses")
                pending.append(name)
        if pending:
            self._check()

            def make_args(ref):
                # The CONSTANTS payload is identical for every task of
                # the wave; on the arena path it is published once to
                # the exchange segment and cited by index instead of
                # being pickled into each task message.
                constants_ref = constants_payload
                if not isinstance(ref, list):
                    try:
                        index = self._arena_exchange.append(
                            "sub", "constants", constants_payload
                        )
                        constants_ref = (
                            "const", self._arena_exchange.path, index
                        )
                    except arena_mod.ArenaError:
                        constants_ref = constants_payload
                return [
                    (chunk, ref, constants_ref)
                    for chunk in self._chunks(
                        pending, arena_wave=not isinstance(ref, list)
                    )
                ]

            for result in self._dispatch_wave(
                parallel._task_substitution,
                make_args,
                resilience=resilience,
                stage="sub",
            ):
                member_data.update(result)
            for name in pending:
                self._note_recomputed("sub", name)
                key = self._substitution_key(name, constants_payload)
                if key is not None:
                    self.cache.put("sub", key, member_data[name])
                    self._count("summary_cache_stores")

        report = SubstitutionReport()
        for name in order:
            data = member_data[name]
            summaries.decode_substitution_into(
                data["sub"], program.procedure(name), report
            )
            summaries.apply_demotions(data["dem"], resilience)
        return report

    # -- cache plumbing ------------------------------------------------------

    def _note_recomputed(self, namespace: str, name: str) -> None:
        self.recomputed[namespace].append(name)
        self._count(f"recomputed_{namespace}")

    def _lookup_member(self, namespace: str, name: str) -> Optional[dict]:
        if self.cache is None:
            return None
        data = self.cache.get(namespace, self._keys[name])
        if data is not None:
            self._count("summary_cache_hits")
        else:
            self._count("summary_cache_misses")
        if trace.ENABLED:
            trace.instant(
                "cache.hit" if data is not None else "cache.miss",
                namespace=namespace, procedure=name,
            )
        return data

    def _lookup_members(
        self, namespace: str, names: List[str]
    ) -> Optional[Dict[str, dict]]:
        """All-or-nothing lookup of one SCC: a component's members are
        built together, so a partial hit is recomputed whole."""
        if self.cache is None:
            return None
        found: Dict[str, dict] = {}
        for name in names:
            data = self._lookup_member(namespace, name)
            if data is None:
                return None
            found[name] = data
        return found

    def _store_member(self, namespace: str, name: str, data: dict) -> None:
        if self.cache is not None:
            self.cache.put(namespace, self._keys[name], data)
            self._count("summary_cache_stores")

    def _substitution_key(
        self, name: str, constants_payload: dict
    ) -> Optional[str]:
        """Substitution depends on the callee summaries (the member key)
        *and* on the procedure's CONSTANTS cells — which reflect the
        whole program, callers included — so the key salts the member
        key with the encoded VAL cells. It also folds in the
        procedure's source-location digest: substitution payloads carry
        absolute coordinates for the transformed-source renderer, which
        a line-shifting edit elsewhere in the file silently invalidates
        even though the procedure's semantics (and semantic key) are
        untouched."""
        if self.cache is None:
            return None
        location = self._loc_digests.get(name)
        if location is None:
            location = fingerprint.location_digest(
                self._program.procedure(name)
            )
            self._loc_digests[name] = location
        return _sha(
            ["sub", self._keys[name], location,
             json.dumps(constants_payload.get(name, []))]
        )

    # -- incremental manifests -----------------------------------------------

    def finish_incremental(self, path: str):
        """Diff this run's summary index against the previous manifest
        for ``path`` and persist the new manifest. Returns an
        :class:`~repro.engine.incremental.InvalidationReport`, or None
        when no cache (and hence no manifest history) is attached.

        Call after the analysis completed, while the engine is still
        attached to the run's program.
        """
        if self.cache is None or self._index is None:
            return None
        from repro.engine import incremental

        key = incremental.manifest_key(path, self._config)
        previous = self.cache.get(incremental.MANIFEST_NAMESPACE, key)
        report = incremental.diff_manifest(
            path, previous, self._index, self._callgraph
        )
        self.cache.put(
            incremental.MANIFEST_NAMESPACE,
            key,
            incremental.build_manifest(self._index),
        )
        self._count("incremental_dirty", len(report.dirty))
        self._count("incremental_clean", len(report.clean))
        if trace.ENABLED and report.dirty:
            trace.instant(
                "cache.stale", path=path,
                dirty=len(report.dirty), clean=len(report.clean),
            )
        return report

    def replayed_report(self, path: str):
        """The invalidation report for a run served entirely from the
        run-level cache: the source is unchanged, nothing recomputed."""
        from repro.engine.incremental import InvalidationReport

        return InvalidationReport(path=path, replayed=True)

    # -- whole-run result cache ----------------------------------------------

    def cached_run(self, text: str, config: AnalysisConfig) -> Optional[dict]:
        """Look up a whole (source, config) outcome — the CLI fast path
        that skips parsing entirely on an unchanged input."""
        if self.cache is None:
            return None
        payload = self.cache.get("run", fingerprint.run_key(text, config))
        if payload is not None:
            self._count("run_cache_hits")
        else:
            self._count("run_cache_misses")
        if trace.ENABLED:
            trace.instant(
                "run_cache.hit" if payload is not None else "run_cache.miss"
            )
        return payload

    def record_run(self, text: str, config: AnalysisConfig, result) -> None:
        """Record a *clean* run's render-ready outcome. Runs with
        demotions or diagnostics are never recorded: their output
        depends on more than (source, config) content.

        Besides the constants report, the payload carries the renderings
        every replayable CLI mode needs — the transformed source, the
        ``--stats`` table, and the ``--dump-ir`` text — so a warm replay
        can serve those flags without re-analyzing.
        """
        if self.cache is None:
            return
        if result.resilience.demotions:
            return
        if result.diagnostics is not None and result.diagnostics.diagnostics:
            return
        payload = {
            "config": config.describe(),
            "constants_report": result.constants.format_report(),
            "total_pairs": result.constants.total_pairs(),
            "substituted": result.substitution.total,
            "per_procedure": dict(result.substitution.per_procedure),
            "transformed_source": (
                result.transformed_source()
                if result.program.source is not None
                else None
            ),
            "stats": self._render_stats(result),
            "ir": self._render_ir(result),
            "provenance": self._render_provenance(result),
        }
        self.cache.put("run", fingerprint.run_key(text, config), payload)
        self._count("run_cache_stores")

    def cached_opt(self, text: str, config: AnalysisConfig,
                   passes) -> Optional[dict]:
        """Look up a whole (source, config, passes) optimization outcome
        — the ``repro optimize`` fast path replaying the optimized IR
        and report byte-identically on an unchanged input."""
        if self.cache is None:
            return None
        payload = self.cache.get(
            "opt", fingerprint.opt_key(text, config, passes)
        )
        if payload is not None:
            self._count("opt_cache_hits")
        else:
            self._count("opt_cache_misses")
        if trace.ENABLED:
            trace.instant(
                "opt_cache.hit" if payload is not None else "opt_cache.miss"
            )
        return payload

    def record_opt(self, text: str, config: AnalysisConfig, passes,
                   result, report) -> None:
        """Record a clean optimization run: the rendered report, the
        optimized (destructed) IR, and the pass statistics. The same
        cleanliness rule as :meth:`record_run` applies — degraded runs
        depend on more than (source, config, passes) content."""
        if self.cache is None:
            return
        if result.resilience.demotions:
            return
        if result.diagnostics is not None and result.diagnostics.diagnostics:
            return
        payload = {
            "config": config.describe(),
            "passes": list(passes),
            "report": report.render(),
            "opt": report.to_payload(),
            "ir": self._render_ir(result),
        }
        self.cache.put(
            "opt", fingerprint.opt_key(text, config, passes), payload
        )
        self._count("opt_cache_stores")

    @staticmethod
    def _render_stats(result) -> Optional[str]:
        from repro.ipcp.stats import collect_statistics

        try:
            return collect_statistics(result).format()
        except Exception:  # noqa: BLE001 — a failed rendering only
            return None  # narrows what the replay can serve

    @staticmethod
    def _render_ir(result) -> Optional[str]:
        from repro.ir.printer import format_program

        try:
            return format_program(result.program)
        except Exception:  # noqa: BLE001
            return None

    @staticmethod
    def _render_provenance(result) -> Optional[dict]:
        from repro.obs.provenance import build_provenance

        try:
            return build_provenance(result).to_payload()
        except Exception:  # noqa: BLE001 — narrows what --explain can
            return None  # serve from a replay, same as stats/ir

    # -- reporting -----------------------------------------------------------

    def finish_profile(self) -> None:
        """Fold cache statistics into the profile's counters."""
        if self.profile is None or self.cache is None:
            return
        stats = self.cache.stats
        self.profile.set_counter("cache_lookups", stats.lookups)
        self.profile.set_counter("cache_hits", stats.hits)
        self.profile.set_counter("cache_misses", stats.misses)
        self.profile.set_counter("cache_stores", stats.stores)
