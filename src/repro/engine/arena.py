"""Shared-memory summary arena: zero-pickle summary exchange.

The engine's workers historically met only at two boundaries — the
pool's pickle channel (every task carried a full snapshot of the
canonical return-function payload, so wire bytes grew with *waves ×
tasks × summaries*) and the on-disk Merkle cache. A
:class:`SummaryArena` is the third, fast boundary: a memory-mapped
shared segment (``/dev/shm`` when available, so it is backed by RAM,
never the disk) holding an append-only log of summary records, each
keyed like the Merkle cache (``namespace`` ``ret``/``fwd``/``sub`` plus
a key) and encoded with the compact binary codec
(:mod:`repro.engine.codec`). A scheduling wave publishes its results
once; sibling workers read them in place. Task messages shrink to
"apply records ``[a, b)``" markers and tiny result descriptors.

Layout (little-endian)::

    header (64 bytes):
      0  magic  b"RPA1"
      4  u16 arena format version
      6  u16 codec version
      8  u32 owner pid
      12 u32 reserved
      16 u64 capacity (data region bytes)
      24 u64 committed (data region bytes published)
      32 u64 record count
      40.. zero padding
    data region: records, each
      u32 record_len | u8 ns_len | ns | u16 key_len | key |
      u32 body_len | body | u32 crc32(ns + key + body)

**Concurrency.** Appends take an ``flock`` on a ``.lock`` sidecar (plus
an in-process :class:`threading.Lock` — flock does not exclude threads
sharing one file description). The kernel releases flock when its
holder dies, so a SIGKILLed worker can never deadlock the arena: its
partial record sits beyond ``committed`` and is invisible. Readers
trust only ``committed``/``count``, and every record is crc-verified on
read, so a torn or corrupted record is *detected*, never consumed —
the engine quarantines the arena for the run and falls back to the
pickle path (``arena_read_failures`` / ``arena_fallbacks`` metrics),
never to a failed analysis.

**Lifecycle.** Segments are named ``repro-arena-<pid>-<token>.seg``;
the owner pid is embedded in both the name and the header so
:func:`reap_stale` can unlink segments leaked by a crashed host (the
daemon reaps its directory on restart). ``unlink``/``close`` are
idempotent; fork children inherit the mapping (an unlinked segment
stays readable through it, which is exactly POSIX shared-memory
semantics).

Fault-injection points (:mod:`repro.faults`): ``corrupt-arena`` flips
record bytes as they are appended (exercising the crc quarantine),
``unlink-arena`` removes the segment at attach time (exercising the
attach-failure fallback).
"""

from __future__ import annotations

import mmap
import os
import struct
import tempfile
import threading
import zlib
from typing import Dict, List, Optional, Tuple

from repro import faults
from repro.engine import codec

#: Arena format version — bumped when the header/record layout changes.
ARENA_FORMAT = 1

#: Default data-region capacity. The segment file is sparse: pages cost
#: memory only once written, so a generous ceiling is free.
DEFAULT_CAPACITY = 256 * 1024 * 1024

_MAGIC = b"RPA1"
_HEADER = struct.Struct("<4sHHII QQQ")
_HEADER_SIZE = 64
_LEN = struct.Struct("<I")
_NS_LEN = struct.Struct("<B")
_KEY_LEN = struct.Struct("<H")

#: Environment overrides (directory and capacity).
ENV_DIR = "REPRO_ARENA_DIR"
ENV_CAPACITY = "REPRO_ARENA_CAPACITY"


class ArenaError(RuntimeError):
    """Base class: the arena is unusable; fall back to the pickle path."""


class ArenaFullError(ArenaError):
    """An append did not fit in the segment's capacity."""


class ArenaAttachError(ArenaError):
    """The segment is missing, foreign, or version-mismatched."""


class ArenaReadError(ArenaError):
    """A record failed bounds or checksum verification."""


def arena_directory() -> str:
    """``$REPRO_ARENA_DIR``, else ``/dev/shm`` (RAM-backed) when
    usable, else the system temp directory."""
    override = os.environ.get(ENV_DIR)
    if override:
        return override
    if os.path.isdir("/dev/shm") and os.access("/dev/shm", os.W_OK):
        return "/dev/shm"
    return tempfile.gettempdir()


def default_capacity() -> int:
    override = os.environ.get(ENV_CAPACITY)
    if override:
        try:
            return max(4096, int(override))
        except ValueError:
            pass
    return DEFAULT_CAPACITY


def _count(name: str, amount: int = 1) -> None:
    from repro.obs import metrics

    metrics.inc(name, amount)


#: Same-process attach short-circuit: the host's created arenas (and a
#: worker's previous attaches) are served by path, so inline and
#: thread-executor tasks share the live object instead of remapping.
_ATTACHED: Dict[str, "SummaryArena"] = {}
_ATTACH_LOCK = threading.Lock()


class SummaryArena:
    """One mapped segment. Use :meth:`create` (host) or
    :meth:`attach_cached` (workers); not the constructor."""

    def __init__(self, path: str, fd: int, view: mmap.mmap, owned: bool):
        self.path = path
        self._fd = fd
        self._map = view
        self.owned = owned
        self._closed = False
        self._tlock = threading.Lock()
        self._lock_fd: Optional[int] = None
        #: pid that opened ``_lock_fd``. flock exclusion is per *open
        #: file description*, which a fork child shares with its parent
        #: — so a child that inherited this object must reopen the lock
        #: file to get a description (and hence a lock) of its own.
        self._lock_pid: Optional[int] = None
        #: Start offsets (data-region relative) of records scanned so
        #: far; extended lazily as readers ask for higher indices.
        self._offsets: List[int] = []
        magic, fmt, codec_version, owner, _, capacity, _, _ = (
            _HEADER.unpack_from(view, 0)
        )
        self.capacity = capacity
        self.owner_pid = owner

    # -- construction --------------------------------------------------------

    @classmethod
    def create(
        cls,
        capacity: Optional[int] = None,
        directory: Optional[str] = None,
        label: str = "",
    ) -> "SummaryArena":
        """Create a fresh segment owned by this process."""
        capacity = capacity or default_capacity()
        directory = directory or arena_directory()
        os.makedirs(directory, exist_ok=True)
        suffix = f"-{label}.seg" if label else ".seg"
        fd, path = tempfile.mkstemp(
            prefix=f"repro-arena-{os.getpid()}-", suffix=suffix,
            dir=directory,
        )
        try:
            os.ftruncate(fd, _HEADER_SIZE + capacity)
            view = mmap.mmap(fd, _HEADER_SIZE + capacity)
            _HEADER.pack_into(
                view, 0, _MAGIC, ARENA_FORMAT, codec.CODEC_VERSION,
                os.getpid() & 0xFFFFFFFF, 0, capacity, 0, 0,
            )
        except (OSError, ValueError) as err:
            os.close(fd)
            try:
                os.unlink(path)
            except OSError:
                pass
            raise ArenaError(f"arena create failed: {err}") from err
        arena = cls(path, fd, view, owned=True)
        with _ATTACH_LOCK:
            _ATTACHED[path] = arena
        _count("arena_created")
        from repro.obs import trace

        if trace.ENABLED:
            trace.instant(
                "arena.create", path=os.path.basename(path),
                capacity=capacity,
            )
        return arena

    @classmethod
    def attach(cls, path: str) -> "SummaryArena":
        """Map an existing segment (a spawn worker, or a diagnostic
        tool). Verifies magic, format, and codec version."""
        try:
            fd = os.open(path, os.O_RDWR)
        except OSError as err:
            _count("arena_attach_failures")
            raise ArenaAttachError(
                f"arena segment missing: {err}"
            ) from err
        try:
            view = mmap.mmap(fd, 0)
        except (OSError, ValueError) as err:
            os.close(fd)
            _count("arena_attach_failures")
            raise ArenaAttachError(f"arena map failed: {err}") from err
        magic, fmt, codec_version, _, _, _, _, _ = _HEADER.unpack_from(
            view, 0
        )
        if (
            magic != _MAGIC
            or fmt != ARENA_FORMAT
            or codec_version != codec.CODEC_VERSION
        ):
            view.close()
            os.close(fd)
            _count("arena_attach_failures")
            raise ArenaAttachError(
                f"arena {path!r} has foreign format "
                f"(magic={magic!r}, format={fmt}, codec={codec_version})"
            )
        return cls(path, fd, view, owned=False)

    @classmethod
    def attach_cached(cls, path: str) -> "SummaryArena":
        """Attach with the same-process short-circuit — the host's own
        created object (inline/thread tasks, fork children) is returned
        live; everyone else maps the file once and caches the handle."""
        if faults.fire("unlink-arena", path=path) is not None:
            # The injected operator mistake: the segment vanishes out
            # from under the run. Every later attach must fail cleanly.
            with _ATTACH_LOCK:
                _ATTACHED.pop(path, None)
            try:
                os.unlink(path)
            except OSError:
                pass
            _count("arena_attach_failures")
            raise ArenaAttachError(f"arena segment unlinked: {path!r}")
        with _ATTACH_LOCK:
            cached = _ATTACHED.get(path)
            if cached is not None and not cached._closed:
                return cached
        arena = cls.attach(path)
        with _ATTACH_LOCK:
            _ATTACHED[path] = arena
        return arena

    # -- lifecycle -----------------------------------------------------------

    @property
    def lock_path(self) -> str:
        return self.path + ".lock"

    def close(self) -> None:
        """Drop this process's mapping (idempotent). Never touches the
        file — other processes may still be mapped."""
        if self._closed:
            return
        self._closed = True
        with _ATTACH_LOCK:
            if _ATTACHED.get(self.path) is self:
                del _ATTACHED[self.path]
        try:
            self._map.close()
        except (OSError, ValueError):
            pass
        for fd in (self._fd, self._lock_fd):
            if fd is not None:
                try:
                    os.close(fd)
                except OSError:
                    pass
        self._fd = None
        self._lock_fd = None

    def unlink(self) -> bool:
        """Remove the segment and its lock file (idempotent; tolerates
        a concurrent or earlier unlink). Existing mappings — our own
        included — stay readable; new attaches fail."""
        removed = False
        for path in (self.path, self.lock_path):
            try:
                os.unlink(path)
                removed = removed or path == self.path
            except OSError:
                pass
        if removed:
            _count("arena_unlinked")
        return removed

    def destroy(self) -> None:
        """Host-side teardown: unlink then close."""
        self.unlink()
        self.close()

    # -- writing -------------------------------------------------------------

    def _acquire(self):
        """flock (cross-process) + thread lock (in-process). The flock
        is released by the kernel if we die mid-append, so a crashed
        writer leaves a recoverable arena, not a deadlock."""
        self._tlock.acquire()
        try:
            pid = os.getpid()
            if self._lock_fd is None or self._lock_pid != pid:
                if self._lock_fd is not None:
                    try:
                        os.close(self._lock_fd)
                    except OSError:
                        pass
                self._lock_fd = os.open(
                    self.lock_path, os.O_CREAT | os.O_RDWR, 0o600
                )
                self._lock_pid = pid
            import fcntl

            fcntl.flock(self._lock_fd, fcntl.LOCK_EX)
        except OSError as err:
            self._tlock.release()
            raise ArenaError(f"arena lock failed: {err}") from err

    def _release(self) -> None:
        try:
            import fcntl

            fcntl.flock(self._lock_fd, fcntl.LOCK_UN)
        except OSError:
            pass
        finally:
            self._tlock.release()

    def append(self, namespace: str, key: str, payload) -> int:
        """Append one record; returns its index. Raises
        :class:`ArenaFullError` when it does not fit (the caller falls
        back to the pickle path) — the arena is never left torn."""
        return self.append_many([(namespace, key, payload)])[0]

    def append_many(
        self, records: List[Tuple[str, str, object]]
    ) -> List[int]:
        """Append a batch under one lock acquisition (the host
        publishes whole waves at once)."""
        if self._closed:
            raise ArenaError("arena is closed")
        encoded = []
        for namespace, key, payload in records:
            ns = namespace.encode("utf-8")
            kb = key.encode("utf-8")
            try:
                body = codec.encode_value(payload)
            except codec.CodecError as err:
                # A payload outside the wire domain is an arena-level
                # failure (callers quarantine and fall back to pickle),
                # not a run-level one.
                raise ArenaError(f"unencodable record: {err}") from err
            crc = zlib.crc32(ns + kb + body)
            if faults.fire(
                "corrupt-arena", namespace=namespace, path=self.path
            ) is not None:
                # Bit-rot the body after the crc is computed over the
                # *intended* bytes — readers must detect the mismatch.
                if len(body) > 1:
                    body = body[:1] + bytes((body[1] ^ 0xFF,)) + body[2:]
                else:
                    body = b"\xff"
            record = b"".join(
                (
                    _NS_LEN.pack(len(ns)), ns,
                    _KEY_LEN.pack(len(kb)), kb,
                    _LEN.pack(len(body)), body,
                    _LEN.pack(crc & 0xFFFFFFFF),
                )
            )
            encoded.append(_LEN.pack(len(record)) + record)
        total = sum(len(r) for r in encoded)
        self._acquire()
        try:
            _, _, _, _, _, capacity, committed, count = _HEADER.unpack_from(
                self._map, 0
            )
            if committed + total > capacity:
                _count("arena_full")
                raise ArenaFullError(
                    f"arena {os.path.basename(self.path)} full: "
                    f"{committed + total} > {capacity} bytes"
                )
            offset = _HEADER_SIZE + committed
            indices = []
            for record in encoded:
                self._map[offset:offset + len(record)] = record
                indices.append(count)
                offset += len(record)
                count += 1
            committed = offset - _HEADER_SIZE
            struct.pack_into("<QQ", self._map, 24, committed, count)
        finally:
            self._release()
        _count("arena_appends", len(records))
        _count("arena_bytes", total)
        return indices

    # -- reading -------------------------------------------------------------

    def committed(self) -> Tuple[int, int]:
        """(bytes, records) published so far."""
        _, _, _, _, _, _, committed, count = _HEADER.unpack_from(
            self._map, 0
        )
        return committed, count

    @property
    def count(self) -> int:
        return self.committed()[1]

    def _scan_to(self, index: int) -> None:
        offsets = self._offsets
        if index < len(offsets):
            return
        committed, count = self.committed()
        if index >= count:
            raise ArenaReadError(
                f"record {index} beyond committed count {count}"
            )
        if not offsets:
            offsets.append(0)
        # Step past the last known record start, then walk forward.
        position = offsets[-1]
        length = _LEN.unpack_from(self._map, _HEADER_SIZE + position)[0]
        position += _LEN.size + length
        while len(offsets) <= index:
            if position >= committed:
                raise ArenaReadError(
                    f"record scan ran past committed bytes at {position}"
                )
            offsets.append(position)
            length = _LEN.unpack_from(
                self._map, _HEADER_SIZE + position
            )[0]
            position += _LEN.size + length

    def read(self, index: int) -> Tuple[str, str, object]:
        """Read record ``index`` as ``(namespace, key, payload)``,
        crc-verified."""
        try:
            self._scan_to(index)
            base = _HEADER_SIZE + self._offsets[index]
            committed, _ = self.committed()
            limit = _HEADER_SIZE + committed
            record_len = _LEN.unpack_from(self._map, base)[0]
            if base + _LEN.size + record_len > limit:
                raise ArenaReadError(f"record {index} overruns arena")
            at = base + _LEN.size
            ns_len = _NS_LEN.unpack_from(self._map, at)[0]
            at += _NS_LEN.size
            ns = bytes(self._map[at:at + ns_len])
            at += ns_len
            key_len = _KEY_LEN.unpack_from(self._map, at)[0]
            at += _KEY_LEN.size
            kb = bytes(self._map[at:at + key_len])
            at += key_len
            body_len = _LEN.unpack_from(self._map, at)[0]
            at += _LEN.size
            body = bytes(self._map[at:at + body_len])
            at += body_len
            crc = _LEN.unpack_from(self._map, at)[0]
            if zlib.crc32(ns + kb + body) & 0xFFFFFFFF != crc:
                raise ArenaReadError(
                    f"record {index} failed checksum verification"
                )
            payload = codec.decode_value(body)
        except (codec.CodecError, struct.error, IndexError, ValueError) as err:
            _count("arena_read_failures")
            raise ArenaReadError(
                f"record {index} unreadable: {err}"
            ) from err
        except ArenaReadError:
            _count("arena_read_failures")
            raise
        _count("arena_reads")
        return ns.decode("utf-8"), kb.decode("utf-8"), payload

    def read_payload(self, index: int, expect_key: Optional[str] = None):
        namespace, key, payload = self.read(index)
        if expect_key is not None and key != expect_key:
            _count("arena_read_failures")
            raise ArenaReadError(
                f"record {index} keyed {key!r}, expected {expect_key!r}"
            )
        return payload

    def read_range(self, start: int, stop: int) -> List[object]:
        """Payloads of records ``[start, stop)`` in order."""
        return [self.read(index)[2] for index in range(start, stop)]


def reap_stale(directory: Optional[str] = None) -> List[str]:
    """Unlink arena segments (and lock sidecars) whose owner process is
    dead — leaked by a crashed host. Returns the reaped segment paths.
    Called by the daemon on restart; safe to call concurrently (unlink
    races are tolerated)."""
    directory = directory or arena_directory()
    reaped: List[str] = []
    try:
        entries = os.listdir(directory)
    except OSError:
        return reaped
    for name in entries:
        if not name.startswith("repro-arena-") or not name.endswith(".seg"):
            continue
        parts = name.split("-")
        try:
            pid = int(parts[2])
        except (IndexError, ValueError):
            continue
        if _pid_alive(pid):
            continue
        path = os.path.join(directory, name)
        try:
            os.unlink(path)
        except OSError:
            continue
        try:
            os.unlink(path + ".lock")
        except OSError:
            pass
        reaped.append(path)
        _count("arena_reaped")
    return reaped


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True  # alive but not ours (EPERM)
    return True
