"""IR instructions, operands, and definition slots.

Operands are :class:`Const` or :class:`Use`; definition sites are
:class:`Def`. ``Use.version`` / ``Def.version`` are ``None`` until SSA
construction fills them in, after which ``(variable, version)`` is a
unique SSA name (see :mod:`repro.analysis.ssa`).

Calls are the interesting case. A :class:`Call` carries, besides its
explicit actual arguments:

- ``may_define``: Defs for every scalar the call may modify — by-reference
  actuals and globals, filtered by interprocedural MOD information when it
  is available, or *all* of them under worst-case assumptions (the paper's
  Table 3 "without MOD" configuration);
- ``entry_uses``: Uses recording the value of each visible global at the
  call, which forward jump functions for globals are built from.

Both lists are filled by :func:`repro.summary.modref.annotate_call_effects`
before SSA construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.frontend.source import UNKNOWN_LOCATION, SourceLocation
from repro.ir.symbols import Variable

#: Binary operators. Comparisons and logicals produce 0/1 integers.
BINARY_OPS = (
    "+",
    "-",
    "*",
    "/",
    "mod",
    "max",
    "min",
    "eq",
    "ne",
    "lt",
    "le",
    "gt",
    "ge",
    "and",
    "or",
)

#: Unary operators.
UNARY_OPS = ("neg", "not", "abs")


class Const:
    """An integer constant operand."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = value

    def __repr__(self) -> str:
        return f"Const({self.value})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("const", self.value))


class Use:
    """A read of a scalar variable. Mutable: SSA renaming sets ``version``
    and constant substitution may rewrite the consuming instruction.

    ``from_source`` marks uses that correspond one-to-one with a variable
    reference in the original text; the substitution metric (the study's
    effectiveness measure) counts only those.
    """

    __slots__ = ("var", "version", "location", "from_source")

    def __init__(
        self,
        var: Variable,
        location: SourceLocation = UNKNOWN_LOCATION,
        from_source: bool = False,
    ):
        self.var = var
        self.version: Optional[int] = None
        self.location = location
        self.from_source = from_source

    @property
    def ssa_name(self) -> Tuple[Variable, Optional[int]]:
        return (self.var, self.version)

    def __repr__(self) -> str:
        suffix = f".{self.version}" if self.version is not None else ""
        return f"Use({self.var.name}{suffix})"


#: An operand is a constant or a variable read.
Operand = Union[Const, Use]


class Def:
    """A write of a scalar variable (versioned after SSA construction)."""

    __slots__ = ("var", "version")

    def __init__(self, var: Variable):
        self.var = var
        self.version: Optional[int] = None

    @property
    def ssa_name(self) -> Tuple[Variable, Optional[int]]:
        return (self.var, self.version)

    def __repr__(self) -> str:
        suffix = f".{self.version}" if self.version is not None else ""
        return f"Def({self.var.name}{suffix})"


class Instruction:
    """Base class. Subclasses enumerate their operand reads via ``uses()``
    and their definitions via ``defs()``; both return the live slot
    objects so passes can mutate versions in place."""

    __slots__ = ("location",)

    def __init__(self, location: SourceLocation = UNKNOWN_LOCATION):
        self.location = location

    def uses(self) -> List[Use]:
        return [op for op in self.operands() if isinstance(op, Use)]

    def operands(self) -> List[Operand]:
        """All value operands, in a stable order."""
        return []

    def defs(self) -> List[Def]:
        return []

    def replace_operand(self, old: Use, new: Operand) -> None:
        """Substitute operand ``old`` (by identity) with ``new``."""
        raise NotImplementedError

    @property
    def is_terminator(self) -> bool:
        return isinstance(self, (Jump, CondBranch, Return, Halt))


def _replace_in_list(items: List[Operand], old: Use, new: Operand) -> bool:
    for index, item in enumerate(items):
        if item is old:
            items[index] = new
            return True
    return False


class Assign(Instruction):
    """``target = source`` (copy or constant load)."""

    __slots__ = ("target", "source")

    def __init__(self, target: Def, source: Operand, location=UNKNOWN_LOCATION):
        super().__init__(location)
        self.target = target
        self.source = source

    def operands(self) -> List[Operand]:
        return [self.source]

    def defs(self) -> List[Def]:
        return [self.target]

    def replace_operand(self, old: Use, new: Operand) -> None:
        if self.source is old:
            self.source = new


class BinOp(Instruction):
    """``target = left op right``."""

    __slots__ = ("target", "op", "left", "right")

    def __init__(
        self, target: Def, op: str, left: Operand, right: Operand,
        location=UNKNOWN_LOCATION,
    ):
        super().__init__(location)
        assert op in BINARY_OPS, op
        self.target = target
        self.op = op
        self.left = left
        self.right = right

    def operands(self) -> List[Operand]:
        return [self.left, self.right]

    def defs(self) -> List[Def]:
        return [self.target]

    def replace_operand(self, old: Use, new: Operand) -> None:
        if self.left is old:
            self.left = new
        if self.right is old:
            self.right = new


class UnOp(Instruction):
    """``target = op operand``."""

    __slots__ = ("target", "op", "operand")

    def __init__(self, target: Def, op: str, operand: Operand, location=UNKNOWN_LOCATION):
        super().__init__(location)
        assert op in UNARY_OPS, op
        self.target = target
        self.op = op
        self.operand = operand

    def operands(self) -> List[Operand]:
        return [self.operand]

    def defs(self) -> List[Def]:
        return [self.target]

    def replace_operand(self, old: Use, new: Operand) -> None:
        if self.operand is old:
            self.operand = new


class ArrayLoad(Instruction):
    """``target = array(indices...)``. Array contents are not tracked by
    the constant propagator (paper §4 limitation 2), so the loaded value
    is always unknown — but indices are ordinary operands and may be
    substituted."""

    __slots__ = ("target", "array", "indices")

    def __init__(self, target: Def, array: Variable, indices: List[Operand],
                 location=UNKNOWN_LOCATION):
        super().__init__(location)
        self.target = target
        self.array = array
        self.indices = list(indices)

    def operands(self) -> List[Operand]:
        return list(self.indices)

    def defs(self) -> List[Def]:
        return [self.target]

    def replace_operand(self, old: Use, new: Operand) -> None:
        _replace_in_list(self.indices, old, new)


class ArrayStore(Instruction):
    """``array(indices...) = value``."""

    __slots__ = ("array", "indices", "value")

    def __init__(self, array: Variable, indices: List[Operand], value: Operand,
                 location=UNKNOWN_LOCATION):
        super().__init__(location)
        self.array = array
        self.indices = list(indices)
        self.value = value

    def operands(self) -> List[Operand]:
        return list(self.indices) + [self.value]

    def replace_operand(self, old: Use, new: Operand) -> None:
        if not _replace_in_list(self.indices, old, new) and self.value is old:
            self.value = new


class CallArg:
    """One actual argument at a call site.

    ``value`` is the operand (Const or Use) for scalar actuals; ``array``
    is set instead when a whole array is passed. A scalar actual is
    *bindable* (the callee can modify it through its reference formal)
    exactly when it is a Use of a non-temporary scalar.
    """

    __slots__ = ("value", "array", "location")

    def __init__(self, value: Optional[Operand] = None,
                 array: Optional[Variable] = None,
                 location: SourceLocation = UNKNOWN_LOCATION):
        assert (value is None) != (array is None)
        self.value = value
        self.array = array
        self.location = location

    @property
    def is_array(self) -> bool:
        return self.array is not None

    @property
    def bindable_var(self) -> Optional[Variable]:
        """The caller variable a reference formal would alias, if any."""
        if isinstance(self.value, Use) and not self.value.var.is_temp:
            return self.value.var
        return None

    def __repr__(self) -> str:
        if self.is_array:
            return f"CallArg(array={self.array.name})"
        return f"CallArg({self.value!r})"


class Call(Instruction):
    """``[result =] CALL callee(args...)`` with explicit side-effect slots.

    ``may_define`` and ``entry_uses`` are populated by the call-effect
    annotation pass; SSA renaming treats ``entry_uses`` as reads occurring
    at the call and ``may_define`` as writes it performs.
    """

    __slots__ = ("callee", "args", "result", "may_define", "entry_uses")

    def __init__(self, callee: str, args: List[CallArg],
                 result: Optional[Def] = None, location=UNKNOWN_LOCATION):
        super().__init__(location)
        self.callee = callee
        self.args = list(args)
        self.result = result
        self.may_define: List[Def] = []
        self.entry_uses: List[Use] = []

    def operands(self) -> List[Operand]:
        ops: List[Operand] = [a.value for a in self.args if a.value is not None]
        ops.extend(self.entry_uses)
        return ops

    def defs(self) -> List[Def]:
        result = list(self.may_define)
        if self.result is not None:
            result.append(self.result)
        return result

    def replace_operand(self, old: Use, new: Operand) -> None:
        for arg in self.args:
            if arg.value is old:
                arg.value = new
                return
        # entry_uses exist only to observe values; they are never
        # rewritten to constants.

    def defined_var_def(self, var: Variable) -> Optional[Def]:
        """The Def slot for ``var`` in may_define, if present."""
        for d in self.may_define:
            if d.var is var:
                return d
        return None

    def entry_use_of(self, var: Variable) -> Optional[Use]:
        for use in self.entry_uses:
            if use.var is var:
                return use
        return None


class Read(Instruction):
    """``READ *, targets`` — each target receives an unknowable value."""

    __slots__ = ("targets",)

    def __init__(self, targets: List[Def], location=UNKNOWN_LOCATION):
        super().__init__(location)
        self.targets = list(targets)

    def defs(self) -> List[Def]:
        return list(self.targets)

    def replace_operand(self, old: Use, new: Operand) -> None:
        pass


class Print(Instruction):
    """``PRINT *, items`` — items are operands or literal strings."""

    __slots__ = ("items",)

    def __init__(self, items: Sequence[Union[Operand, str]], location=UNKNOWN_LOCATION):
        super().__init__(location)
        self.items: List[Union[Operand, str]] = list(items)

    def operands(self) -> List[Operand]:
        return [item for item in self.items if not isinstance(item, str)]

    def replace_operand(self, old: Use, new: Operand) -> None:
        for index, item in enumerate(self.items):
            if item is old:
                self.items[index] = new
                return


class Jump(Instruction):
    """Unconditional branch."""

    __slots__ = ("target",)

    def __init__(self, target: "BasicBlock", location=UNKNOWN_LOCATION):
        super().__init__(location)
        self.target = target

    def replace_operand(self, old: Use, new: Operand) -> None:
        pass


class CondBranch(Instruction):
    """Branch on ``cond != 0``."""

    __slots__ = ("cond", "if_true", "if_false")

    def __init__(self, cond: Operand, if_true: "BasicBlock", if_false: "BasicBlock",
                 location=UNKNOWN_LOCATION):
        super().__init__(location)
        self.cond = cond
        self.if_true = if_true
        self.if_false = if_false

    def operands(self) -> List[Operand]:
        return [self.cond]

    def replace_operand(self, old: Use, new: Operand) -> None:
        if self.cond is old:
            self.cond = new


class Return(Instruction):
    """Return to caller; ``value`` is set for INTEGER FUNCTIONs.

    ``exit_uses`` — one Use per scalar formal/global, observing the value
    each has when control returns — is populated by the call-effect
    annotation pass. Return jump functions are built from the
    value-numbering expressions of these uses. They participate in SSA
    renaming and keep stores to observable storage alive through DCE, but
    they are not substitution targets.
    """

    __slots__ = ("value", "exit_uses")

    def __init__(self, value: Optional[Operand] = None, location=UNKNOWN_LOCATION):
        super().__init__(location)
        self.value = value
        self.exit_uses: List[Use] = []

    def operands(self) -> List[Operand]:
        ops: List[Operand] = [] if self.value is None else [self.value]
        ops.extend(self.exit_uses)
        return ops

    def replace_operand(self, old: Use, new: Operand) -> None:
        if self.value is old:
            self.value = new

    def exit_use_of(self, var: Variable) -> Optional[Use]:
        for use in self.exit_uses:
            if use.var is var:
                return use
        return None


class Halt(Instruction):
    """``STOP`` — program termination."""

    __slots__ = ()

    def replace_operand(self, old: Use, new: Operand) -> None:
        pass


class Phi(Instruction):
    """SSA phi: ``target = phi(block -> operand, ...)``."""

    __slots__ = ("target", "incoming")

    def __init__(self, target: Def, incoming: Dict["BasicBlock", Operand],
                 location=UNKNOWN_LOCATION):
        super().__init__(location)
        self.target = target
        self.incoming = dict(incoming)

    def operands(self) -> List[Operand]:
        return list(self.incoming.values())

    def defs(self) -> List[Def]:
        return [self.target]

    def replace_operand(self, old: Use, new: Operand) -> None:
        for block, operand in self.incoming.items():
            if operand is old:
                self.incoming[block] = new
                return
