"""Whole-program containers: procedures, COMMON blocks, and the Program.

A :class:`Program` owns every :class:`Procedure` plus the shared global
:class:`~repro.ir.symbols.Variable` objects that COMMON blocks introduce.
Interprocedural passes (call graph, MOD/REF, IPCP) all operate on a
Program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.frontend.ast import ProcedureKind
from repro.frontend.source import SourceFile
from repro.ir.cfg import ControlFlowGraph
from repro.ir.instructions import Call
from repro.ir.symbols import SymbolTable, Variable, VarKind


@dataclass
class CommonBlock:
    """A named COMMON block: an ordered list of shared global variables.

    The first declaration of a block fixes its member names and shapes;
    every later declaration must match (MiniFortran does not support
    renaming COMMON storage positionally across procedures — see
    DESIGN.md).
    """

    name: str
    members: List[Variable] = field(default_factory=list)

    def member(self, name: str) -> Optional[Variable]:
        for variable in self.members:
            if variable.name == name:
                return variable
        return None


class Procedure:
    """One lowered program unit: CFG + symbol table + interface."""

    def __init__(
        self,
        name: str,
        kind: ProcedureKind,
        formals: List[Variable],
        cfg: ControlFlowGraph,
        symbols: SymbolTable,
        result_var: Optional[Variable] = None,
    ):
        self.name = name
        self.kind = kind
        self.formals = formals
        self.cfg = cfg
        self.symbols = symbols
        #: For INTEGER FUNCTIONs, the variable holding the return value.
        self.result_var = result_var
        #: Globals referenced or modified anywhere in this procedure
        #: (members of COMMON blocks the procedure declares).
        self.visible_globals: List[Variable] = []

    @property
    def is_function(self) -> bool:
        return self.kind is ProcedureKind.FUNCTION

    @property
    def is_main(self) -> bool:
        return self.kind is ProcedureKind.PROGRAM

    def formal_position(self, variable: Variable) -> Optional[int]:
        """Index of ``variable`` in the formal list, or None."""
        for index, formal in enumerate(self.formals):
            if formal is variable:
                return index
        return None

    def call_sites(self) -> List[Call]:
        """Every call instruction in this procedure, in block order."""
        return [i for i in self.cfg.instructions() if isinstance(i, Call)]

    def entry_names(self) -> List[Variable]:
        """The variables whose entry values interprocedural propagation
        tracks for this procedure: scalar formals plus visible scalar
        globals (the paper's extended notion of "parameter")."""
        names = [v for v in self.formals if v.is_scalar]
        names.extend(v for v in self.visible_globals if v.is_scalar)
        return names

    def __repr__(self) -> str:
        return f"Procedure({self.name}, {self.kind.value})"


class Program:
    """A whole lowered program."""

    def __init__(self, source: Optional[SourceFile] = None):
        self.procedures: Dict[str, Procedure] = {}
        self.commons: Dict[str, CommonBlock] = {}
        self.main: Optional[Procedure] = None
        self.source = source
        #: Static initial values of scalar globals (from BLOCK DATA /
        #: DATA statements); globals not listed start undefined.
        self.global_initial_values: Dict[Variable, int] = {}

    def add_procedure(self, procedure: Procedure) -> None:
        self.procedures[procedure.name] = procedure
        if procedure.is_main:
            self.main = procedure

    def procedure(self, name: str) -> Procedure:
        return self.procedures[name.lower()]

    def __iter__(self) -> Iterator[Procedure]:
        return iter(self.procedures.values())

    def __len__(self) -> int:
        return len(self.procedures)

    def global_variables(self) -> List[Variable]:
        """All COMMON members across all blocks, in declaration order."""
        result: List[Variable] = []
        for block in self.commons.values():
            result.extend(block.members)
        return result

    def scalar_globals(self) -> List[Variable]:
        return [v for v in self.global_variables() if v.is_scalar]

    def call_sites(self) -> List[Call]:
        sites: List[Call] = []
        for procedure in self:
            sites.extend(procedure.call_sites())
        return sites
