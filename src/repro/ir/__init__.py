"""Three-address intermediate representation and control-flow graphs.

The IR is variable-based (not pure-register): instructions define and use
:class:`~repro.ir.symbols.Variable` objects through ``Def`` / ``Use``
slots. Before SSA construction the version fields are ``None``; the SSA
pass (:mod:`repro.analysis.ssa`) fills in versions so that each
``(variable, version)`` pair is a distinct SSA name. This keeps lowering,
printing, and source-level substitution accounting simple while still
supporting sparse analyses.
"""

from repro.ir.cfg import BasicBlock, ControlFlowGraph
from repro.ir.instructions import (
    ArrayLoad,
    ArrayStore,
    Assign,
    BinOp,
    Call,
    CallArg,
    CondBranch,
    Const,
    Def,
    Halt,
    Instruction,
    Jump,
    Phi,
    Print,
    Read,
    Return,
    UnOp,
    Use,
)
from repro.ir.lowering import LoweringError, lower_module
from repro.ir.module import CommonBlock, Procedure, Program
from repro.ir.printer import format_instruction, format_procedure, format_program
from repro.ir.symbols import SymbolTable, Variable, VarKind

__all__ = [
    "ArrayLoad",
    "ArrayStore",
    "Assign",
    "BasicBlock",
    "BinOp",
    "Call",
    "CallArg",
    "CommonBlock",
    "CondBranch",
    "Const",
    "ControlFlowGraph",
    "Def",
    "Halt",
    "Instruction",
    "Jump",
    "LoweringError",
    "Phi",
    "Print",
    "Procedure",
    "Program",
    "Read",
    "Return",
    "SymbolTable",
    "UnOp",
    "Use",
    "VarKind",
    "Variable",
    "format_instruction",
    "format_procedure",
    "format_program",
    "lower_module",
]
