"""Graphviz DOT rendering of CFGs and call graphs.

Debugging/teaching aids: ``cfg_to_dot`` draws one procedure's control
flow (instructions per block, branch edges labeled T/F), and
``call_graph_to_dot`` draws the program's call graph with one edge per
call site. The CLI exposes them via ``analyze --dot DIR``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.callgraph.callgraph import CallGraph
from repro.ir.cfg import ControlFlowGraph
from repro.ir.instructions import CondBranch
from repro.ir.module import Procedure, Program
from repro.ir.printer import format_instruction


def _escape(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\l")
    )


def cfg_to_dot(procedure: Procedure, max_instructions: int = 12) -> str:
    """Render one procedure's CFG as a DOT digraph."""
    lines: List[str] = [
        f'digraph "{procedure.name}" {{',
        '  node [shape=box, fontname="monospace", fontsize=9];',
        f'  label="{procedure.kind.value} {procedure.name}";',
    ]
    for block in procedure.cfg.blocks:
        rendered = [format_instruction(i) for i in block.instructions]
        if len(rendered) > max_instructions:
            extra = len(rendered) - max_instructions
            rendered = rendered[:max_instructions] + [f"... (+{extra} more)"]
        body = _escape("\n".join([f"{block.name}:"] + rendered) + "\n")
        lines.append(f'  "{block.name}" [label="{body}"];')
    for block in procedure.cfg.blocks:
        terminator = block.terminator
        if isinstance(terminator, CondBranch):
            lines.append(
                f'  "{block.name}" -> "{terminator.if_true.name}" [label="T"];'
            )
            if terminator.if_false is not terminator.if_true:
                lines.append(
                    f'  "{block.name}" -> "{terminator.if_false.name}" '
                    '[label="F"];'
                )
        else:
            for successor in block.successors():
                lines.append(f'  "{block.name}" -> "{successor.name}";')
    lines.append("}")
    return "\n".join(lines)


def call_graph_to_dot(callgraph: CallGraph,
                      constants=None) -> str:
    """Render the call graph; when a ConstantsResult is supplied, each
    node is annotated with its discovered constants."""
    lines: List[str] = [
        "digraph callgraph {",
        '  node [shape=ellipse, fontname="monospace", fontsize=10];',
    ]
    for procedure in callgraph.program:
        label = procedure.name
        if constants is not None:
            pairs = constants.constants_of(procedure.name)
            if pairs:
                rendered = ", ".join(
                    f"{var.name}={value}"
                    for var, value in sorted(
                        pairs.items(), key=lambda item: item[0].name
                    )
                )
                label = f"{procedure.name}\\n{{{rendered}}}"
        shape = ', shape=doubleoctagon' if procedure.is_main else ""
        lines.append(f'  "{procedure.name}" [label="{label}"{shape}];')
    for site in callgraph.sites:
        lines.append(f'  "{site.caller.name}" -> "{site.callee.name}";')
    lines.append("}")
    return "\n".join(lines)


def write_dot_files(program: Program, callgraph: CallGraph, directory: str,
                    constants=None) -> List[str]:
    """Write callgraph.dot plus one cfg_<proc>.dot per procedure."""
    import os

    os.makedirs(directory, exist_ok=True)
    paths: List[str] = []
    path = os.path.join(directory, "callgraph.dot")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(call_graph_to_dot(callgraph, constants))
    paths.append(path)
    for procedure in program:
        path = os.path.join(directory, f"cfg_{procedure.name}.dot")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(cfg_to_dot(procedure))
        paths.append(path)
    return paths
