"""Type constants for the IR.

MiniFortran is monotyped — every scalar is INTEGER (the study propagates
integer constants only, §4) — so this module exists to make the
restriction explicit and give shape queries one home.
"""

from __future__ import annotations

import enum


class Type(enum.Enum):
    """Scalar value types. Only INTEGER exists; LOGICAL values are
    represented as 0/1 integers by lowering."""

    INTEGER = "integer"


#: The type every MiniFortran scalar has.
INTEGER = Type.INTEGER
