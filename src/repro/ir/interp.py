"""A reference interpreter for lowered (non-SSA) programs.

The interpreter serves two purposes:

1. **Soundness oracle** — run a program, record the values of every
   formal and global at each procedure entry, and check that every pair
   the analyzer put in ``CONSTANTS(p)`` actually held on every invocation
   (the property-based test suite's strongest invariant);
2. **Runnable examples** — the example scripts execute the programs they
   analyze.

Semantics pinned down here match lowering's assumptions: call-by-
reference for scalar variable actuals (writebacks propagate), shared
COMMON storage, FORTRAN integer division (truncation toward zero),
uninitialized variables read as an arbitrary-but-fixed value (0), READ
pulling from a supplied input stream (0 once exhausted).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.analysis.expr import fold_operator
from repro.ir.cfg import BasicBlock
from repro.ir.instructions import (
    ArrayLoad,
    ArrayStore,
    Assign,
    BinOp,
    Call,
    CondBranch,
    Const,
    Halt,
    Jump,
    Operand,
    Phi,
    Print,
    Read,
    Return,
    UnOp,
    Use,
)
from repro.ir.module import Procedure, Program
from repro.ir.symbols import Variable


class InterpreterError(Exception):
    """Raised for runtime errors (division by zero, step overrun)."""


#: Signature of the procedure-entry tracing hook: called once per
#: invocation with the procedure name and the entry snapshot (formal and
#: scalar-global bindings). The dict is the caller's own copy; mutating
#: it does not affect execution or the recorded trace.
EntryHook = Callable[[str, Dict["Variable", int]], None]


class _Halt(Exception):
    """Internal: unwinds the call stack on STOP."""


@dataclass
class Trace:
    """Observations from one execution."""

    #: procedure name -> list of {entry variable: value} per invocation.
    entries: Dict[str, List[Dict[Variable, int]]] = field(
        default_factory=lambda: defaultdict(list)
    )
    #: Lines produced by PRINT statements.
    output: List[str] = field(default_factory=list)
    #: Total instructions executed (fuel consumed).
    steps: int = 0
    #: Conditional branches evaluated (Jump does not count — folding a
    #: CondBranch to a Jump therefore shows up as a reduction here).
    branches: int = 0
    #: Procedure invocations made through Call instructions.
    calls: int = 0

    def dynamic_counters(self) -> Dict[str, int]:
        """The deterministic dynamic-cost counters of this execution, in
        the shape BENCH_OPT.json records per program."""
        return {
            "steps": self.steps,
            "branches": self.branches,
            "calls": self.calls,
        }

    def invocations(self, procedure_name: str) -> int:
        return len(self.entries.get(procedure_name, ()))

    def constant_violations(
        self, procedure_name: str, claimed: Dict[Variable, int]
    ) -> List[str]:
        """Check claimed CONSTANTS(p) pairs against every recorded
        invocation; returns human-readable violations (empty = sound).

        Matching is by *name*: Variables have identity semantics, and
        the claims usually come from a separately lowered copy of the
        program (the analysis mutates its input, so oracles execute a
        fresh lowering). Within one procedure a name resolves to exactly
        one variable, so the name is a faithful key.
        """
        problems = []
        for index, snapshot in enumerate(self.entries.get(procedure_name, ())):
            by_name = {var.name: value for var, value in snapshot.items()}
            for var, value in claimed.items():
                seen = by_name.get(var.name)
                if seen is not None and seen != value:
                    problems.append(
                        f"{procedure_name} invocation {index}: {var.name} was "
                        f"{seen}, analyzer claimed {value}"
                    )
        return problems


class _Frame:
    """One activation: scalar cells and array storage.

    Cells are single-element lists so that reference formals can alias
    the caller's storage directly.
    """

    def __init__(self):
        self.scalars: Dict[Variable, List[int]] = {}
        self.arrays: Dict[Variable, Dict[Tuple[int, ...], int]] = {}

    def cell(self, var: Variable) -> List[int]:
        existing = self.scalars.get(var)
        if existing is None:
            existing = [0]
            self.scalars[var] = existing
        return existing

    def array(self, var: Variable) -> Dict[Tuple[int, ...], int]:
        existing = self.arrays.get(var)
        if existing is None:
            existing = {}
            self.arrays[var] = existing
        return existing


class Interpreter:
    """Executes a lowered program.

    ``inputs`` feeds READ statements; ``fuel`` bounds total executed
    instructions (InterpreterError when exhausted) so analyses can be
    checked against looping programs safely.
    """

    def __init__(
        self,
        program: Program,
        inputs: Optional[Sequence[int]] = None,
        fuel: int = 1_000_000,
        on_entry: Optional[EntryHook] = None,
    ):
        self.program = program
        self._input_iter: Iterator[int] = iter(inputs or ())
        self.fuel = fuel
        self.on_entry = on_entry
        self.trace = Trace()
        self._globals = _Frame()
        for variable, value in program.global_initial_values.items():
            self._globals.cell(variable)[0] = value

    # -- public ------------------------------------------------------------

    def run(self) -> Trace:
        """Execute from the main program; returns the trace."""
        main = self.program.main
        if main is None:
            raise InterpreterError("program has no PROGRAM unit")
        try:
            self._invoke(main, [])
        except _Halt:
            pass
        return self.trace

    # -- execution ---------------------------------------------------------------

    def _next_input(self) -> int:
        return next(self._input_iter, 0)

    def _invoke(self, procedure: Procedure, arg_cells: List[object]) -> int:
        """Run one procedure; returns the function result (0 for
        subroutines). ``arg_cells`` holds scalar cells (lists) or array
        dicts, positionally matching the formals."""
        frame = _Frame()
        for formal, cell in zip(procedure.formals, arg_cells):
            if formal.is_array:
                frame.arrays[formal] = cell
            else:
                frame.scalars[formal] = cell

        snapshot: Dict[Variable, int] = {}
        for formal in procedure.formals:
            if formal.is_scalar:
                snapshot[formal] = frame.cell(formal)[0]
        for variable in self.program.scalar_globals():
            snapshot[variable] = self._globals.cell(variable)[0]
        self.trace.entries[procedure.name].append(snapshot)
        if self.on_entry is not None:
            self.on_entry(procedure.name, dict(snapshot))

        block: Optional[BasicBlock] = procedure.cfg.entry
        while block is not None:
            block, returned = self._run_block(procedure, frame, block)
            if returned is not None or block is None:
                if procedure.result_var is not None and returned is not None:
                    return returned
                return 0
        return 0

    def _cell(self, procedure: Procedure, frame: _Frame, var: Variable):
        if var.is_global:
            target_frame = self._globals
        else:
            target_frame = frame
        if var.is_array:
            return target_frame.array(var)
        return target_frame.cell(var)

    def _value(self, procedure: Procedure, frame: _Frame, operand: Operand) -> int:
        if isinstance(operand, Const):
            return operand.value
        return self._cell(procedure, frame, operand.var)[0]

    def _run_block(
        self, procedure: Procedure, frame: _Frame, block: BasicBlock
    ):
        """Execute one block; returns (next_block, returned_value)."""
        for instruction in block.instructions:
            self.fuel -= 1
            self.trace.steps += 1
            if self.fuel <= 0:
                raise InterpreterError("fuel exhausted (infinite loop?)")
            if isinstance(instruction, Phi):
                raise InterpreterError(
                    "cannot interpret SSA form (run on a freshly lowered program)"
                )
            if isinstance(instruction, Assign):
                value = self._value(procedure, frame, instruction.source)
                self._cell(procedure, frame, instruction.target.var)[0] = value
            elif isinstance(instruction, BinOp):
                left = self._value(procedure, frame, instruction.left)
                right = self._value(procedure, frame, instruction.right)
                result = fold_operator(instruction.op, [left, right])
                if result is None:
                    raise InterpreterError(
                        f"division by zero at {instruction.location}"
                    )
                self._cell(procedure, frame, instruction.target.var)[0] = result
            elif isinstance(instruction, UnOp):
                operand = self._value(procedure, frame, instruction.operand)
                result = fold_operator(instruction.op, [operand])
                self._cell(procedure, frame, instruction.target.var)[0] = result
            elif isinstance(instruction, ArrayLoad):
                storage = self._cell(procedure, frame, instruction.array)
                key = tuple(
                    self._value(procedure, frame, index)
                    for index in instruction.indices
                )
                value = storage.get(key, 0)
                self._cell(procedure, frame, instruction.target.var)[0] = value
            elif isinstance(instruction, ArrayStore):
                storage = self._cell(procedure, frame, instruction.array)
                key = tuple(
                    self._value(procedure, frame, index)
                    for index in instruction.indices
                )
                storage[key] = self._value(procedure, frame, instruction.value)
            elif isinstance(instruction, Call):
                self.trace.calls += 1
                self._run_call(procedure, frame, instruction)
            elif isinstance(instruction, Read):
                for target in instruction.targets:
                    self._cell(procedure, frame, target.var)[0] = self._next_input()
            elif isinstance(instruction, Print):
                rendered = []
                for item in instruction.items:
                    if isinstance(item, str):
                        rendered.append(item)
                    else:
                        rendered.append(str(self._value(procedure, frame, item)))
                self.trace.output.append(" ".join(rendered))
            elif isinstance(instruction, Jump):
                return instruction.target, None
            elif isinstance(instruction, CondBranch):
                self.trace.branches += 1
                cond = self._value(procedure, frame, instruction.cond)
                return (
                    instruction.if_true if cond != 0 else instruction.if_false
                ), None
            elif isinstance(instruction, Return):
                if instruction.value is not None:
                    return None, self._value(procedure, frame, instruction.value)
                return None, 0
            elif isinstance(instruction, Halt):
                raise _Halt()
        raise InterpreterError(f"block {block.name} has no terminator")

    def _run_call(self, procedure: Procedure, frame: _Frame, call: Call) -> None:
        callee = self.program.procedure(call.callee)
        arg_cells: List[object] = []
        for formal, arg in zip(callee.formals, call.args):
            if arg.is_array:
                arg_cells.append(self._cell(procedure, frame, arg.array))
            elif isinstance(arg.value, Use) and not arg.value.var.is_temp:
                # Call-by-reference: alias the caller's cell.
                arg_cells.append(self._cell(procedure, frame, arg.value.var))
            else:
                # Expression actual: a fresh cell; writebacks are lost.
                arg_cells.append([self._value(procedure, frame, arg.value)])
        result = self._invoke(callee, arg_cells)
        if call.result is not None:
            self._cell(procedure, frame, call.result.var)[0] = result


def run_program(
    program: Program,
    inputs: Optional[Sequence[int]] = None,
    fuel: int = 1_000_000,
    on_entry: Optional[EntryHook] = None,
) -> Trace:
    """Execute ``program`` (freshly lowered, not in SSA form)."""
    return Interpreter(program, inputs, fuel, on_entry).run()


def run_source(
    text: str,
    inputs: Optional[Sequence[int]] = None,
    fuel: int = 1_000_000,
    on_entry: Optional[EntryHook] = None,
) -> Trace:
    """Parse, lower, and execute MiniFortran source text."""
    from repro.frontend.parser import parse_source
    from repro.frontend.source import SourceFile
    from repro.ir.lowering import lower_module

    module = parse_source(text)
    program = lower_module(module, SourceFile("<string>", text))
    return run_program(program, inputs, fuel, on_entry)
