"""Human-readable dumps of the IR, for tests and debugging."""

from __future__ import annotations

from typing import List

from repro.ir.cfg import BasicBlock
from repro.ir.instructions import (
    ArrayLoad,
    ArrayStore,
    Assign,
    BinOp,
    Call,
    CondBranch,
    Const,
    Def,
    Halt,
    Instruction,
    Jump,
    Operand,
    Phi,
    Print,
    Read,
    Return,
    UnOp,
    Use,
)
from repro.ir.module import Procedure, Program


def format_operand(operand: Operand) -> str:
    if isinstance(operand, Const):
        return str(operand.value)
    suffix = f".{operand.version}" if operand.version is not None else ""
    return f"{operand.var.name}{suffix}"


def format_def(definition: Def) -> str:
    suffix = f".{definition.version}" if definition.version is not None else ""
    return f"{definition.var.name}{suffix}"


def format_instruction(instruction: Instruction) -> str:
    """One-line rendering of ``instruction``."""
    if isinstance(instruction, Assign):
        return f"{format_def(instruction.target)} = {format_operand(instruction.source)}"
    if isinstance(instruction, BinOp):
        return (
            f"{format_def(instruction.target)} = "
            f"{format_operand(instruction.left)} {instruction.op} "
            f"{format_operand(instruction.right)}"
        )
    if isinstance(instruction, UnOp):
        return (
            f"{format_def(instruction.target)} = "
            f"{instruction.op} {format_operand(instruction.operand)}"
        )
    if isinstance(instruction, ArrayLoad):
        indices = ", ".join(format_operand(i) for i in instruction.indices)
        return f"{format_def(instruction.target)} = {instruction.array.name}({indices})"
    if isinstance(instruction, ArrayStore):
        indices = ", ".join(format_operand(i) for i in instruction.indices)
        return f"{instruction.array.name}({indices}) = {format_operand(instruction.value)}"
    if isinstance(instruction, Call):
        args = ", ".join(
            arg.array.name if arg.is_array else format_operand(arg.value)
            for arg in instruction.args
        )
        prefix = ""
        if instruction.result is not None:
            prefix = f"{format_def(instruction.result)} = "
        effects = ""
        if instruction.may_define:
            defined = ", ".join(format_def(d) for d in instruction.may_define)
            effects = f" [defines {defined}]"
        return f"{prefix}call {instruction.callee}({args}){effects}"
    if isinstance(instruction, Read):
        targets = ", ".join(format_def(d) for d in instruction.targets)
        return f"read {targets}"
    if isinstance(instruction, Print):
        items = ", ".join(
            repr(item) if isinstance(item, str) else format_operand(item)
            for item in instruction.items
        )
        return f"print {items}"
    if isinstance(instruction, Jump):
        return f"jump {instruction.target.name}"
    if isinstance(instruction, CondBranch):
        return (
            f"branch {format_operand(instruction.cond)} ? "
            f"{instruction.if_true.name} : {instruction.if_false.name}"
        )
    if isinstance(instruction, Return):
        if instruction.value is None:
            return "return"
        return f"return {format_operand(instruction.value)}"
    if isinstance(instruction, Halt):
        return "halt"
    if isinstance(instruction, Phi):
        parts = ", ".join(
            f"{block.name}: {format_operand(op)}"
            for block, op in instruction.incoming.items()
        )
        return f"{format_def(instruction.target)} = phi({parts})"
    return repr(instruction)


def format_block(block: BasicBlock) -> str:
    lines = [f"{block.name}:"]
    lines.extend(f"  {format_instruction(i)}" for i in block.instructions)
    return "\n".join(lines)


def format_procedure(procedure: Procedure) -> str:
    """Multi-line rendering of one procedure's CFG."""
    formals = ", ".join(v.name for v in procedure.formals)
    lines = [f"{procedure.kind.value} {procedure.name}({formals}):"]
    for block in procedure.cfg.blocks:
        lines.append(format_block(block))
    return "\n".join(lines)


def format_program(program: Program) -> str:
    """Render every procedure in the program."""
    chunks: List[str] = []
    for procedure in program:
        chunks.append(format_procedure(procedure))
    return "\n\n".join(chunks)
