"""Basic blocks and control-flow graphs."""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Set

from repro.ir.instructions import CondBranch, Instruction, Jump, Phi


class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator.

    Phi nodes, when present, sit at the front of ``instructions``.
    """

    __slots__ = ("uid", "name", "instructions")

    _ids = itertools.count()

    def __init__(self, name: Optional[str] = None):
        self.uid = next(BasicBlock._ids)
        self.name = name or f"B{self.uid}"
        self.instructions: List[Instruction] = []

    def append(self, instruction: Instruction) -> Instruction:
        self.instructions.append(instruction)
        return instruction

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        if isinstance(term, Jump):
            return [term.target]
        if isinstance(term, CondBranch):
            if term.if_true is term.if_false:
                return [term.if_true]
            return [term.if_true, term.if_false]
        return []

    def phis(self) -> List[Phi]:
        result = []
        for instruction in self.instructions:
            if isinstance(instruction, Phi):
                result.append(instruction)
            else:
                break
        return result

    def non_phi_instructions(self) -> List[Instruction]:
        return [i for i in self.instructions if not isinstance(i, Phi)]

    def insert_phi(self, phi: Phi) -> None:
        self.instructions.insert(0, phi)

    def __repr__(self) -> str:
        return f"BasicBlock({self.name})"

    def __hash__(self) -> int:
        return self.uid

    def __eq__(self, other: object) -> bool:
        return self is other


class ControlFlowGraph:
    """The CFG of one procedure: an entry block plus a block list.

    Predecessor sets are recomputed on demand (:meth:`predecessors`);
    passes that restructure the graph call :meth:`remove_unreachable` to
    drop dead blocks and fix phi inputs.
    """

    __slots__ = ("entry", "blocks")

    def __init__(self, entry: BasicBlock):
        self.entry = entry
        self.blocks: List[BasicBlock] = [entry]

    def new_block(self, name: Optional[str] = None) -> BasicBlock:
        block = BasicBlock(name)
        self.blocks.append(block)
        return block

    def predecessors(self) -> Dict[BasicBlock, List[BasicBlock]]:
        """Map from block to its predecessor list (in block order)."""
        preds: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in self.blocks}
        for block in self.blocks:
            for succ in block.successors():
                preds[succ].append(block)
        return preds

    def reverse_postorder(self) -> List[BasicBlock]:
        """Blocks in reverse postorder from the entry (reachable only)."""
        visited: Set[BasicBlock] = set()
        order: List[BasicBlock] = []

        def visit(block: BasicBlock) -> None:
            stack = [(block, iter(block.successors()))]
            visited.add(block)
            while stack:
                current, successors = stack[-1]
                advanced = False
                for succ in successors:
                    if succ not in visited:
                        visited.add(succ)
                        stack.append((succ, iter(succ.successors())))
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        visit(self.entry)
        order.reverse()
        return order

    def reachable_blocks(self) -> Set[BasicBlock]:
        return set(self.reverse_postorder())

    def remove_unreachable(self) -> List[BasicBlock]:
        """Delete unreachable blocks; prune their phi contributions.

        Returns the removed blocks.
        """
        reachable = self.reachable_blocks()
        removed = [b for b in self.blocks if b not in reachable]
        if not removed:
            return []
        removed_set = set(removed)
        self.blocks = [b for b in self.blocks if b in reachable]
        for block in self.blocks:
            for phi in block.phis():
                for dead in list(phi.incoming):
                    if dead in removed_set:
                        del phi.incoming[dead]
        return removed

    def instructions(self) -> Iterator[Instruction]:
        """All instructions in block order."""
        for block in self.blocks:
            yield from block.instructions

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)
