"""Deep-copying procedures — the substrate for procedure cloning.

Cloning duplicates a procedure's CFG, instructions, and local symbol
objects under a new name. Globals (COMMON members) are shared with the
original — they name the same storage — while formals, locals,
temporaries, and the function-result variable are replaced by fresh
:class:`Variable` objects. SSA versions are preserved verbatim, so a
procedure in SSA form clones to a valid SSA procedure.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.ir.cfg import BasicBlock, ControlFlowGraph
from repro.ir.instructions import (
    ArrayLoad,
    ArrayStore,
    Assign,
    BinOp,
    Call,
    CallArg,
    CondBranch,
    Const,
    Def,
    Halt,
    Instruction,
    Jump,
    Operand,
    Phi,
    Print,
    Read,
    Return,
    UnOp,
    Use,
)
from repro.ir.module import Procedure
from repro.ir.symbols import SymbolTable, Variable, VarKind


class _Cloner:
    def __init__(self, procedure: Procedure, new_name: str):
        self.procedure = procedure
        self.new_name = new_name
        self.var_map: Dict[Variable, Variable] = {}
        self.block_map: Dict[BasicBlock, BasicBlock] = {}
        self.symbols = SymbolTable(new_name)

    def map_var(self, var: Variable) -> Variable:
        if var.is_global:
            return var  # shared storage
        mapped = self.var_map.get(var)
        if mapped is None:
            mapped = Variable(
                var.name, var.kind, is_array=var.is_array, dims=var.dims
            )
            self.var_map[var] = mapped
        return mapped

    def map_operand(self, operand: Optional[Operand]) -> Optional[Operand]:
        if operand is None or isinstance(operand, Const):
            return operand
        use = Use(self.map_var(operand.var), operand.location, operand.from_source)
        use.version = operand.version
        return use

    def map_def(self, definition: Optional[Def]) -> Optional[Def]:
        if definition is None:
            return None
        new_def = Def(self.map_var(definition.var))
        new_def.version = definition.version
        return new_def

    def map_block(self, block: BasicBlock) -> BasicBlock:
        mapped = self.block_map.get(block)
        if mapped is None:
            mapped = BasicBlock(block.name)
            self.block_map[block] = mapped
        return mapped

    def clone_instruction(self, instruction: Instruction) -> Instruction:
        loc = instruction.location
        if isinstance(instruction, Assign):
            return Assign(
                self.map_def(instruction.target),
                self.map_operand(instruction.source),
                loc,
            )
        if isinstance(instruction, BinOp):
            return BinOp(
                self.map_def(instruction.target),
                instruction.op,
                self.map_operand(instruction.left),
                self.map_operand(instruction.right),
                loc,
            )
        if isinstance(instruction, UnOp):
            return UnOp(
                self.map_def(instruction.target),
                instruction.op,
                self.map_operand(instruction.operand),
                loc,
            )
        if isinstance(instruction, ArrayLoad):
            return ArrayLoad(
                self.map_def(instruction.target),
                self.map_var(instruction.array),
                [self.map_operand(i) for i in instruction.indices],
                loc,
            )
        if isinstance(instruction, ArrayStore):
            return ArrayStore(
                self.map_var(instruction.array),
                [self.map_operand(i) for i in instruction.indices],
                self.map_operand(instruction.value),
                loc,
            )
        if isinstance(instruction, Call):
            args = []
            for arg in instruction.args:
                if arg.is_array:
                    args.append(
                        CallArg(array=self.map_var(arg.array), location=arg.location)
                    )
                else:
                    args.append(
                        CallArg(value=self.map_operand(arg.value), location=arg.location)
                    )
            call = Call(instruction.callee, args, self.map_def(instruction.result), loc)
            call.may_define = [self.map_def(d) for d in instruction.may_define]
            call.entry_uses = [self.map_operand(u) for u in instruction.entry_uses]
            return call
        if isinstance(instruction, Read):
            return Read([self.map_def(t) for t in instruction.targets], loc)
        if isinstance(instruction, Print):
            items = [
                item if isinstance(item, str) else self.map_operand(item)
                for item in instruction.items
            ]
            return Print(items, loc)
        if isinstance(instruction, Jump):
            return Jump(self.map_block(instruction.target), loc)
        if isinstance(instruction, CondBranch):
            return CondBranch(
                self.map_operand(instruction.cond),
                self.map_block(instruction.if_true),
                self.map_block(instruction.if_false),
                loc,
            )
        if isinstance(instruction, Return):
            ret = Return(self.map_operand(instruction.value), loc)
            ret.exit_uses = [self.map_operand(u) for u in instruction.exit_uses]
            return ret
        if isinstance(instruction, Halt):
            return Halt(loc)
        if isinstance(instruction, Phi):
            incoming = {
                self.map_block(pred): self.map_operand(op)
                for pred, op in instruction.incoming.items()
            }
            return Phi(self.map_def(instruction.target), incoming, loc)
        raise TypeError(f"cannot clone {type(instruction).__name__}")

    def clone(self) -> Tuple[Procedure, Dict[Variable, Variable]]:
        old_cfg = self.procedure.cfg
        entry = self.map_block(old_cfg.entry)
        cfg = ControlFlowGraph(entry)
        for block in old_cfg.blocks:
            new_block = self.map_block(block)
            if new_block is not entry and new_block not in cfg.blocks:
                cfg.blocks.append(new_block)
            for instruction in block.instructions:
                new_block.append(self.clone_instruction(instruction))
        formals = [self.map_var(f) for f in self.procedure.formals]
        result_var = (
            self.map_var(self.procedure.result_var)
            if self.procedure.result_var is not None
            else None
        )
        for variable in self.procedure.symbols.variables():
            self.symbols.declare(self.map_var(variable))
        clone = Procedure(
            self.new_name,
            self.procedure.kind,
            formals,
            cfg,
            self.symbols,
            result_var,
        )
        clone.visible_globals = list(self.procedure.visible_globals)
        return clone, dict(self.var_map)


def clone_procedure(
    procedure: Procedure, new_name: str
) -> Tuple[Procedure, Dict[Variable, Variable]]:
    """Clone ``procedure`` under ``new_name``.

    Returns the clone and the old-variable -> new-variable mapping
    (globals map to themselves and are omitted).
    """
    return _Cloner(procedure, new_name).clone()
