"""Structural IR/SSA verifier.

Every pass that mutates the IR — lowering, call-effect annotation, SSA
construction, dead-code elimination, cloning — relies on invariants the
type system cannot express: CFG edges must point at blocks that are in
the graph, phi nodes must have exactly one incoming operand per
predecessor, every SSA use must be dominated by its definition, and
every named variable must resolve through the procedure's symbol table
to the *same* :class:`~repro.ir.symbols.Variable` object (identity is
what makes interprocedural sharing of globals work).

The verifier checks those invariants structurally.  Run it between
pipeline stages (``AnalysisConfig.verify_ir``) and corruption is
reported *at the pass that caused it*, with the procedure and block
named, instead of surfacing later as a baffling KeyError three passes
downstream.

Checks, in order:

- **CFG integrity**: no duplicate blocks, entry present, every
  successor edge targets a block in the graph, every reachable block is
  terminated, terminators only in tail position;
- **phi placement/arity**: phis only at block heads, with incoming
  keys exactly the block's predecessors;
- **SSA form** (``ssa=True``): every Def/Use is versioned, each
  ``(variable, version)`` is assigned exactly once, and each use is
  dominated by its definition (phi operands checked against the
  corresponding predecessor);
- **symbol-table consistency**: every non-temporary variable mentioned
  by an instruction resolves by name to itself in the procedure's
  symbol table.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.dominance import compute_dominator_tree
from repro.ir.cfg import BasicBlock, ControlFlowGraph
from repro.ir.instructions import (
    ArrayLoad,
    ArrayStore,
    Call,
    Def,
    Instruction,
    Phi,
    Use,
)
from repro.ir.module import Procedure, Program
from repro.ir.symbols import Variable


class VerificationError(Exception):
    """The IR violates a structural invariant; ``issues`` lists every
    violation found (each naming its procedure and block)."""

    def __init__(self, issues: List[str], stage: str = ""):
        self.issues = list(issues)
        self.stage = stage
        prefix = f"IR verification failed after {stage}" if stage else (
            "IR verification failed"
        )
        super().__init__(
            f"{prefix}:\n" + "\n".join(f"  - {issue}" for issue in self.issues)
        )


def verify_program(
    program: Program, ssa: bool = True, stage: str = ""
) -> None:
    """Verify every procedure of ``program``; raise
    :class:`VerificationError` listing all violations found."""
    issues: List[str] = []
    for procedure in program:
        issues.extend(verify_procedure(procedure, ssa=ssa))
    if issues:
        raise VerificationError(issues, stage)


def verify_procedure(procedure: Procedure, ssa: bool = True) -> List[str]:
    """Collect invariant violations for one procedure (empty = clean)."""
    issues: List[str] = []
    cfg = procedure.cfg

    def problem(block: Optional[BasicBlock], message: str) -> None:
        where = f"block {block.name}: " if block is not None else ""
        issues.append(f"{procedure.name}: {where}{message}")

    in_graph = set(cfg.blocks)
    if len(in_graph) != len(cfg.blocks):
        problem(None, "duplicate block in CFG block list")
    if cfg.entry not in in_graph:
        problem(None, f"entry block {cfg.entry.name} not in CFG block list")
        return issues  # everything downstream would be nonsense

    # -- CFG integrity ------------------------------------------------------
    edges_ok = True
    for block in cfg.blocks:
        for succ in block.successors():
            if succ not in in_graph:
                edges_ok = False
                problem(
                    block,
                    f"successor edge to {succ.name} which is not in the CFG",
                )
        for position, instruction in enumerate(block.instructions):
            if (
                instruction.is_terminator
                and position != len(block.instructions) - 1
            ):
                problem(
                    block,
                    f"terminator {type(instruction).__name__} at position "
                    f"{position} is not the last instruction",
                )
        seen_non_phi = False
        for instruction in block.instructions:
            if isinstance(instruction, Phi):
                if seen_non_phi:
                    problem(block, "phi after a non-phi instruction")
            else:
                seen_non_phi = True

    # Recompute reachability and predecessors defensively, ignoring
    # edges that leave the graph: the CFG's own helpers assume the very
    # invariants being verified and would raise on a corrupt graph.
    reachable = _reachable_in_graph(cfg, in_graph)
    predecessors: Dict[BasicBlock, List[BasicBlock]] = {
        block: [] for block in cfg.blocks
    }
    for block in cfg.blocks:
        for succ in block.successors():
            if succ in in_graph:
                predecessors[succ].append(block)
    for block in reachable:
        if not block.is_terminated:
            problem(block, "reachable block has no terminator")

    # -- phi arity vs predecessors -----------------------------------------
    for block in cfg.blocks:
        preds = set(predecessors.get(block, ()))
        for phi in block.phis():
            incoming = set(phi.incoming)
            for extra in incoming - preds:
                problem(
                    block,
                    f"phi for {phi.target.var.name} has an incoming edge "
                    f"from {extra.name}, which is not a predecessor",
                )
            for missing in preds - incoming:
                problem(
                    block,
                    f"phi for {phi.target.var.name} is missing the incoming "
                    f"value from predecessor {missing.name}",
                )

    # -- symbol-table consistency ------------------------------------------
    for block in cfg.blocks:
        for instruction in block.instructions:
            for variable in _mentioned_variables(instruction):
                if variable.is_temp:
                    continue
                bound = procedure.symbols.lookup(variable.name)
                if bound is not variable:
                    problem(
                        block,
                        f"variable {variable.name!r} (uid {variable.uid}) "
                        f"does not resolve to itself in the symbol table",
                    )

    # Dominance is undefined over a graph with dangling edges; report
    # the CFG corruption alone and check SSA once the edges are fixed.
    if ssa and edges_ok:
        issues.extend(_verify_ssa(procedure, reachable, predecessors))
    return issues


def _reachable_in_graph(cfg: ControlFlowGraph, in_graph) -> set:
    """Blocks reachable from entry following only in-graph edges."""
    seen = {cfg.entry}
    stack = [cfg.entry]
    while stack:
        for succ in stack.pop().successors():
            if succ in in_graph and succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return seen


def _mentioned_variables(instruction: Instruction):
    for use in instruction.uses():
        yield use.var
    for definition in instruction.defs():
        yield definition.var
    if isinstance(instruction, (ArrayLoad, ArrayStore)):
        yield instruction.array
    if isinstance(instruction, Call):
        for arg in instruction.args:
            if arg.array is not None:
                yield arg.array


def _verify_ssa(
    procedure: Procedure,
    reachable,
    predecessors: Dict[BasicBlock, List[BasicBlock]],
) -> List[str]:
    issues: List[str] = []
    cfg = procedure.cfg

    def problem(block: BasicBlock, message: str) -> None:
        issues.append(f"{procedure.name}: block {block.name}: {message}")

    # Single assignment + def site map. Version 0 is the implicit
    # entry definition of formals/globals and has no def site.
    def_site: Dict[Tuple[Variable, int], Tuple[BasicBlock, int]] = {}
    for block in cfg.blocks:
        for position, instruction in enumerate(block.instructions):
            for definition in instruction.defs():
                if definition.version is None:
                    problem(
                        block,
                        f"unversioned def of {definition.var.name} "
                        f"(SSA construction incomplete?)",
                    )
                    continue
                name = (definition.var, definition.version)
                if name in def_site:
                    other_block, _ = def_site[name]
                    problem(
                        block,
                        f"{definition.var.name}.{definition.version} is "
                        f"assigned more than once (also in block "
                        f"{other_block.name})",
                    )
                else:
                    def_site[name] = (block, position)

    if any("unversioned def" in issue for issue in issues):
        return issues  # not in SSA form: dominance checks are meaningless

    dom = compute_dominator_tree(cfg) if reachable else None

    for block in reachable:
        for position, instruction in enumerate(block.instructions):
            if isinstance(instruction, Phi):
                for pred, operand in instruction.incoming.items():
                    if isinstance(operand, Use):
                        issues.extend(
                            _check_use(
                                procedure, operand, pred,
                                len(pred.instructions), def_site, dom,
                                reachable, via_phi_in=block,
                            )
                        )
                continue
            for use in instruction.uses():
                issues.extend(
                    _check_use(
                        procedure, use, block, position, def_site, dom,
                        reachable, via_phi_in=None,
                    )
                )
    return issues


def _check_use(
    procedure: Procedure,
    use: Use,
    block: BasicBlock,
    position: int,
    def_site: Dict[Tuple[Variable, int], Tuple[BasicBlock, int]],
    dom,
    reachable,
    via_phi_in: Optional[BasicBlock],
) -> List[str]:
    """Check one (possibly phi-routed) use: versioned, defined, and
    dominated by its definition. For a phi operand, ``block`` is the
    predecessor contributing the value and ``position`` its block end."""
    where = (
        f"phi in block {via_phi_in.name} (edge from {block.name})"
        if via_phi_in is not None
        else f"block {block.name}"
    )

    def issue(message: str) -> List[str]:
        return [f"{procedure.name}: {where}: {message}"]

    if use.version is None:
        return issue(f"unversioned use of {use.var.name}")
    if use.version == 0:
        return []  # entry value: defined at procedure entry by convention
    site = def_site.get((use.var, use.version))
    if site is None:
        return issue(
            f"use of {use.var.name}.{use.version} which is never defined"
        )
    def_block, def_position = site
    if def_block not in reachable:
        return issue(
            f"use of {use.var.name}.{use.version} defined in unreachable "
            f"block {def_block.name}"
        )
    if def_block is block:
        if def_position >= position:
            return issue(
                f"use of {use.var.name}.{use.version} before its "
                f"definition in the same block"
            )
        return []
    if dom is not None and not dom.dominates(def_block, block):
        return issue(
            f"use of {use.var.name}.{use.version} is not dominated by its "
            f"definition in block {def_block.name}"
        )
    return []
