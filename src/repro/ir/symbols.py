"""Variables and per-procedure symbol tables.

A :class:`Variable` is an identity object (compared by ``is``): globals in
COMMON storage are represented by a *single* Variable shared by every
procedure that declares the block, which is what lets interprocedural
analyses treat them uniformly with formal parameters (the paper extends
"parameter" to include global variables, §2 footnote 1).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


class VarKind(enum.Enum):
    """What storage a variable names."""

    FORMAL = "formal"  # formal parameter (call-by-reference)
    LOCAL = "local"  # procedure-local scalar or array
    GLOBAL = "global"  # member of a COMMON block
    TEMP = "temp"  # compiler temporary introduced by lowering
    RESULT = "result"  # the function-name variable holding the result


@dataclass(eq=False, slots=True)
class Variable:
    """A named storage location. Identity semantics: two Variables are the
    same variable iff they are the same object.

    ``slots=True``: programs allocate one Variable per SSA version, so
    the per-instance ``__dict__`` would dominate IR memory.
    """

    name: str
    kind: VarKind
    is_array: bool = False
    dims: Optional[Tuple[int, ...]] = None
    common_block: Optional[str] = None
    uid: int = field(init=False, repr=False)

    _ids = itertools.count()

    def __post_init__(self) -> None:
        self.uid = next(Variable._ids)

    @property
    def is_temp(self) -> bool:
        return self.kind is VarKind.TEMP

    @property
    def is_global(self) -> bool:
        return self.kind is VarKind.GLOBAL

    @property
    def is_scalar(self) -> bool:
        return not self.is_array

    def __repr__(self) -> str:
        return f"Variable({self.name!r}, {self.kind.value})"

    def __hash__(self) -> int:
        return self.uid


class SymbolTable:
    """Maps source names to :class:`Variable` objects inside one procedure.

    Globals resolve to the Program-wide Variable for their COMMON slot;
    everything else is procedure-local. Temporaries get fresh names
    ``%t0, %t1, ...`` and never enter the name map.
    """

    def __init__(self, procedure_name: str):
        self.procedure_name = procedure_name
        self._by_name: Dict[str, Variable] = {}
        self._temp_counter = itertools.count()

    def declare(self, variable: Variable) -> Variable:
        """Register ``variable`` under its name; returns it for chaining."""
        self._by_name[variable.name] = variable
        return variable

    def lookup(self, name: str) -> Optional[Variable]:
        """The Variable bound to ``name``, or None if not yet declared."""
        return self._by_name.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def new_temp(self) -> Variable:
        """Create a fresh compiler temporary."""
        return Variable(f"%t{next(self._temp_counter)}", VarKind.TEMP)

    def variables(self) -> List[Variable]:
        """All named variables, in declaration order."""
        return list(self._by_name.values())

    def formals(self) -> List[Variable]:
        return [v for v in self._by_name.values() if v.kind is VarKind.FORMAL]

    def globals(self) -> List[Variable]:
        return [v for v in self._by_name.values() if v.kind is VarKind.GLOBAL]

    def scalars(self) -> Iterable[Variable]:
        return (v for v in self._by_name.values() if v.is_scalar)
