"""Lowering from the MiniFortran AST to the CFG-based IR.

Lowering is where FORTRAN semantics are pinned down:

- **call-by-reference**: scalar variable actuals are bindable (the callee
  may modify them); expression actuals are evaluated into temporaries and
  any modification through them is lost (as in FORTRAN, where modifying
  such an actual is undefined);
- **PARAMETER constants** fold into the IR as literals;
- **DO loops** evaluate their bounds once, test before the first
  iteration, and require an integer-literal step so the loop direction is
  known statically;
- **intrinsics** ``MOD MAX MIN IABS ABS`` lower to primitive operators;
- a use of a scalar variable that appears literally in the source is
  marked ``from_source`` — the unit the substitution metric counts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple, Union

from repro.frontend import ast
from repro.frontend.errors import SemanticError
from repro.frontend.source import SourceFile, SourceLocation
from repro.ir.cfg import BasicBlock, ControlFlowGraph
from repro.ir.instructions import (
    ArrayLoad,
    ArrayStore,
    Assign,
    BinOp,
    Call,
    CallArg,
    CondBranch,
    Const,
    Def,
    Halt,
    Jump,
    Operand,
    Print,
    Read,
    Return,
    UnOp,
    Use,
)
from repro.ir.module import CommonBlock, Procedure, Program
from repro.ir.symbols import SymbolTable, Variable, VarKind

LoweringError = SemanticError

_COMPARE_OPS = {"eq", "ne", "lt", "le", "gt", "ge"}

#: Intrinsic functions lowered to primitive operations: name -> (op, arity).
_INTRINSICS = {
    "mod": ("mod", 2),
    "max": ("max", 2),
    "min": ("min", 2),
    "iabs": ("abs", 1),
    "abs": ("abs", 1),
}


def lower_module(module: ast.Module, source: Optional[SourceFile] = None) -> Program:
    """Lower a parsed module into a whole :class:`Program`.

    Raises :class:`SemanticError` for ill-formed programs (unknown
    callees, argument count/shape mismatches, COMMON layout conflicts,
    assignments to PARAMETER constants, non-literal DO steps).
    """
    from repro import profiling

    profiling.bump("lowerings")
    program = Program(source)
    unit_kinds = {unit.name: unit.kind for unit in module.units}
    if len(unit_kinds) != len(module.units):
        seen: Set[str] = set()
        for unit in module.units:
            if unit.name in seen:
                raise SemanticError(
                    f"duplicate program unit name {unit.name!r}", unit.location
                )
            seen.add(unit.name)
    for unit in module.units:
        if unit.kind is ast.ProcedureKind.BLOCK_DATA:
            _lower_block_data(program, unit)
            continue
        lowerer = _ProcedureLowerer(program, unit, unit_kinds)
        program.add_procedure(lowerer.lower())
    _link_calls(program)
    for procedure in program:
        procedure.cfg.remove_unreachable()
    return program


def _lower_block_data(program: Program, unit: ast.ProcedureUnit) -> None:
    """Process a BLOCK DATA unit: COMMON declarations plus DATA initial
    values for scalar COMMON members. Produces no procedure."""
    if unit.body:
        raise SemanticError(
            "BLOCK DATA units cannot contain executable statements",
            unit.body[0].location,
        )
    # Reuse the regular lowerer for COMMON/INTEGER processing.
    lowerer = _ProcedureLowerer(program, unit, {})
    for decl in unit.decls:
        if isinstance(decl, ast.CommonDecl):
            lowerer._declare_common(decl)
        elif isinstance(decl, (ast.IntegerDecl, ast.DimensionDecl)):
            for item in decl.items:
                lowerer._declare_item(item, decl.location)
        elif isinstance(decl, ast.DataDecl):
            for name, value in decl.bindings:
                variable = lowerer.symbols.lookup(name)
                if variable is None or not variable.is_global:
                    raise SemanticError(
                        f"DATA target {name!r} is not a COMMON member of "
                        f"this BLOCK DATA unit",
                        decl.location,
                    )
                if variable.is_array:
                    raise SemanticError(
                        f"DATA for array {name!r} is not supported "
                        f"(array contents are never tracked)",
                        decl.location,
                    )
                if variable in program.global_initial_values:
                    raise SemanticError(
                        f"duplicate DATA initialization of {name!r}",
                        decl.location,
                    )
                program.global_initial_values[variable] = value
        else:
            raise SemanticError(
                "only COMMON, INTEGER, DIMENSION, and DATA are allowed in "
                "BLOCK DATA",
                decl.location,
            )


def _link_calls(program: Program) -> None:
    """Validate every call against its callee's interface."""
    for procedure in program:
        for call in procedure.call_sites():
            callee = program.procedures.get(call.callee)
            if callee is None:
                raise SemanticError(
                    f"call to undefined procedure {call.callee!r}", call.location
                )
            if callee.is_main:
                raise SemanticError(
                    f"cannot call main program {call.callee!r}", call.location
                )
            if callee.is_function and call.result is None:
                raise SemanticError(
                    f"function {call.callee!r} called as a subroutine", call.location
                )
            if not callee.is_function and call.result is not None:
                raise SemanticError(
                    f"subroutine {call.callee!r} used as a function", call.location
                )
            if len(call.args) != len(callee.formals):
                raise SemanticError(
                    f"call to {call.callee!r} passes {len(call.args)} arguments, "
                    f"expected {len(callee.formals)}",
                    call.location,
                )
            for formal, actual in zip(callee.formals, call.args):
                if formal.is_array != actual.is_array:
                    kind = "an array" if formal.is_array else "a scalar"
                    raise SemanticError(
                        f"argument for formal {formal.name!r} of {call.callee!r} "
                        f"must be {kind}",
                        call.location,
                    )


class _ProcedureLowerer:
    """Lowers a single program unit."""

    def __init__(self, program: Program, unit: ast.ProcedureUnit, unit_kinds):
        self.program = program
        self.unit = unit
        self.unit_kinds = unit_kinds
        self.symbols = SymbolTable(unit.name)
        self.param_consts: Dict[str, int] = {}
        self.cfg = ControlFlowGraph(BasicBlock("entry"))
        self.block = self.cfg.entry
        self.label_blocks: Dict[int, BasicBlock] = {}
        self.result_var: Optional[Variable] = None
        self.visible_globals: List[Variable] = []
        #: Names declared EXTERNAL in this unit. A call to one that has
        #: no definition in this translation unit lowers conservatively
        #: (see :meth:`_lower_external_call`); the linkage layer merges
        #: files first so linked programs never take that path.
        self.externals: set = set()

    # -- driver -------------------------------------------------------------

    def lower(self) -> Procedure:
        formals = self._declare_formals()
        if self.unit.kind is ast.ProcedureKind.FUNCTION:
            self.result_var = Variable(self.unit.name, VarKind.RESULT)
            self.symbols.declare(self.result_var)
        self._process_declarations()
        if self.unit.is_stub:
            self._lower_stub_body()
        else:
            self._collect_labels(self.unit.body)
            self._lower_body(self.unit.body)
        self._finish_procedure()
        procedure = Procedure(
            self.unit.name,
            self.unit.kind,
            formals,
            self.cfg,
            self.symbols,
            self.result_var,
        )
        procedure.visible_globals = list(self.visible_globals)
        return procedure

    def _declare_formals(self) -> List[Variable]:
        formals = []
        for name in self.unit.params:
            if self.symbols.lookup(name) is not None:
                raise SemanticError(
                    f"duplicate formal parameter {name!r}", self.unit.location
                )
            formals.append(self.symbols.declare(Variable(name, VarKind.FORMAL)))
        return formals

    def _process_declarations(self) -> None:
        for decl in self.unit.decls:
            if isinstance(decl, (ast.IntegerDecl, ast.DimensionDecl)):
                for item in decl.items:
                    self._declare_item(item, decl.location)
            elif isinstance(decl, ast.CommonDecl):
                self._declare_common(decl)
            elif isinstance(decl, ast.ParameterDecl):
                for name, expr in decl.bindings:
                    if name in self.symbols or name in self.param_consts:
                        raise SemanticError(
                            f"PARAMETER name {name!r} conflicts with a variable",
                            decl.location,
                        )
                    self.param_consts[name] = self._eval_const_expr(expr)
            elif isinstance(decl, ast.ExternalDecl):
                for name in decl.names:
                    if name in self.symbols or name in self.param_consts:
                        raise SemanticError(
                            f"EXTERNAL name {name!r} conflicts with a "
                            f"variable declaration",
                            decl.location,
                        )
                    self.externals.add(name)
            elif isinstance(decl, ast.DataDecl):
                raise SemanticError(
                    "DATA statements are only supported in BLOCK DATA units "
                    "(MiniFortran has no static procedure-local storage)",
                    decl.location,
                )

    def _declare_item(self, item: ast.DeclItem, location: SourceLocation) -> None:
        existing = self.symbols.lookup(item.name)
        if existing is not None:
            # Retyping a formal (INTEGER X) or adding a shape to it.
            if item.is_array:
                if existing.is_array and existing.dims != tuple(item.dims):
                    raise SemanticError(
                        f"conflicting shapes for {item.name!r}", location
                    )
                existing.is_array = True
                existing.dims = tuple(item.dims)
            return
        if item.name in self.param_consts:
            raise SemanticError(
                f"{item.name!r} already declared as a PARAMETER", location
            )
        variable = Variable(
            item.name,
            VarKind.LOCAL,
            is_array=item.is_array,
            dims=tuple(item.dims) if item.dims else None,
        )
        self.symbols.declare(variable)

    def _declare_common(self, decl: ast.CommonDecl) -> None:
        block = self.program.commons.get(decl.block)
        if block is None:
            block = CommonBlock(decl.block)
            for item in decl.items:
                variable = Variable(
                    item.name,
                    VarKind.GLOBAL,
                    is_array=item.is_array,
                    dims=tuple(item.dims) if item.dims else None,
                    common_block=decl.block,
                )
                block.members.append(variable)
            self.program.commons[decl.block] = block
        else:
            if [i.name for i in decl.items] != [v.name for v in block.members]:
                raise SemanticError(
                    f"COMMON /{decl.block}/ declared with different member "
                    f"names than its first declaration (positional renaming "
                    f"is not supported)",
                    decl.location,
                )
            for item, member in zip(decl.items, block.members):
                declared_array = item.is_array or member.is_array
                if item.is_array and member.is_array:
                    if tuple(item.dims) != member.dims:
                        raise SemanticError(
                            f"conflicting shapes for COMMON member {item.name!r}",
                            decl.location,
                        )
                member.is_array = declared_array
                if item.is_array and member.dims is None:
                    member.dims = tuple(item.dims)
        for member in block.members:
            if self.symbols.lookup(member.name) is not None:
                raise SemanticError(
                    f"COMMON member {member.name!r} conflicts with a local "
                    f"declaration",
                    decl.location,
                )
            self.symbols.declare(member)
            self.visible_globals.append(member)

    def _eval_const_expr(self, expr: ast.Expr) -> int:
        """Evaluate a PARAMETER initializer at lowering time."""
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        if isinstance(expr, ast.VarRef):
            if expr.name in self.param_consts:
                return self.param_consts[expr.name]
            raise SemanticError(
                f"PARAMETER initializer references non-constant {expr.name!r}",
                expr.location,
            )
        if isinstance(expr, ast.UnaryOp) and expr.op == "-":
            return -self._eval_const_expr(expr.operand)
        if isinstance(expr, ast.BinaryOp):
            left = self._eval_const_expr(expr.left)
            right = self._eval_const_expr(expr.right)
            return _fold_arith(expr.op, left, right, expr.location)
        raise SemanticError("PARAMETER initializer is not constant", expr.location)

    # -- block management ----------------------------------------------------

    def _emit(self, instruction) -> None:
        if self.block.is_terminated:
            # Dead code after GOTO/RETURN/STOP: park it in a fresh
            # unreachable block (removed by cleanup).
            self.block = self.cfg.new_block()
        self.block.append(instruction)

    def _terminate(self, instruction) -> None:
        if not self.block.is_terminated:
            self.block.append(instruction)

    def _switch_to(self, block: BasicBlock) -> None:
        self._terminate(Jump(block))
        self.block = block

    def _collect_labels(self, body: List[ast.Stmt]) -> None:
        for stmt in ast.walk_statements(body):
            if stmt.label is not None:
                if stmt.label in self.label_blocks:
                    raise SemanticError(
                        f"duplicate statement label {stmt.label}", stmt.location
                    )
                self.label_blocks[stmt.label] = self.cfg.new_block(
                    f"L{stmt.label}"
                )

    def _lower_stub_body(self) -> None:
        """Lower a recovery stub (a unit whose body failed to parse).

        The body becomes one ``Read`` that assigns an unknowable value
        to every scalar the unit could observably write — its scalar
        formals (call-by-reference!), every scalar COMMON member it
        declares, and its result variable — so MOD/REF summaries, jump
        functions, and return functions for this unit are all maximally
        conservative without any special-casing downstream.
        """
        clobbered: List[Def] = []
        for name in self.unit.params:
            variable = self.symbols.lookup(name)
            if variable is not None and not variable.is_array:
                clobbered.append(Def(variable))
        for variable in self.visible_globals:
            if not variable.is_array:
                clobbered.append(Def(variable))
        if self.result_var is not None:
            clobbered.append(Def(self.result_var))
        if clobbered:
            self._emit(Read(clobbered, self.unit.location))

    # -- statements ------------------------------------------------------------

    def _lower_body(self, body: List[ast.Stmt]) -> None:
        for stmt in body:
            self._lower_statement(stmt)

    def _lower_statement(self, stmt: ast.Stmt) -> None:
        if stmt.label is not None:
            self._switch_to(self.label_blocks[stmt.label])
        if isinstance(stmt, ast.Assign):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.CallStmt):
            self._lower_call_stmt(stmt)
        elif isinstance(stmt, ast.IfStmt):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.DoStmt):
            self._lower_do(stmt)
        elif isinstance(stmt, ast.DoWhileStmt):
            self._lower_do_while(stmt)
        elif isinstance(stmt, ast.GotoStmt):
            if stmt.target not in self.label_blocks:
                raise SemanticError(f"unknown label {stmt.target}", stmt.location)
            self._terminate(Jump(self.label_blocks[stmt.target], stmt.location))
        elif isinstance(stmt, ast.ContinueStmt):
            pass
        elif isinstance(stmt, ast.ReturnStmt):
            self._emit_return(stmt.location)
        elif isinstance(stmt, ast.StopStmt):
            self._terminate(Halt(stmt.location))
        elif isinstance(stmt, ast.ReadStmt):
            self._lower_read(stmt)
        elif isinstance(stmt, ast.PrintStmt):
            items: List[Union[Operand, str]] = []
            for item in stmt.items:
                if isinstance(item, str):
                    items.append(item)
                else:
                    items.append(self._lower_expr(item))
            self._emit(Print(items, stmt.location))
        else:
            raise SemanticError(
                f"cannot lower statement {type(stmt).__name__}", stmt.location
            )

    def _emit_return(self, location: SourceLocation) -> None:
        if self.unit.kind is ast.ProcedureKind.PROGRAM:
            self._terminate(Halt(location))
        elif self.unit.kind is ast.ProcedureKind.FUNCTION:
            value = Use(self.result_var, location)
            self._terminate(Return(value, location))
        else:
            self._terminate(Return(None, location))

    def _lower_assign(self, stmt: ast.Assign) -> None:
        if isinstance(stmt.target, ast.VarRef):
            name = stmt.target.name
            if name in self.param_consts:
                raise SemanticError(
                    f"cannot assign to PARAMETER constant {name!r}", stmt.location
                )
            variable = self._scalar_variable(stmt.target)
            self._lower_expr_into(Def(variable), stmt.value, stmt.location)
        else:
            array = self._array_variable(stmt.target.name, stmt.target.location)
            indices = [self._lower_expr(e) for e in stmt.target.indices]
            value = self._lower_expr(stmt.value)
            self._emit(ArrayStore(array, indices, value, stmt.location))

    def _lower_call_stmt(self, stmt: ast.CallStmt) -> None:
        kind = self.unit_kinds.get(stmt.name)
        if kind is None:
            if stmt.name in self.externals:
                self._lower_external_call(stmt.args, None, stmt.location)
                return
            raise SemanticError(
                f"call to undefined procedure {stmt.name!r}", stmt.location
            )
        args = [self._lower_call_arg(arg) for arg in stmt.args]
        self._emit(Call(stmt.name, args, None, stmt.location))

    def _lower_external_call(
        self, args: List[ast.Expr], target: Optional[Def], location
    ) -> None:
        """Lower a call to an EXTERNAL procedure with no definition in
        this translation unit.

        Mirrors :meth:`_lower_stub_body`: with the callee's body out of
        reach, the call must be assumed to overwrite everything it could
        reach — every scalar actual passed by reference, every scalar
        global visible here, and the function result — so single-file
        analysis of one file of a multi-file program stays sound (every
        such cell degrades to ⊥ rather than keeping a stale constant).
        """
        clobbered: List[Def] = []
        seen: set = set()

        def clobber(variable: Variable) -> None:
            if not variable.is_array and variable.name not in seen:
                seen.add(variable.name)
                clobbered.append(Def(variable))

        for arg in args:
            if isinstance(arg, ast.VarRef) and arg.name not in self.param_consts:
                variable = self._variable_for(arg.name)
                if variable.is_array:
                    # Whole-array actual: array cells are not tracked
                    # by the constant lattice, nothing to clobber.
                    continue
                clobber(variable)
                continue
            # Expression actuals are still lowered so their own
            # semantic errors surface; their value cells are callee
            # copies the caller never observes.
            self._lower_expr(arg)
        for variable in self.visible_globals:
            clobber(variable)
        if target is not None:
            clobber(target.var)
        if clobbered:
            self._emit(Read(clobbered, location))

    def _lower_call_arg(self, expr: ast.Expr) -> CallArg:
        if isinstance(expr, ast.VarRef) and expr.name not in self.param_consts:
            variable = self._variable_for(expr.name)
            if variable.is_array:
                return CallArg(array=variable, location=expr.location)
            return CallArg(
                value=Use(variable, expr.location, from_source=True),
                location=expr.location,
            )
        return CallArg(value=self._lower_expr(expr), location=expr.location)

    def _lower_if(self, stmt: ast.IfStmt) -> None:
        join = self.cfg.new_block("ifjoin")
        arms: List[Tuple[ast.Expr, List[ast.Stmt]]] = [(stmt.cond, stmt.then_body)]
        arms.extend(stmt.elifs)
        for cond, body in arms:
            cond_op = self._lower_expr(cond)
            then_block = self.cfg.new_block("then")
            else_block = self.cfg.new_block("else")
            self._terminate(CondBranch(cond_op, then_block, else_block, stmt.location))
            self.block = then_block
            self._lower_body(body)
            self._terminate(Jump(join))
            self.block = else_block
        self._lower_body(stmt.else_body)
        self._switch_to(join)

    def _lower_do(self, stmt: ast.DoStmt) -> None:
        step = self._literal_step(stmt)
        loop_var = self._scalar_variable_by_name(stmt.var, stmt.location)
        start = self._lower_expr(stmt.start)
        self._emit(Assign(Def(loop_var), start, stmt.location))
        bound_temp = self.symbols.new_temp()
        self._lower_expr_into(Def(bound_temp), stmt.stop, stmt.location)

        head = self.cfg.new_block("dohead")
        body_block = self.cfg.new_block("dobody")
        exit_block = self.cfg.new_block("doexit")
        self._switch_to(head)
        cond_temp = self.symbols.new_temp()
        compare = "le" if step > 0 else "ge"
        self._emit(
            BinOp(
                Def(cond_temp),
                compare,
                Use(loop_var, stmt.location),
                Use(bound_temp),
                stmt.location,
            )
        )
        self._terminate(
            CondBranch(Use(cond_temp), body_block, exit_block, stmt.location)
        )
        self.block = body_block
        self._lower_body(stmt.body)
        self._emit(
            BinOp(
                Def(loop_var), "+", Use(loop_var, stmt.location), Const(step),
                stmt.location,
            )
        )
        self._terminate(Jump(head))
        self.block = exit_block

    def _literal_step(self, stmt: ast.DoStmt) -> int:
        if stmt.step is None:
            return 1
        step_expr = stmt.step
        negate = False
        if isinstance(step_expr, ast.UnaryOp) and step_expr.op == "-":
            negate = True
            step_expr = step_expr.operand
        if isinstance(step_expr, ast.IntLiteral):
            value = step_expr.value
        elif (
            isinstance(step_expr, ast.VarRef) and step_expr.name in self.param_consts
        ):
            value = self.param_consts[step_expr.name]
        else:
            raise SemanticError(
                "DO step must be an integer literal or PARAMETER constant",
                stmt.location,
            )
        value = -value if negate else value
        if value == 0:
            raise SemanticError("DO step must be nonzero", stmt.location)
        return value

    def _lower_do_while(self, stmt: ast.DoWhileStmt) -> None:
        head = self.cfg.new_block("whilehead")
        body_block = self.cfg.new_block("whilebody")
        exit_block = self.cfg.new_block("whileexit")
        self._switch_to(head)
        cond = self._lower_expr(stmt.cond)
        self._terminate(CondBranch(cond, body_block, exit_block, stmt.location))
        self.block = body_block
        self._lower_body(stmt.body)
        self._terminate(Jump(head))
        self.block = exit_block

    def _lower_read(self, stmt: ast.ReadStmt) -> None:
        scalar_defs: List[Def] = []
        array_stores: List[Tuple[Variable, List[Operand], Def]] = []
        for target in stmt.targets:
            if isinstance(target, ast.VarRef):
                scalar_defs.append(Def(self._scalar_variable(target)))
            else:
                array = self._array_variable(target.name, target.location)
                indices = [self._lower_expr(e) for e in target.indices]
                temp = Def(self.symbols.new_temp())
                scalar_defs.append(temp)
                array_stores.append((array, indices, temp))
        self._emit(Read(scalar_defs, stmt.location))
        for array, indices, temp in array_stores:
            self._emit(ArrayStore(array, indices, Use(temp.var), stmt.location))

    # -- expressions --------------------------------------------------------

    def _lower_expr(self, expr: ast.Expr) -> Operand:
        """Lower ``expr``; the result is a Const or a Use of a variable or
        fresh temporary."""
        if isinstance(expr, ast.IntLiteral):
            return Const(expr.value)
        if isinstance(expr, ast.VarRef):
            if expr.name in self.param_consts:
                return Const(self.param_consts[expr.name])
            variable = self._variable_for(expr.name)
            if variable.is_array:
                raise SemanticError(
                    f"array {expr.name!r} used where a scalar value is required",
                    expr.location,
                )
            return Use(variable, expr.location, from_source=True)
        target = Def(self.symbols.new_temp())
        self._lower_expr_into(target, expr, expr.location)
        return Use(target.var)

    def _lower_expr_into(self, target: Def, expr: ast.Expr,
                         location: SourceLocation) -> None:
        """Lower ``expr`` so its value lands in ``target`` (fusing the
        top-level operation into the defining instruction)."""
        if isinstance(expr, (ast.BinaryOp, ast.Compare, ast.LogicalOp)):
            left = self._lower_expr(expr.left)
            right = self._lower_expr(expr.right)
            self._emit(BinOp(target, expr.op, left, right, expr.location))
            return
        if isinstance(expr, ast.UnaryOp):
            operand = self._lower_expr(expr.operand)
            op = "neg" if expr.op == "-" else expr.op
            self._emit(UnOp(target, op, operand, expr.location))
            return
        if isinstance(expr, ast.ArrayRef):
            array = self._array_variable(expr.name, expr.location)
            indices = [self._lower_expr(e) for e in expr.indices]
            self._emit(ArrayLoad(target, array, indices, expr.location))
            return
        if isinstance(expr, ast.FunctionCall):
            self._lower_function_call(target, expr)
            return
        # Leaf expression: plain copy.
        self._emit(Assign(target, self._lower_expr(expr), location))

    def _lower_function_call(self, target: Def, expr: ast.FunctionCall) -> None:
        intrinsic = _INTRINSICS.get(expr.name)
        if (
            intrinsic is not None
            and expr.name not in self.unit_kinds
            and expr.name not in self.externals
        ):
            op, arity = intrinsic
            if len(expr.args) != arity:
                raise SemanticError(
                    f"intrinsic {expr.name!r} expects {arity} argument(s)",
                    expr.location,
                )
            operands = [self._lower_expr(a) for a in expr.args]
            if arity == 1:
                self._emit(UnOp(target, op, operands[0], expr.location))
            else:
                self._emit(BinOp(target, op, operands[0], operands[1], expr.location))
            return
        if expr.name not in self.unit_kinds:
            if expr.name in self.externals:
                self._lower_external_call(expr.args, target, expr.location)
                return
            raise SemanticError(
                f"call to undefined function {expr.name!r}", expr.location
            )
        args = [self._lower_call_arg(a) for a in expr.args]
        self._emit(Call(expr.name, args, target, expr.location))

    # -- variable resolution ----------------------------------------------

    def _variable_for(self, name: str) -> Variable:
        """Resolve ``name``, creating an implicit INTEGER local on first
        use (FORTRAN implicit declaration, all-integer in MiniFortran)."""
        variable = self.symbols.lookup(name)
        if variable is None:
            if name in self.unit_kinds or name in self.externals:
                raise SemanticError(
                    f"procedure name {name!r} used as a variable", None
                )
            variable = self.symbols.declare(Variable(name, VarKind.LOCAL))
        return variable

    def _scalar_variable(self, ref: ast.VarRef) -> Variable:
        return self._scalar_variable_by_name(ref.name, ref.location)

    def _scalar_variable_by_name(self, name: str, location) -> Variable:
        variable = self._variable_for(name)
        if variable.is_array:
            raise SemanticError(
                f"array {name!r} used where a scalar is required", location
            )
        return variable

    def _array_variable(self, name: str, location) -> Variable:
        variable = self.symbols.lookup(name)
        if variable is None or not variable.is_array:
            raise SemanticError(f"{name!r} is not a declared array", location)
        return variable

    # -- epilogue -----------------------------------------------------------

    def _finish_procedure(self) -> None:
        if not self.block.is_terminated:
            self._emit_return(self.unit.location)


def _fold_arith(op: str, left: int, right: int, location) -> int:
    """Fold a binary arithmetic operator over Python ints.

    Division follows FORTRAN: truncation toward zero.
    """
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise SemanticError("division by zero in constant expression", location)
        quotient = abs(left) // abs(right)
        return quotient if (left >= 0) == (right >= 0) else -quotient
    raise SemanticError(f"operator {op!r} not allowed in constant expression", location)
