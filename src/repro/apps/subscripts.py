"""Array-subscript linearity — the Shen–Li–Yew motivation study.

For each array reference inside a loop, decide whether its subscript is
*linear* (affine) in the loop's induction variables with compile-time-
constant coefficients — the form classical dependence tests require. A
subscript like ``A(N*I + J)`` is nonlinear while ``N`` is unknown, and
becomes linear the moment interprocedural constant propagation proves
``N`` constant. Running the classification once with an empty constant
environment and once with CONSTANTS(p) reproduces the study's finding
that interprocedural constants linearize a large fraction of the
subscripts dependence analyzers would otherwise give up on.

Method: the value-numbering expression of each subscript operand is
rewritten so induction variables become symbolic leaves, converted to a
polynomial over {entry values} ∪ {induction variables}, partially
evaluated under the known constants, and then checked monomial-wise —
every monomial mentioning an induction variable must be exactly that
variable to the first power with an integer coefficient (IV-free
monomials are loop-invariant offsets and are always acceptable).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.expr import EntryExpr, Expr, UnknownExpr, rewrite_leaves
from repro.analysis.loops import NaturalLoop, analyze_loops
from repro.analysis.ssa import ssa_definitions
from repro.analysis.value_numbering import ValueNumbering
from repro.ipcp.constants import ConstantsResult
from repro.ipcp.return_functions import ForwardCallSemantics, ReturnFunctionMap
from repro.ir.instructions import ArrayLoad, ArrayStore
from repro.ir.module import Procedure, Program
from repro.ir.symbols import Variable, VarKind
from repro.poly.polynomial import Polynomial, expr_to_polynomial


class SubscriptClass(enum.Enum):
    """Classification of one subscript expression."""

    LINEAR = "linear"
    NONLINEAR = "nonlinear"


@dataclass
class SubscriptInfo:
    """One classified subscript."""

    procedure_name: str
    array: Variable
    loop: NaturalLoop
    classification: SubscriptClass
    polynomial: Optional[Polynomial] = None

    @property
    def is_linear(self) -> bool:
        return self.classification is SubscriptClass.LINEAR


@dataclass
class SubscriptStudy:
    """Aggregate results of one classification pass."""

    subscripts: List[SubscriptInfo] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.subscripts)

    @property
    def linear(self) -> int:
        return sum(1 for s in self.subscripts if s.is_linear)

    @property
    def nonlinear(self) -> int:
        return self.total - self.linear

    def linear_fraction(self) -> float:
        return self.linear / self.total if self.total else 1.0


def classify_subscripts(
    program: Program,
    constants: Optional[ConstantsResult] = None,
    return_map: Optional[ReturnFunctionMap] = None,
) -> SubscriptStudy:
    """Classify every in-loop array subscript of ``program``.

    ``constants`` supplies the interprocedural constant environment per
    procedure (None = the no-IPCP baseline); ``program`` must already be
    in SSA form (post ``prepare_program``).
    """
    return_map = return_map or ReturnFunctionMap()
    study = SubscriptStudy()
    for procedure in program:
        study.subscripts.extend(
            _classify_procedure(program, procedure, constants, return_map)
        )
    return study


def _classify_procedure(
    program: Program,
    procedure: Procedure,
    constants: Optional[ConstantsResult],
    return_map: ReturnFunctionMap,
) -> List[SubscriptInfo]:
    loops = analyze_loops(procedure)
    if not loops:
        return []
    numbering = ValueNumbering(
        procedure, ForwardCallSemantics(program, return_map)
    )
    definitions = ssa_definitions(procedure)
    block_of = {}
    for block in procedure.cfg.blocks:
        for instruction in block.instructions:
            block_of[id(instruction)] = block

    # Opaque value-numbering tags -> defining blocks (to decide whether
    # an unknown value is invariant with respect to a given loop).
    tag_blocks: Dict[object, object] = {}
    for (var, version), instruction in definitions.items():
        tag_blocks[("ssa", var.uid, version)] = block_of[id(instruction)]

    # Induction-variable phis -> fresh symbolic leaf variables.
    iv_leaves: Dict[object, Variable] = {}
    for loop in loops:
        for iv in loop.induction_variables:
            var, version = iv.ssa_name
            tag = ("ssa", var.uid, version)
            if tag not in iv_leaves:
                iv_leaves[tag] = Variable(f"{var.name}$iv", VarKind.FORMAL)
    iv_var_set = set(iv_leaves.values())

    env: Dict[Variable, int] = {}
    if constants is not None:
        env = dict(constants.constants_of(procedure.name).items())

    invariant_leaves: Dict[object, Variable] = {}

    def rewriter_for(loop: NaturalLoop):
        def rewrite(leaf: Expr) -> Expr:
            if not isinstance(leaf, UnknownExpr):
                return leaf
            if leaf.tag in iv_leaves:
                return EntryExpr(iv_leaves[leaf.tag])
            # Unknown but loop-invariant values (defined outside the
            # loop, undefined locals, opaque entries) act as symbolic
            # offsets: they do not break affinity.
            defining_block = tag_blocks.get(leaf.tag)
            invariant = (
                defining_block is None or defining_block not in loop.blocks
            )
            if invariant:
                leaf_var = invariant_leaves.get(leaf.tag)
                if leaf_var is None:
                    leaf_var = Variable(f"$inv{len(invariant_leaves)}", VarKind.FORMAL)
                    invariant_leaves[leaf.tag] = leaf_var
                return EntryExpr(leaf_var)
            return leaf

        return rewrite

    results: List[SubscriptInfo] = []
    for loop in loops:
        rewrite = rewriter_for(loop)
        for block in loop.blocks:
            # Only attribute each subscript to its innermost loop: skip
            # blocks that belong to a smaller loop too.
            if any(
                other is not loop and block in other.blocks and
                len(other.blocks) < len(loop.blocks)
                for other in loops
            ):
                continue
            for instruction in block.instructions:
                if not isinstance(instruction, (ArrayLoad, ArrayStore)):
                    continue
                for index_operand in instruction.indices:
                    expr = rewrite_leaves(
                        numbering.operand_expr(index_operand), rewrite
                    )
                    info = _classify_expr(
                        expr, env, iv_var_set, procedure, instruction, loop
                    )
                    results.append(info)
    return results


def _classify_expr(
    expr: Expr,
    env: Dict[Variable, int],
    iv_vars,
    procedure: Procedure,
    instruction,
    loop: NaturalLoop,
) -> SubscriptInfo:
    polynomial = expr_to_polynomial(expr)
    classification = SubscriptClass.NONLINEAR
    reduced = None
    if polynomial is not None:
        reduced = polynomial.partial_evaluate(env)
        classification = (
            SubscriptClass.LINEAR
            if _is_affine_in(reduced, iv_vars)
            else SubscriptClass.NONLINEAR
        )
    return SubscriptInfo(
        procedure_name=procedure.name,
        array=instruction.array,
        loop=loop,
        classification=classification,
        polynomial=reduced,
    )


def _is_affine_in(polynomial: Polynomial, iv_vars) -> bool:
    """Every monomial mentioning an induction variable must be exactly
    one IV to the first power (integer coefficient); IV-free monomials
    are loop-invariant offsets and always fine."""
    for monomial in polynomial.terms:
        involved = [pair for pair in monomial if pair[0] in iv_vars]
        if not involved:
            continue
        if len(monomial) != 1:
            return False  # IV multiplied by something else
        _var, exponent = monomial[0]
        if exponent != 1:
            return False
    return True
