"""Known loop trip counts — the Eigenmann–Blume motivation.

"Knowing their values allows the compiler to make informed decisions
about the profitability of parallel execution: the number of iterations
executed by a particular loop is an important factor in determining both
the amount of work it represents and the number of processors that it
can profitably employ" (§1).

For each natural loop whose header ends in a comparison between a basic
induction variable and a bound, the trip count is computable whenever
the IPCP-seeded SCCP run proves both the initial value and the bound
constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.loops import InductionVariable, NaturalLoop, analyze_loops
from repro.analysis.sccp import SCCPCallModel, run_sccp
from repro.analysis.ssa import ssa_definitions
from repro.ipcp.constants import ConstantsResult
from repro.ir.instructions import BinOp, CondBranch, Use
from repro.ir.module import Procedure, Program


@dataclass
class LoopTripCount:
    """One loop's trip-count verdict."""

    procedure_name: str
    loop: NaturalLoop
    induction_variable: Optional[InductionVariable]
    count: Optional[int]
    reason: str

    @property
    def known(self) -> bool:
        return self.count is not None


def known_trip_counts(
    program: Program,
    constants: Optional[ConstantsResult] = None,
    call_model: Optional[SCCPCallModel] = None,
) -> List[LoopTripCount]:
    """Trip-count verdicts for every loop in ``program`` (SSA form).

    ``constants`` seeds each procedure's entry values (None = no
    interprocedural information).
    """
    verdicts: List[LoopTripCount] = []
    for procedure in program:
        loops = analyze_loops(procedure)
        if not loops:
            continue
        entry = (
            constants.entry_lattice(procedure) if constants is not None else {}
        )
        sccp = run_sccp(procedure, entry, call_model)
        definitions = ssa_definitions(procedure)
        for loop in loops:
            verdicts.append(
                _analyze_loop(procedure, loop, sccp, definitions)
            )
    return verdicts


def _analyze_loop(procedure, loop, sccp, definitions) -> LoopTripCount:
    if not loop.induction_variables:
        return LoopTripCount(
            procedure.name, loop, None, None, "no basic induction variable"
        )
    terminator = loop.header.terminator
    if not isinstance(terminator, CondBranch) or not isinstance(
        terminator.cond, Use
    ):
        return LoopTripCount(
            procedure.name,
            loop,
            loop.induction_variables[0],
            None,
            "header does not end in a comparison",
        )
    compare = definitions.get((terminator.cond.var, terminator.cond.version))
    if not isinstance(compare, BinOp) or compare.op not in ("le", "lt", "ge", "gt"):
        return LoopTripCount(
            procedure.name,
            loop,
            loop.induction_variables[0],
            None,
            "header test is not a bound comparison",
        )

    for iv in loop.induction_variables:
        verdict = _try_iv(procedure, loop, iv, compare, sccp)
        if verdict is not None:
            return verdict
    return LoopTripCount(
        procedure.name,
        loop,
        loop.induction_variables[0],
        None,
        "bound or initial value not a known constant",
    )


def _try_iv(procedure, loop, iv, compare: BinOp, sccp) -> Optional[LoopTripCount]:
    """Match ``iv OP bound`` (or ``bound OP iv``) and compute the count
    when init and bound are constants."""
    iv_name = iv.ssa_name
    op = compare.op
    if (
        isinstance(compare.left, Use)
        and (compare.left.var, compare.left.version) == iv_name
    ):
        bound_operand = compare.right
    elif (
        isinstance(compare.right, Use)
        and (compare.right.var, compare.right.version) == iv_name
    ):
        bound_operand = compare.left
        op = {"le": "ge", "lt": "gt", "ge": "le", "gt": "lt"}[op]
    else:
        return None

    init_value = sccp.operand_value(iv.init_operand)
    bound_value = sccp.operand_value(bound_operand)
    if not init_value.is_constant or not bound_value.is_constant:
        return None

    count = _trip_count(init_value.value, bound_value.value, iv.step, op)
    if count is None:
        return LoopTripCount(
            procedure.name, loop, iv, None, "step direction never terminates"
        )
    return LoopTripCount(
        procedure.name,
        loop,
        iv,
        count,
        f"{iv.var.name} from {init_value.value} while {op} {bound_value.value} "
        f"step {iv.step:+d}",
    )


def _trip_count(init: int, bound: int, step: int, op: str) -> Optional[int]:
    """Iterations of ``for (i = init; i OP bound; i += step)``."""
    if op == "lt":
        bound, op = bound - 1, "le"
    elif op == "gt":
        bound, op = bound + 1, "ge"
    if op == "le":
        if step <= 0:
            return 0 if init > bound else None  # non-terminating upward test
        return max(0, (bound - init) // step + 1)
    if op == "ge":
        if step >= 0:
            return 0 if init < bound else None
        return max(0, (init - bound) // (-step) + 1)
    return None
