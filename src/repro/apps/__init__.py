"""Applications of interprocedural constants — the paper's motivation.

The introduction motivates IPCP through downstream consumers:

- **dependence analysis** (Shen, Li & Yew): "approximately 50 percent of
  the subscripts which had previously been considered nonlinear were
  found to be linear in the presence of interprocedural constant
  information" — :mod:`repro.apps.subscripts` reproduces that study's
  methodology on MiniFortran programs;
- **automatic parallelization** (Eigenmann & Blume): "interprocedural
  constants are often used as loop bounds", whose values let the
  compiler judge the profitability of parallel execution —
  :mod:`repro.apps.trip_counts` computes known trip counts from
  CONSTANTS sets.
"""

from repro.apps.subscripts import SubscriptClass, SubscriptStudy, classify_subscripts
from repro.apps.trip_counts import LoopTripCount, known_trip_counts

__all__ = [
    "LoopTripCount",
    "SubscriptClass",
    "SubscriptStudy",
    "classify_subscripts",
    "known_trip_counts",
]
