"""Pipeline profiling: stage wall-clock timers and work counters.

The analysis pipeline has a handful of well-defined stages (parse,
lower, prepare/SSA, jump-function generation, propagation,
substitution); :class:`PipelineProfile` accumulates per-stage wall time
and arbitrary named counters for one run and renders them as JSON (the
CLI's ``--profile``) or as a table. The engine
(:mod:`repro.engine`) attaches one profile per run; the benchmark
``benchmarks/test_bench_pipeline.py`` reads the same numbers into
``BENCH_PIPELINE.json``.

Module-level :data:`GLOBAL_COUNTERS` are process-wide counters used by
instrumentation points that have no profile object in reach (the
frontend counts parses, the lowerer counts lowerings); tests read them
to assert work was *not* repeated (the memoization guarantees).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Mapping, Optional


class PipelineProfile:
    """Wall-clock stage timers plus named counters for one analysis run.

    Stages may be entered repeatedly (complete propagation re-runs the
    back half); times accumulate and the call count is kept alongside.
    """

    def __init__(self) -> None:
        self._seconds: Dict[str, float] = {}
        self._calls: Dict[str, int] = {}
        self._counters: Dict[str, int] = {}
        self._order: list = []

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a ``with``-scoped pipeline stage."""
        begin = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - begin)

    def add_time(self, name: str, seconds: float) -> None:
        if name not in self._seconds:
            self._order.append(name)
            self._seconds[name] = 0.0
            self._calls[name] = 0
        self._seconds[name] += seconds
        self._calls[name] += 1

    def count(self, name: str, amount: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + amount

    def set_counter(self, name: str, value: int) -> None:
        self._counters[name] = value

    def merge_counters(self, counters: Mapping[str, int]) -> None:
        for name, value in counters.items():
            self.count(name, value)

    def seconds(self, name: str) -> float:
        return self._seconds.get(name, 0.0)

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    @property
    def total_seconds(self) -> float:
        return sum(self._seconds.values())

    def to_dict(self) -> dict:
        """JSON-ready report: per-stage seconds/calls plus counters."""
        return {
            "stages": {
                name: {
                    "seconds": round(self._seconds[name], 6),
                    "calls": self._calls[name],
                }
                for name in self._order
            },
            "counters": dict(sorted(self._counters.items())),
            "total_seconds": round(self.total_seconds, 6),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def format(self) -> str:
        """Fixed-width table for terminal output."""
        lines = [f"{'stage':<20} {'seconds':>10} {'calls':>6}"]
        for name in self._order:
            lines.append(
                f"{name:<20} {self._seconds[name]:>10.4f} {self._calls[name]:>6}"
            )
        lines.append(f"{'total':<20} {self.total_seconds:>10.4f}")
        if self._counters:
            lines.append("counters:")
            for name in sorted(self._counters):
                lines.append(f"  {name:<20} {self._counters[name]}")
        return "\n".join(lines)


def aggregate_profiles(profiles) -> dict:
    """Fold many :meth:`PipelineProfile.to_dict` payloads into one.

    Stage seconds/calls and counters sum; the result has the same shape
    as a single profile dict, so renderers need not care whether they
    are looking at one run or a whole batch. Stage order follows first
    appearance across the inputs.
    """
    stages: Dict[str, dict] = {}
    counters: Dict[str, int] = {}
    total = 0.0
    for payload in profiles:
        if payload is None:
            continue
        for name, entry in payload.get("stages", {}).items():
            slot = stages.setdefault(name, {"seconds": 0.0, "calls": 0})
            slot["seconds"] = round(slot["seconds"] + entry["seconds"], 6)
            slot["calls"] += entry["calls"]
        for name, value in payload.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        total += payload.get("total_seconds", 0.0)
    return {
        "stages": stages,
        "counters": dict(sorted(counters.items())),
        "total_seconds": round(total, 6),
    }


#: Process-wide counters for instrumentation points without a profile in
#: reach. Keys in use: ``"parses"`` (frontend parse_source calls),
#: ``"lowerings"`` (ir.lowering lower_module calls), and
#: ``"parse_memo_hits"`` / ``"analysis_memo_hits"`` /
#: ``"interp_memo_hits"`` (repro.engine.memo).
GLOBAL_COUNTERS: Dict[str, int] = {}


def bump(name: str, amount: int = 1) -> None:
    GLOBAL_COUNTERS[name] = GLOBAL_COUNTERS.get(name, 0) + amount


def counter(name: str) -> int:
    return GLOBAL_COUNTERS.get(name, 0)


def reset_counters() -> None:
    GLOBAL_COUNTERS.clear()


@contextmanager
def maybe_stage(profile: Optional[PipelineProfile], name: str) -> Iterator[None]:
    """``profile.stage(name)`` when a profile is attached, no-op otherwise."""
    if profile is None:
        yield
    else:
        with profile.stage(name):
            yield
