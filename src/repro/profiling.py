"""Pipeline profiling: stage wall-clock timers and work counters.

The analysis pipeline has a handful of well-defined stages (parse,
lower, prepare/SSA, jump-function generation, propagation,
substitution); :class:`PipelineProfile` accumulates per-stage wall time
and arbitrary named counters for one run and renders them as JSON (the
CLI's ``--profile``) or as a table. The engine
(:mod:`repro.engine`) attaches one profile per run; the benchmark
``benchmarks/test_bench_pipeline.py`` reads the same numbers into
``BENCH_PIPELINE.json``.

Process-wide counters for instrumentation points with no profile object
in reach (the frontend counts parses, the lowerer counts lowerings)
live in the :mod:`repro.obs.metrics` default registry; the
:func:`bump` / :func:`counter` / :func:`reset_counters` functions here
are thin shims over it, kept so existing call sites and tests read the
same way. The old ``GLOBAL_COUNTERS`` module dict is gone — consumers
that need isolation snapshot the registry and take deltas instead of
resetting it (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional

from repro.obs import metrics as _metrics
from repro.obs import timeline as _timeline
from repro.obs import trace as _trace

#: Version tag of the ``--profile`` JSON shape. 2 = added this field;
#: every version-1 key (stages / counters / total_seconds) is unchanged.
PROFILE_SCHEMA_VERSION = 2


class PipelineProfile:
    """Wall-clock stage timers plus named counters for one analysis run.

    Stages may be entered repeatedly (complete propagation re-runs the
    back half); times accumulate and the call count is kept alongside.
    """

    def __init__(self) -> None:
        self._seconds: Dict[str, float] = {}
        self._calls: Dict[str, int] = {}
        self._counters: Dict[str, int] = {}
        self._order: List[str] = []

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a ``with``-scoped pipeline stage."""
        begin = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - begin)

    def add_time(self, name: str, seconds: float) -> None:
        if name not in self._seconds:
            self._order.append(name)
            self._seconds[name] = 0.0
            self._calls[name] = 0
        self._seconds[name] += seconds
        self._calls[name] += 1

    def count(self, name: str, amount: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + amount

    def set_counter(self, name: str, value: int) -> None:
        self._counters[name] = value

    def merge_counters(self, counters: Mapping[str, int]) -> None:
        for name, value in counters.items():
            self.count(name, value)

    def seconds(self, name: str) -> float:
        return self._seconds.get(name, 0.0)

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    @property
    def total_seconds(self) -> float:
        return sum(self._seconds.values())

    def to_dict(self) -> dict:
        """JSON-ready report: per-stage seconds/calls plus counters."""
        return {
            "schema_version": PROFILE_SCHEMA_VERSION,
            "stages": {
                name: {
                    "seconds": round(self._seconds[name], 6),
                    "calls": self._calls[name],
                }
                for name in self._order
            },
            "counters": dict(sorted(self._counters.items())),
            "total_seconds": round(self.total_seconds, 6),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def format(self) -> str:
        """Fixed-width table for terminal output."""
        lines = [f"{'stage':<20} {'seconds':>10} {'calls':>6}"]
        for name in self._order:
            lines.append(
                f"{name:<20} {self._seconds[name]:>10.4f} {self._calls[name]:>6}"
            )
        lines.append(f"{'total':<20} {self.total_seconds:>10.4f}")
        if self._counters:
            lines.append("counters:")
            for name in sorted(self._counters):
                lines.append(f"  {name:<20} {self._counters[name]}")
        return "\n".join(lines)


def aggregate_profiles(profiles) -> dict:
    """Fold many :meth:`PipelineProfile.to_dict` payloads into one.

    Stage seconds/calls and counters sum; the result has the same shape
    as a single profile dict, so renderers need not care whether they
    are looking at one run or a whole batch. Stage order follows first
    appearance across the inputs.
    """
    stages: Dict[str, dict] = {}
    counters: Dict[str, int] = {}
    total = 0.0
    for payload in profiles:
        if payload is None:
            continue
        for name, entry in payload.get("stages", {}).items():
            slot = stages.setdefault(name, {"seconds": 0.0, "calls": 0})
            slot["seconds"] = round(slot["seconds"] + entry["seconds"], 6)
            slot["calls"] += entry["calls"]
        for name, value in payload.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        total += payload.get("total_seconds", 0.0)
    return {
        "schema_version": PROFILE_SCHEMA_VERSION,
        "stages": stages,
        "counters": dict(sorted(counters.items())),
        "total_seconds": round(total, 6),
    }


# -- process-wide counter shims (over repro.obs.metrics) ----------------------
#
# Keys in use: "parses" (frontend parse_source calls), "lowerings"
# (ir.lowering lower_module calls), and "parse_memo_hits" /
# "analysis_memo_hits" / "interp_memo_hits" (repro.engine.memo).


def bump(name: str, amount: int = 1) -> None:
    _metrics.inc(name, amount)


def counter(name: str) -> int:
    return _metrics.value(name)


def global_counters() -> Dict[str, int]:
    """Non-zero process-wide counters, as a plain sorted dict."""
    return _metrics.default_registry().counters()


def reset_counters() -> None:
    _metrics.reset()


@contextmanager
def maybe_stage(profile: Optional[PipelineProfile], name: str) -> Iterator[None]:
    """``profile.stage(name)`` when a profile is attached, no-op
    otherwise; either way the stage becomes a trace span when tracing
    is enabled (so ``--trace`` works without ``--profile``) and feeds
    the thread's request timeline when one is observing (the daemon's
    per-request stage breakdown)."""
    observer = _timeline.current_observer()
    if observer is None and not _trace.ENABLED:
        with _stage_inner(profile, name):
            yield
        return
    begin = time.perf_counter() if observer is not None else 0.0
    try:
        if _trace.ENABLED:
            with _trace.span(f"stage.{name}"):
                with _stage_inner(profile, name):
                    yield
        else:
            with _stage_inner(profile, name):
                yield
    finally:
        if observer is not None:
            observer.record_stage(name, time.perf_counter() - begin)


@contextmanager
def _stage_inner(profile: Optional[PipelineProfile], name: str) -> Iterator[None]:
    if profile is None:
        yield
    else:
        with profile.stage(name):
            yield
