"""Command-line interface.

Subcommands:

- ``analyze FILE`` — run one configuration on a MiniFortran program and
  report CONSTANTS sets, substitution counts, and (optionally) the
  transformed source or the IR;
- ``link FILE...`` — resolve many files into one whole program
  (EXTERNAL/COMMON linkage, ``--entry`` selection) and analyze the
  linked call graph; link failures exit 2 with ``E005`` diagnostics;
- ``optimize FILE`` — run the IPCP-driven optimization pipeline
  (constant folding, branch folding + DCE, loop unswitching, call
  argument materialization) and report per-pass changes; ``analyze``/
  ``link``/``batch`` expose the same pipeline as ``--optimize``;
- ``compare FILE`` — run all four forward jump functions side by side;
- ``run FILE`` — execute a program with the reference interpreter;
- ``clone FILE`` — goal-directed procedure cloning, before/after;
- ``integrate FILE`` — Wegman-Zadeck procedure integration, before/after;
- ``serve --socket PATH`` — long-lived analysis daemon on a unix
  socket: warm cache answers, bounded queue with overload shedding,
  per-request deadlines, graceful signal-driven drain;
- ``client OP [FILE] --socket PATH`` — query a running daemon
  (``analyze``/``explain``/``invalidate``/``status``/``shutdown``);
- ``suite`` — write the 12 benchmark programs to disk as .f files;
- ``tables`` — regenerate the study's Tables 1-3 on the bundled
  benchmark suite;
- ``oracle`` — differential-testing campaign: N seeded random programs
  executed through the reference interpreter and cross-checked against
  the analysis (soundness, semantic preservation, budget monotonicity),
  with failing cases minimized and written to a corpus directory.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import List, Optional

from repro.config import AnalysisBudget, AnalysisConfig, BudgetExceeded, JumpFunctionKind
from repro.frontend.errors import FrontendError
from repro.ipcp.driver import analyze_file, analyze_file_resilient
from repro.ir.verify import VerificationError

#: Exit codes (``analyze`` subcommand): 0 = clean analysis, 1 = source
#: diagnostics were reported, 2 = internal failure (IR verification,
#: budget escape with fault isolation off, unexpected crash).
#: Long-running subcommands (``batch``, ``serve``) exit with the
#: conventional 128+signum codes after a signal-driven drain.
EXIT_OK = 0
EXIT_DIAGNOSTICS = 1
EXIT_INTERNAL = 2
EXIT_SIGINT = 130
EXIT_SIGTERM = 143


class _SignalInterrupt(Exception):
    """Raised by the batch signal handlers so an in-flight pool wait
    unwinds through ordinary exception handling (clean shutdown, flush,
    conventional exit code) instead of dying in a traceback."""

    def __init__(self, signum: int):
        super().__init__(f"interrupted by signal {signum}")
        self.signum = signum


def _install_interrupt_handlers():
    """Route SIGINT/SIGTERM into :class:`_SignalInterrupt`; returns the
    previous handlers for restoration (no-op off the main thread)."""
    import signal

    def _handler(signum, frame):
        raise _SignalInterrupt(signum)

    previous = {}
    for name in ("SIGINT", "SIGTERM"):
        signum = getattr(signal, name, None)
        if signum is None:
            continue
        try:
            previous[signum] = signal.signal(signum, _handler)
        except (ValueError, OSError):
            pass
    return previous


def _restore_interrupt_handlers(previous) -> None:
    import signal

    for signum, old in previous.items():
        try:
            signal.signal(signum, old)
        except (ValueError, OSError):
            pass

_KIND_ALIASES = {
    "literal": JumpFunctionKind.LITERAL,
    "intra": JumpFunctionKind.INTRAPROCEDURAL,
    "intraprocedural": JumpFunctionKind.INTRAPROCEDURAL,
    "pass": JumpFunctionKind.PASS_THROUGH,
    "pass-through": JumpFunctionKind.PASS_THROUGH,
    "poly": JumpFunctionKind.POLYNOMIAL,
    "polynomial": JumpFunctionKind.POLYNOMIAL,
}


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    """The analysis-configuration flags ``analyze`` and ``batch`` share
    (everything :func:`_config_from_args` reads except the per-run
    ``--strict``/``--verify-ir`` pair, which stays analyze-only)."""
    parser.add_argument(
        "--jump",
        default="poly",
        choices=sorted(_KIND_ALIASES),
        help="forward jump function implementation (default: poly)",
    )
    parser.add_argument(
        "--no-returns", action="store_true", help="disable return jump functions"
    )
    parser.add_argument(
        "--no-mod", action="store_true", help="disable MOD side-effect information"
    )
    parser.add_argument(
        "--complete",
        action="store_true",
        help="iterate propagation with dead-code elimination",
    )
    parser.add_argument(
        "--intra-only",
        action="store_true",
        help="purely intraprocedural propagation (with MOD)",
    )
    parser.add_argument(
        "--gsa",
        action="store_true",
        help="GSA-style refinement (complete-propagation results, no DCE)",
    )
    parser.add_argument(
        "--solver-fuel",
        type=int,
        default=None,
        metavar="N",
        help="cap interprocedural propagation at N procedure visits",
    )
    parser.add_argument(
        "--sccp-fuel",
        type=int,
        default=None,
        metavar="N",
        help="cap each SCCP run at N instruction evaluations",
    )
    parser.add_argument(
        "--max-poly-terms",
        type=int,
        default=None,
        metavar="N",
        help="demote polynomial jump functions larger than N terms",
    )
    parser.add_argument(
        "--solver",
        default="fifo",
        choices=("fifo", "lifo", "priority"),
        help="interprocedural worklist discipline (default: fifo; the "
        "fixpoint is identical, only the work differs)",
    )


def _add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache",
        action="store_true",
        help="reuse procedure summaries across runs via the persistent "
        "cache (default location; see --cache-dir)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent summary cache directory (implies --cache; "
        "default: $REPRO_CACHE_DIR, $XDG_CACHE_HOME/repro, or "
        "~/.cache/repro)",
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="emit per-stage timings and counters as JSON to FILE "
        "(default: stdout)",
    )
    parser.add_argument(
        "--explain-invalidation",
        action="store_true",
        help="with --cache: report which procedures were recomputed "
        "since the previous run of each file, and why",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="record structured trace events and write Chrome "
        "trace-event JSON to FILE (loadable in Perfetto / "
        "chrome://tracing)",
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help="write Prometheus text-format metrics to FILE "
        "('-' = stdout)",
    )
    parser.add_argument(
        "--log",
        default=None,
        metavar="FILE",
        dest="log",
        help="write a structured JSON-lines log to FILE ('-' = stderr); "
        "every record carries the invocation's request_id/trace_id",
    )
    parser.add_argument(
        "--log-level",
        default="info",
        choices=("debug", "info", "warn", "error"),
        help="minimum severity for --log records (default: info)",
    )


def _add_optimize_arguments(parser: argparse.ArgumentParser) -> None:
    """The optimization-backend flags ``analyze``/``link``/``batch``
    share (``repro optimize`` spells them natively)."""
    parser.add_argument(
        "--optimize",
        action="store_true",
        help="run the IPCP-driven optimization pipeline on the analyzed "
        "program and report per-pass changes",
    )
    parser.add_argument(
        "--passes",
        default=None,
        metavar="LIST",
        help="with --optimize: comma-separated pass subset "
        "(fold,branches,unswitch,callargs; default: all)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ipcp",
        description="Interprocedural constant propagation with jump functions",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="analyze one program")
    analyze.add_argument("file", help="MiniFortran source file")
    _add_config_arguments(analyze)
    analyze.add_argument(
        "--transform",
        action="store_true",
        help="print the source with constants substituted",
    )
    analyze.add_argument(
        "--dump-ir", action="store_true", help="print the SSA IR after analysis"
    )
    analyze.add_argument(
        "--stats", action="store_true", help="print analysis statistics"
    )
    analyze.add_argument(
        "--explain",
        default=None,
        metavar="NAME@PROC",
        help="print the derivation tree of one VAL cell: how the value "
        "of NAME at PROC's entry was established (or which call-site "
        "meet killed it)",
    )
    analyze.add_argument(
        "--dot",
        metavar="DIR",
        default=None,
        help="write Graphviz files (call graph + one CFG per procedure)",
    )
    analyze.add_argument(
        "--strict",
        action="store_true",
        help="fail fast: no frontend recovery, no fault isolation, and "
        "any component demotion is an error",
    )
    analyze.add_argument(
        "--verify-ir",
        action="store_true",
        help="run the structural IR/SSA verifier between pipeline stages",
    )
    _add_optimize_arguments(analyze)
    analyze.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="generate procedure summaries on N parallel workers "
        "(default: 1 = serial; results are byte-identical)",
    )
    analyze.add_argument(
        "--no-arena",
        action="store_true",
        help="with --jobs N: exchange summaries over the worker pool's "
        "pickle channel instead of the shared-memory arena (results "
        "are byte-identical either way)",
    )
    _add_cache_arguments(analyze)

    link = sub.add_parser(
        "link",
        help="link many files into one whole program and analyze it",
    )
    link.add_argument(
        "files", nargs="+", metavar="FILE",
        help="MiniFortran source files forming one program",
    )
    link.add_argument(
        "--entry", default=None, metavar="NAME",
        help="PROGRAM unit to use as the entry point (required when "
        "the files define more than one)",
    )
    _add_config_arguments(link)
    link.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="generate procedure summaries on N parallel workers "
        "(default: 1 = serial; results are byte-identical)",
    )
    link.add_argument(
        "--no-arena", action="store_true",
        help="with --jobs N: exchange summaries over the worker pool's "
        "pickle channel instead of the shared-memory arena (results "
        "are byte-identical either way)",
    )
    _add_cache_arguments(link)
    link.add_argument(
        "--symbols", action="store_true",
        help="print the program-level symbol table (unit -> defining "
        "file, COMMON block -> first declaration)",
    )
    link.add_argument(
        "--explain", default=None, metavar="NAME@PROC",
        help="print the derivation tree of one VAL cell of the linked "
        "program",
    )
    link.add_argument(
        "--stats", action="store_true", help="print analysis statistics"
    )
    link.add_argument(
        "--dump-ir", action="store_true",
        help="print the SSA IR after analysis",
    )
    _add_optimize_arguments(link)

    batch = sub.add_parser(
        "batch", help="analyze many programs against one worker pool"
    )
    batch.add_argument(
        "files", nargs="*", metavar="FILE",
        help="MiniFortran source files",
    )
    batch.add_argument(
        "--stdin-list",
        action="store_true",
        help="read additional file paths from stdin, one per line "
        "('#' lines are comments)",
    )
    _add_config_arguments(batch)
    batch.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="analyze files on N persistent pool workers (default: 1; "
        "per-file results are byte-identical at any N)",
    )
    _add_cache_arguments(batch)
    batch.add_argument(
        "--report",
        action="store_true",
        help="print each file's full CONSTANTS report, not just the "
        "one-line summary",
    )
    batch.add_argument(
        "--link",
        action="store_true",
        help="treat the files as one whole program (EXTERNAL/COMMON "
        "linkage) instead of N independent closed programs",
    )
    batch.add_argument(
        "--entry", default=None, metavar="NAME",
        help="with --link: PROGRAM unit to use as the entry point",
    )
    _add_optimize_arguments(batch)

    optimize = sub.add_parser(
        "optimize",
        help="run the IPCP-driven optimization pipeline on one program",
    )
    optimize.add_argument("file", help="MiniFortran source file")
    _add_config_arguments(optimize)
    optimize.add_argument(
        "--passes",
        default=None,
        metavar="LIST",
        help="comma-separated pass subset "
        "(fold,branches,unswitch,callargs; default: all)",
    )
    optimize.add_argument(
        "--dump-ir",
        action="store_true",
        help="print the optimized (post-SSA) IR",
    )
    optimize.add_argument(
        "-o", "--output",
        default=None,
        metavar="FILE",
        help="write the optimized IR text to FILE",
    )
    optimize.add_argument(
        "--verify-ir",
        action="store_true",
        help="run the structural IR verifier after every optimization "
        "pass (disables the warm-cache replay path)",
    )
    optimize.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="generate procedure summaries on N parallel workers "
        "(default: 1 = serial; results are byte-identical)",
    )
    optimize.add_argument(
        "--no-arena",
        action="store_true",
        help="with --jobs N: exchange summaries over the worker pool's "
        "pickle channel instead of the shared-memory arena (results "
        "are byte-identical either way)",
    )
    _add_cache_arguments(optimize)

    serve = sub.add_parser(
        "serve",
        help="run the long-lived analysis daemon on a unix socket",
    )
    serve.add_argument(
        "--socket", required=True, metavar="PATH",
        help="unix socket path to listen on",
    )
    _add_config_arguments(serve)
    serve.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="engine worker pool size for each analysis "
        "(default: 1 = serial; results are byte-identical)",
    )
    serve.add_argument(
        "--no-arena", action="store_true",
        help="with --jobs N: exchange summaries over the worker pool's "
        "pickle channel instead of the shared-memory arena (results "
        "are byte-identical either way)",
    )
    serve.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent cache directory (default: the standard cache "
        "root — a daemon without its caches answers nothing warm)",
    )
    serve.add_argument(
        "--no-cache", action="store_true",
        help="run without the persistent cache (every analyze is cold)",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=16, metavar="N",
        help="bounded request queue depth; beyond it requests are shed "
        "with an 'overloaded' error and a retry_after hint (default: 16)",
    )
    serve.add_argument(
        "--deadline", type=float, default=30.0, metavar="SECONDS",
        help="default per-request deadline; requests may override via "
        "params.deadline_ms; 0 = unlimited (default: 30)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=5.0, metavar="SECONDS",
        help="grace period for queued/in-flight work after SIGTERM/"
        "SIGINT/shutdown before the rest is cancelled (default: 5)",
    )
    serve.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="write Prometheus text-format metrics to FILE at drain",
    )
    serve.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write Chrome trace-event JSON to FILE at drain",
    )
    serve.add_argument(
        "--log", default=None, metavar="FILE",
        help="write a structured JSON-lines request log to FILE "
        "('-' = stderr); every record carries a request_id",
    )
    serve.add_argument(
        "--log-level", default="info",
        choices=("debug", "info", "warn", "error"),
        help="minimum severity for --log records (default: info)",
    )
    serve.add_argument(
        "--slow-request", type=float, default=None, metavar="SECONDS",
        help="log a 'request.slow' record (stage timings + cache "
        "profile) for any request slower than SECONDS end to end",
    )
    serve.add_argument(
        "--obs-window", type=int, default=256, metavar="N",
        help="per-request ring buffer capacity behind 'repro top' and "
        "the 'obs' protocol op (default: 256)",
    )
    serve.add_argument(
        "--inject-fault", action="append", default=[], metavar="SPEC",
        help="arm a deterministic fault (repeatable), e.g. "
        "'kill-worker:stage=ret,nth=1' or 'delay-request:ms=200'; "
        "see repro.faults for the registry",
    )

    client = sub.add_parser(
        "client", help="query a running 'repro serve' daemon"
    )
    client.add_argument(
        "op", choices=("analyze", "explain", "invalidate", "status",
                       "obs", "shutdown"),
        help="operation to request",
    )
    client.add_argument(
        "file", nargs="*", default=[],
        help="input file (analyze/explain/invalidate); several files "
        "are sent as one linked-project manifest",
    )
    client.add_argument(
        "--socket", required=True, metavar="PATH",
        help="unix socket path of the daemon",
    )
    client.add_argument(
        "--entry", default=None, metavar="NAME",
        help="entry PROGRAM unit for a linked-project request",
    )
    client.add_argument(
        "--explain", default=None, metavar="NAME@PROC",
        help="also render the derivation of one VAL cell "
        "(analyze/explain)",
    )
    client.add_argument(
        "--deadline-ms", type=int, default=None, metavar="N",
        help="per-request deadline override in milliseconds",
    )
    client.add_argument(
        "--timeout", type=float, default=30.0, metavar="SECONDS",
        help="client-side socket timeout (default: 30)",
    )
    client.add_argument(
        "--json", action="store_true",
        help="print the raw response envelope as JSON",
    )
    client.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="op 'obs': newest ring-buffer requests to include",
    )

    top = sub.add_parser(
        "top",
        help="live per-request view of a running daemon (polls the "
        "'obs' op)",
    )
    top.add_argument(
        "--socket", required=True, metavar="PATH",
        help="unix socket path of the daemon",
    )
    top.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="refresh interval (default: 2)",
    )
    top.add_argument(
        "--iterations", type=int, default=0, metavar="N",
        help="stop after N refreshes (default: 0 = until interrupted)",
    )
    top.add_argument(
        "--limit", type=int, default=10, metavar="N",
        help="newest ring-buffer requests to show (default: 10)",
    )
    top.add_argument(
        "--timeout", type=float, default=30.0, metavar="SECONDS",
        help="client-side socket timeout (default: 30)",
    )

    obs = sub.add_parser(
        "obs", help="offline telemetry analysis (logs, traces, metrics)"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_report = obs_sub.add_parser(
        "report",
        help="join telemetry artifacts by request_id into a "
        "per-request stage breakdown table",
    )
    obs_report.add_argument(
        "artifact", nargs="+", metavar="TRACE_OR_LOG",
        help="artifact files: JSONL logs (--log), Chrome traces "
        "(--trace), Prometheus metrics (--metrics); kinds are "
        "auto-detected from content",
    )

    compare = sub.add_parser("compare", help="compare all four jump functions")
    compare.add_argument("file", help="MiniFortran source file")

    run = sub.add_parser("run", help="execute a program with the interpreter")
    run.add_argument("file", help="MiniFortran source file")
    run.add_argument(
        "--input",
        type=int,
        action="append",
        default=[],
        help="integer fed to READ statements (repeatable)",
    )
    run.add_argument(
        "--fuel", type=int, default=10_000_000, help="instruction budget"
    )

    clone = sub.add_parser("clone", help="procedure cloning on conflicts")
    clone.add_argument("file", help="MiniFortran source file")
    clone.add_argument(
        "--max-clones", type=int, default=4, help="clones per procedure cap"
    )

    integrate = sub.add_parser(
        "integrate", help="procedure integration (Wegman-Zadeck comparator)"
    )
    integrate.add_argument("file", help="MiniFortran source file")
    integrate.add_argument("--depth", type=int, default=6, help="inline rounds")

    suite = sub.add_parser(
        "suite", help="write the benchmark suite programs to a directory"
    )
    suite.add_argument(
        "--out", default="suite_programs", help="output directory"
    )

    tables = sub.add_parser("tables", help="regenerate the paper's tables")
    tables.add_argument(
        "--table",
        type=int,
        choices=(1, 2, 3),
        default=None,
        help="which table (default: all)",
    )

    oracle = sub.add_parser(
        "oracle", help="run the interpreter-backed differential oracle"
    )
    oracle.add_argument(
        "--trials", type=int, default=50, metavar="N",
        help="number of seeded trials (default: 50)",
    )
    oracle.add_argument(
        "--seed", type=int, default=0, metavar="S",
        help="first seed; trials use S..S+N-1 (default: 0)",
    )
    oracle.add_argument(
        "--corpus", default=None, metavar="DIR",
        help="directory for minimized counterexamples (only written on failure)",
    )
    oracle.add_argument(
        "--procedures", type=int, default=None, metavar="K",
        help="procedures per generated program",
    )
    oracle.add_argument(
        "--max-statements", type=int, default=None, metavar="M",
        help="statement budget per generated procedure",
    )
    oracle.add_argument(
        "--property",
        action="append",
        choices=("soundness", "preservation", "monotonicity"),
        default=None,
        help="check only these properties (repeatable; default: all)",
    )
    oracle.add_argument(
        "--no-minimize", action="store_true",
        help="skip counterexample shrinking on failure",
    )
    oracle.add_argument(
        "--link-trials", type=int, default=None, metavar="N",
        help="run N partition-invariance trials instead of the "
        "standard campaign: each seeded program is split into K files "
        "(with generated EXTERNAL declarations), linked, and the "
        "linked analysis must be byte-identical to the unsplit one",
    )
    oracle.add_argument(
        "--opt-trials", type=int, default=None, metavar="N",
        help="run N differential-equivalence trials instead of the "
        "standard campaign: each seeded program is optimized under "
        "every pass subset and must interpret byte-identically to the "
        "unoptimized original; failures are minimized like the "
        "soundness campaign's",
    )
    oracle.add_argument(
        "--max-partitions", type=int, default=4, metavar="K",
        help="with --link-trials: maximum number of files per split "
        "(default: 4)",
    )
    oracle.add_argument(
        "--profile",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="emit campaign stage timings and counters (memo hits, "
        "parses) as JSON to FILE (default: stdout)",
    )
    return parser


def _config_from_args(args: argparse.Namespace) -> AnalysisConfig:
    if args.intra_only:
        config = AnalysisConfig.intraprocedural_only()
    else:
        config = AnalysisConfig(
            jump_function=_KIND_ALIASES[args.jump],
            use_return_functions=not args.no_returns,
            use_mod=not args.no_mod,
            complete=args.complete,
            gsa_refinement=args.gsa,
        )
    budget = AnalysisBudget(
        solver_visits=args.solver_fuel,
        sccp_visits=args.sccp_fuel,
        polynomial_terms=args.max_poly_terms,
    )
    return replace(
        config,
        budget=budget,
        solver_strategy=getattr(args, "solver", "fifo"),
        fault_isolation=not getattr(args, "strict", False),
        verify_ir=getattr(args, "verify_ir", False),
    )


def _engine_from_args(args: argparse.Namespace):
    """Build an :class:`repro.engine.Engine` when any engine feature is
    requested; plain serial analysis (None) otherwise, so the default
    CLI path stays exactly the pre-engine pipeline."""
    wants_cache = (
        args.cache
        or args.cache_dir is not None
        or getattr(args, "explain_invalidation", False)
    )
    if args.jobs <= 1 and not wants_cache and args.profile is None:
        return None
    from repro.engine import Engine, default_cache_root
    from repro.profiling import PipelineProfile

    cache_dir = None
    if wants_cache:
        cache_dir = args.cache_dir or default_cache_root()
    profile = PipelineProfile() if args.profile is not None else None
    arena = False if getattr(args, "no_arena", False) else None
    return Engine(
        jobs=args.jobs, cache_dir=cache_dir, profile=profile, arena=arena
    )


def _render_substitution_counts(per_procedure) -> None:
    for name in sorted(per_procedure):
        count = per_procedure[name]
        if count:
            print(f"  {name}: {count}")


def _emit_profile(engine, destination: str) -> None:
    engine.finish_profile()
    from repro import profiling

    engine.profile.merge_counters(profiling.global_counters())
    text = engine.profile.to_json()
    if destination == "-":
        print("\n--- profile ---")
        print(text)
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"[profile written to {destination}]")


def _start_trace(args: argparse.Namespace):
    """Install the process tracer when ``--trace`` was given."""
    if getattr(args, "trace", None) is None:
        return None
    from repro.obs import trace

    return trace.enable()


def _write_trace(args: argparse.Namespace, tracer) -> None:
    if tracer is None:
        return
    import json

    from repro.obs import trace

    trace.disable()
    payload = tracer.to_chrome()
    with open(args.trace, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
        handle.write("\n")
    print(
        f"[trace written to {args.trace} "
        f"({len(payload['traceEvents'])} events)]",
        file=sys.stderr,
    )


def _write_metrics(args: argparse.Namespace, registry=None) -> None:
    if getattr(args, "metrics", None) is None:
        return
    from repro.obs import metrics

    text = (registry or metrics.default_registry()).to_prometheus()
    if args.metrics == "-":
        sys.stdout.write(text)
    else:
        with open(args.metrics, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"[metrics written to {args.metrics}]", file=sys.stderr)


def _start_obs(args: argparse.Namespace, command: str):
    """Begin request-scoped telemetry for one CLI invocation: enable
    ``--log`` if given, and install a ``cli-<command>`` correlation
    context whenever any telemetry sink (log or trace) is active, so
    every record and every worker flow carries the same ids.

    Returns ``(logger, context)`` for :func:`_finish_obs`.
    """
    logger = None
    context = None
    if getattr(args, "log", None) is not None:
        from repro.obs import log as obs_log

        logger = obs_log.enable(
            args.log, level=getattr(args, "log_level", "info")
        )
    if logger is not None or getattr(args, "trace", None) is not None:
        from repro.obs import context as obs_context

        context = obs_context.RequestContext(f"cli-{command}")
        obs_context.set_context(context)
    if logger is not None:
        from repro.obs import log as obs_log

        obs_log.info("cli.start", command=command)
    return logger, context


def _flow_root(context, **attrs) -> None:
    """Emit the invocation's flow-root event (inside the root span):
    pool workers stitch to it with "t" steps sharing the same id."""
    if context is None:
        return
    from repro.obs import context as obs_context
    from repro.obs import trace

    if trace.ENABLED:
        trace.flow(
            "request", "s", obs_context.flow_id(context.request_id),
            request_id=context.request_id, **attrs,
        )


def _finish_obs(args: argparse.Namespace, logger, context,
                exit_code=None) -> None:
    if logger is not None:
        from repro.obs import log as obs_log

        obs_log.info("cli.end", exit_code=exit_code)
        obs_log.disable()
        if args.log != "-":
            print(
                f"[log written to {args.log} "
                f"({logger.records_written} records)]",
                file=sys.stderr,
            )
    if context is not None:
        from repro.obs import context as obs_context

        if obs_context.current() is context:
            obs_context.clear()


def _print_explain(provenance, query: str) -> int:
    """Render one ``--explain`` section; EXIT_OK or EXIT_DIAGNOSTICS
    (unknown/malformed cell query)."""
    print(f"\n--- explain {query} ---")
    try:
        sys.stdout.write(provenance.explain(query))
    except ValueError as err:
        print(f"explain: {err}", file=sys.stderr)
        return EXIT_DIAGNOSTICS
    return EXIT_OK


def _payload_serves(payload: dict, args: argparse.Namespace) -> bool:
    """Whether a cached run payload carries every rendering this
    invocation needs. Payloads record ``stats``/``ir`` as None when
    their rendering failed at store time; such runs fall through to a
    live analysis rather than silently dropping a section."""
    if args.dump_ir and payload.get("ir") is None:
        return False
    if args.stats and payload.get("stats") is None:
        return False
    if getattr(args, "explain", None):
        from repro.obs.provenance import ConstantProvenance

        if ConstantProvenance.from_payload(payload.get("provenance")) is None:
            return False
    return True


def _replay_cached_run(payload: dict, args: argparse.Namespace, engine) -> int:
    """Render a cached whole-run outcome — only clean runs are ever
    recorded, so this is always a diagnostics-free EXIT_OK replay.
    Sections print in the live path's order (transform, IR, stats)."""
    print(f"configuration: {payload['config']}")
    print(payload["constants_report"])
    print(f"substituted constant references: {payload['substituted']}")
    _render_substitution_counts(payload["per_procedure"])
    exit_code = EXIT_OK
    if getattr(args, "explain", None):
        from repro.obs.provenance import ConstantProvenance

        provenance = ConstantProvenance.from_payload(payload["provenance"])
        exit_code = _print_explain(provenance, args.explain)
    if args.transform and payload.get("transformed_source") is not None:
        print("\n--- transformed source ---")
        print(payload["transformed_source"])
    if args.dump_ir:
        print("\n--- SSA IR ---")
        print(payload["ir"])
    if args.stats:
        print("\n--- statistics ---")
        print(payload["stats"])
    if args.explain_invalidation:
        print("\n--- invalidation ---")
        print(engine.replayed_report(args.file).format())
    return exit_code


def _cmd_analyze(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    engine = _engine_from_args(args)
    tracer = _start_trace(args)
    logger, context = _start_obs(args, "analyze")
    code: Optional[int] = None
    try:
        from repro.obs import trace

        with trace.span("analyze", file=args.file,
                        request_id=context.request_id if context else None):
            _flow_root(context, op="analyze", path=args.file)
            code = _run_analyze(args, config, engine)
            return code
    finally:
        if engine is not None:
            if engine.profile is not None:
                _emit_profile(engine, args.profile)
            engine.close()
        _write_trace(args, tracer)
        _write_metrics(args)
        _finish_obs(args, logger, context, exit_code=code)


def _run_analyze(args: argparse.Namespace, config, engine) -> int:
    # Whole-run fast path: an unchanged (source, config) pair whose
    # previous run was clean replays its recorded output without
    # parsing — including the --stats and --dump-ir renderings, which
    # the payload carries. Modes that need the live program object
    # (dot files), strict mode, and the IR verifier bypass it.
    opt_passes = None
    if getattr(args, "optimize", False):
        from repro.opt import parse_passes

        try:
            opt_passes = parse_passes(args.passes)
        except ValueError as err:
            print(f"optimize: {err}", file=sys.stderr)
            return EXIT_DIAGNOSTICS
    replayable = not (
        args.dot or args.strict or args.verify_ir or opt_passes is not None
    )
    text = None
    if engine is not None and engine.cache is not None:
        try:
            with open(args.file, "r", encoding="utf-8") as handle:
                text = handle.read()
        except (OSError, UnicodeDecodeError):
            text = None  # let the normal path produce the located error
        if text is not None and replayable:
            payload = engine.cached_run(text, config)
            if payload is not None and _payload_serves(payload, args):
                return _replay_cached_run(payload, args, engine)

    if args.strict:
        result = analyze_file(args.file, config, engine=engine)
        diagnostics = None
    else:
        result, diagnostics = analyze_file_resilient(
            args.file, config, engine=engine
        )
        if len(diagnostics):
            print(diagnostics.format(), file=sys.stderr)
        if result is None:
            return EXIT_DIAGNOSTICS
    print(f"configuration: {config.describe()}")
    print(result.constants.format_report())
    print(f"substituted constant references: {result.substituted_constants}")
    _render_substitution_counts(result.substitution.per_procedure)
    provenance = None
    if getattr(args, "explain", None):
        from repro.obs.provenance import build_provenance

        provenance = build_provenance(result)
    opt_report = None
    if opt_passes is not None:
        from repro.opt import optimize_result

        opt_report = optimize_result(
            result, opt_passes, verify=args.verify_ir
        )
        print(opt_report.render())
        if provenance is not None:
            provenance.annotate_used_by(opt_report.used_by)
    explain_code = EXIT_OK
    if provenance is not None:
        explain_code = _print_explain(provenance, args.explain)
    if args.transform:
        print("\n--- transformed source ---")
        print(result.transformed_source())
    if args.dump_ir:
        from repro.ir.printer import format_program

        header = "optimized IR" if opt_report is not None else "SSA IR"
        print(f"\n--- {header} ---")
        print(format_program(result.program))
    if args.stats:
        from repro.ipcp.stats import collect_statistics

        print("\n--- statistics ---")
        print(collect_statistics(result).format())
    if args.dot:
        from repro.ir.dot import write_dot_files

        paths = write_dot_files(
            result.program, result.callgraph, args.dot, result.constants
        )
        print(f"[{len(paths)} Graphviz files written to {args.dot}]")
    if engine is not None and text is not None and replayable:
        engine.record_run(text, config, result)
    if engine is not None and engine.cache is not None:
        report = engine.finish_incremental(args.file)
        if report is not None and args.explain_invalidation:
            print("\n--- invalidation ---")
            print(report.format())
    if not result.resilience.ok:
        print("\n--- degraded components ---", file=sys.stderr)
        print(result.resilience.summary(), file=sys.stderr)
        if args.strict:
            return EXIT_INTERNAL
    if diagnostics is not None and diagnostics.has_errors:
        return EXIT_DIAGNOSTICS
    return explain_code


def _cmd_link(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    engine = _engine_from_args(args)
    tracer = _start_trace(args)
    logger, context = _start_obs(args, "link")
    code: Optional[int] = None
    try:
        from repro.obs import trace

        with trace.span("link", files=len(args.files),
                        request_id=context.request_id if context else None):
            _flow_root(context, op="link", files=len(args.files))
            code = _run_link(args, config, engine)
            return code
    finally:
        if engine is not None:
            if engine.profile is not None:
                _emit_profile(engine, args.profile)
            engine.close()
        _write_trace(args, tracer)
        _write_metrics(args)
        _finish_obs(args, logger, context, exit_code=code)


def _run_link(args: argparse.Namespace, config, engine) -> int:
    from repro.diagnostics import E_LINK
    from repro.linkage import (
        analyze_linked_sources,
        project_bundle_text,
        project_label,
    )

    named = []
    for path in args.files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                named.append((path, handle.read()))
        except (OSError, UnicodeDecodeError) as err:
            from repro.ipcp.driver import _located_io_error

            located = _located_io_error(path, err)
            print(f"{located.location}: error: {located.message}",
                  file=sys.stderr)
            return EXIT_DIAGNOSTICS

    bundle = project_bundle_text(named, args.entry)
    label = project_label(args.files, args.entry)
    # The replay/invalidation helpers address runs by one path; a
    # linked project's stable stand-in is its manifest label.
    args.file = label
    args.transform = False

    opt_passes = None
    if getattr(args, "optimize", False):
        from repro.opt import parse_passes

        try:
            opt_passes = parse_passes(getattr(args, "passes", None))
        except ValueError as err:
            print(f"optimize: {err}", file=sys.stderr)
            return EXIT_DIAGNOSTICS

    if (engine is not None and engine.cache is not None
            and opt_passes is None):
        payload = engine.cached_run(bundle, config)
        if payload is not None and _payload_serves(payload, args):
            return _replay_cached_run(payload, args, engine)

    result, link = analyze_linked_sources(
        named, config, entry=args.entry, engine=engine
    )
    if len(link.diagnostics):
        print(link.diagnostics.format(), file=sys.stderr)
    if result is None:
        link_failed = any(
            d.code in (E_LINK,) for d in link.diagnostics.errors()
        )
        return EXIT_INTERNAL if link_failed else EXIT_DIAGNOSTICS
    print(f"configuration: {config.describe()}")
    print(f"linked {len(args.files)} file(s) -> "
          f"{sum(1 for _ in result.program)} procedure(s)")
    if getattr(args, "symbols", False):
        print("\n--- symbol table ---")
        print(link.format_symbol_table())
    print(result.constants.format_report())
    print(f"substituted constant references: {result.substituted_constants}")
    _render_substitution_counts(result.substitution.per_procedure)
    provenance = None
    if getattr(args, "explain", None):
        from repro.obs.provenance import build_provenance

        provenance = build_provenance(result)
    opt_report = None
    if opt_passes is not None:
        from repro.opt import optimize_result

        opt_report = optimize_result(
            result, opt_passes, verify=getattr(args, "verify_ir", False)
        )
        print(opt_report.render())
        if provenance is not None:
            provenance.annotate_used_by(opt_report.used_by)
    explain_code = EXIT_OK
    if provenance is not None:
        explain_code = _print_explain(provenance, args.explain)
    if getattr(args, "dump_ir", False):
        from repro.ir.printer import format_program

        header = "optimized IR" if opt_report is not None else "SSA IR"
        print(f"\n--- {header} ---")
        print(format_program(result.program))
    if getattr(args, "stats", False):
        from repro.ipcp.stats import collect_statistics

        print("\n--- statistics ---")
        print(collect_statistics(result).format())
    if engine is not None and opt_passes is None:
        engine.record_run(bundle, config, result)
    if engine is not None and engine.cache is not None:
        report = engine.finish_incremental(label)
        if report is not None and args.explain_invalidation:
            print("\n--- invalidation ---")
            print(report.format())
    if not result.resilience.ok:
        print("\n--- degraded components ---", file=sys.stderr)
        print(result.resilience.summary(), file=sys.stderr)
    if link.diagnostics.has_errors:
        return EXIT_DIAGNOSTICS
    return explain_code


def _cmd_batch(args: argparse.Namespace) -> int:
    import json

    from repro.engine import default_cache_root
    from repro.engine.batch import read_stdin_list, run_batch
    from repro.engine.incremental import format_invalidation

    config = _config_from_args(args)
    opt_passes = None
    if getattr(args, "optimize", False) and not getattr(args, "link", False):
        from repro.opt import parse_passes

        try:
            opt_passes = parse_passes(args.passes)
        except ValueError as err:
            print(f"optimize: {err}", file=sys.stderr)
            return EXIT_DIAGNOSTICS
    paths = list(args.files)
    if args.stdin_list:
        paths.extend(read_stdin_list(sys.stdin))
    if not paths:
        print("batch: no input files", file=sys.stderr)
        return EXIT_DIAGNOSTICS
    if getattr(args, "link", False):
        # Whole-program mode: the file set is one linked program, not
        # N independent ones. Reuse the link pipeline (same flags,
        # same exit-code contract: 2 on link failure).
        args.files = paths
        for missing in ("symbols", "explain", "stats", "dump_ir"):
            if not hasattr(args, missing):
                setattr(args, missing, None)
        return _cmd_link(args)
    if len(paths) > 1:
        from repro.linkage.linker import duplicate_units_across_files

        for name, where in sorted(
            duplicate_units_across_files(paths).items()
        ):
            print(
                f"[note: unit {name!r} is defined in "
                f"{', '.join(where)}; files are analyzed as independent "
                f"closed programs (shared caches stay keyed per file) — "
                f"use --link to resolve them into one program]",
                file=sys.stderr,
            )
    wants_cache = (
        args.cache or args.cache_dir is not None or args.explain_invalidation
    )
    cache_dir = (
        (args.cache_dir or default_cache_root()) if wants_cache else None
    )
    tracer = _start_trace(args)
    logger, context = _start_obs(args, "batch")
    previous_handlers = _install_interrupt_handlers()
    interrupted: Optional[int] = None
    try:
        result = run_batch(
            paths,
            config,
            jobs=args.jobs,
            cache_dir=cache_dir,
            want_profile=args.profile is not None,
            explain=args.explain_invalidation,
            want_metrics=args.metrics is not None or args.report,
            want_trace=tracer is not None,
            optimize=opt_passes,
        )
    except _SignalInterrupt as err:
        interrupted = err.signum
    except KeyboardInterrupt:
        interrupted = EXIT_SIGINT - 128
    finally:
        _restore_interrupt_handlers(previous_handlers)
        _write_trace(args, tracer)
    if interrupted is not None:
        # Signal-driven drain: the pool shutdown already ran on the way
        # out of run_batch; flush whatever observability artifacts were
        # requested (partial by construction) and exit 128+signum
        # instead of unwinding into a traceback mid-pool.
        _write_metrics(args)
        print(
            f"[batch interrupted by signal {interrupted}: pool shut "
            f"down, partial artifacts flushed]",
            file=sys.stderr,
        )
        _finish_obs(args, logger, context, exit_code=128 + interrupted)
        return 128 + interrupted
    for note in result.notes:
        print(f"[degraded: {note}]", file=sys.stderr)
    for outcome in result.files:
        print(outcome.summary_line())
        if args.report and outcome.constants_report is not None:
            print(outcome.constants_report)
        if args.report and outcome.opt_report is not None:
            print(outcome.opt_report)
        if outcome.diagnostics:
            print(outcome.diagnostics, file=sys.stderr)
        if args.explain_invalidation and outcome.invalidation is not None:
            print(format_invalidation(outcome.invalidation))
    totals = result.totals()
    print(
        f"[{totals['files']} file(s), jobs={totals['jobs']}: "
        f"{totals['by_status'].get('ok', 0)} ok, "
        f"{totals['by_status'].get('diagnostics', 0)} with diagnostics, "
        f"{totals['by_status'].get('error', 0)} failed, "
        f"{totals['replayed']} replayed]"
    )
    merged = result.merged_metrics()
    if args.report and merged is not None:
        print("\n--- metrics (aggregated) ---")
        for name, value in merged.counters().items():
            print(f"  {name} {value}")
        histogram = merged.get_histogram("batch_file_seconds")
        if histogram is not None and histogram.count > 0:
            marks = histogram.percentiles()
            rendered = "  ".join(
                f"{label}={marks[label] * 1000:.3f}ms"
                for label in ("p50", "p95", "p99")
            )
            print(f"  batch_file_seconds {rendered}")
    _write_metrics(args, registry=merged)
    if args.profile is not None:
        text = json.dumps(result.profile_report(), indent=2)
        if args.profile == "-":
            print("\n--- profile ---")
            print(text)
        else:
            with open(args.profile, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(f"[profile written to {args.profile}]")
    code = EXIT_OK if result.ok else EXIT_DIAGNOSTICS
    _finish_obs(args, logger, context, exit_code=code)
    return code


def _replay_cached_opt(payload: dict, args: argparse.Namespace) -> int:
    """Render a cached optimization outcome byte-identically to the
    live path (report, optional IR dump, optional IR file write)."""
    print(f"configuration: {payload['config']}")
    print(payload["report"])
    if args.dump_ir:
        print("\n--- optimized IR ---")
        print(payload["ir"])
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(payload["ir"] + "\n")
        print(f"[optimized IR written to {args.output}]")
    return EXIT_OK


def _cmd_optimize(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    engine = _engine_from_args(args)
    tracer = _start_trace(args)
    logger, context = _start_obs(args, "optimize")
    code: Optional[int] = None
    try:
        from repro.obs import trace

        with trace.span("optimize", file=args.file,
                        request_id=context.request_id if context else None):
            _flow_root(context, op="optimize", path=args.file)
            code = _run_optimize(args, config, engine)
            return code
    finally:
        if engine is not None:
            if engine.profile is not None:
                _emit_profile(engine, args.profile)
            engine.close()
        _write_trace(args, tracer)
        _write_metrics(args)
        _finish_obs(args, logger, context, exit_code=code)


def _run_optimize(args: argparse.Namespace, config, engine) -> int:
    from repro.opt import optimize_result, parse_passes

    try:
        passes = parse_passes(args.passes)
    except ValueError as err:
        print(f"optimize: {err}", file=sys.stderr)
        return EXIT_DIAGNOSTICS
    # Whole-run fast path: an unchanged (source, config, passes) triple
    # whose previous optimization was clean replays the recorded report
    # and optimized IR without re-analyzing. --verify-ir bypasses it
    # (the point of the flag is to re-run the verifier).
    replayable = not args.verify_ir
    text = None
    if engine is not None and engine.cache is not None:
        try:
            with open(args.file, "r", encoding="utf-8") as handle:
                text = handle.read()
        except (OSError, UnicodeDecodeError):
            text = None  # let the normal path produce the located error
        if text is not None and replayable:
            payload = engine.cached_opt(text, config, passes)
            if payload is not None and payload.get("ir") is not None:
                return _replay_cached_opt(payload, args)

    result, diagnostics = analyze_file_resilient(
        args.file, config, engine=engine
    )
    if len(diagnostics):
        print(diagnostics.format(), file=sys.stderr)
    if result is None:
        return EXIT_DIAGNOSTICS
    report = optimize_result(result, passes, verify=args.verify_ir)
    from repro.ir.printer import format_program

    ir_text = format_program(result.program)
    print(f"configuration: {config.describe()}")
    print(report.render())
    if args.dump_ir:
        print("\n--- optimized IR ---")
        print(ir_text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(ir_text + "\n")
        print(f"[optimized IR written to {args.output}]")
    if engine is not None and text is not None and replayable:
        engine.record_opt(text, config, passes, result, report)
    if not result.resilience.ok:
        print("\n--- degraded components ---", file=sys.stderr)
        print(result.resilience.summary(), file=sys.stderr)
    if diagnostics.has_errors:
        return EXIT_DIAGNOSTICS
    return EXIT_OK


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro import faults
    from repro.engine import default_cache_root
    from repro.serve.server import ReproServer, ServeConfig, SocketBusyError

    if args.inject_fault:
        try:
            plan = faults.install(args.inject_fault)
        except faults.FaultSpecError as err:
            print(f"serve: bad --inject-fault: {err}", file=sys.stderr)
            return EXIT_INTERNAL
        for line in plan.describe():
            print(f"[fault armed: {line}]", file=sys.stderr)
    cache_dir = (
        None if args.no_cache else (args.cache_dir or default_cache_root())
    )
    config = ServeConfig(
        socket_path=args.socket,
        analysis=_config_from_args(args),
        jobs=args.jobs,
        cache_dir=cache_dir,
        arena=False if args.no_arena else None,
        queue_limit=args.queue_limit,
        default_deadline_s=args.deadline if args.deadline > 0 else None,
        drain_timeout_s=args.drain_timeout,
        metrics_path=args.metrics,
        trace_path=args.trace,
        log_path=args.log,
        log_level=args.log_level,
        slow_request_s=args.slow_request,
        obs_window=args.obs_window,
    )
    try:
        server = ReproServer(config)
        return server.serve_forever()
    except SocketBusyError as err:
        print(f"serve: {err}", file=sys.stderr)
        return EXIT_INTERNAL


def _cmd_client(args: argparse.Namespace) -> int:
    import json

    from repro.serve.client import ReproClient, ServeRequestError
    from repro.serve.protocol import PATH_OPS

    if args.op in PATH_OPS and not args.file:
        print(f"client: op {args.op!r} requires a file", file=sys.stderr)
        return EXIT_INTERNAL
    project = args.file if len(args.file) > 1 or args.entry else None
    single = args.file[0] if args.file else None
    try:
        client = ReproClient(args.socket, timeout=args.timeout)
    except OSError as err:
        print(f"client: cannot connect to {args.socket}: {err}",
              file=sys.stderr)
        return EXIT_INTERNAL
    try:
        if args.op == "analyze":
            if project is not None:
                response = client.analyze_project(
                    project, entry=args.entry,
                    deadline_ms=args.deadline_ms, explain=args.explain,
                )
            else:
                response = client.analyze(
                    single, deadline_ms=args.deadline_ms,
                    explain=args.explain,
                )
        elif args.op == "explain":
            if args.explain is None:
                print("client: op 'explain' requires --explain NAME@PROC",
                      file=sys.stderr)
                return EXIT_INTERNAL
            if project is not None:
                response = client.analyze_project(
                    project, entry=args.entry,
                    deadline_ms=args.deadline_ms, explain=args.explain,
                )
            else:
                response = client.explain(
                    single, args.explain, deadline_ms=args.deadline_ms
                )
        elif args.op == "invalidate":
            if project is not None:
                response = client.invalidate_project(
                    project, entry=args.entry
                )
            else:
                response = client.invalidate(single)
        elif args.op == "status":
            response = client.status()
        elif args.op == "obs":
            response = client.obs(limit=getattr(args, "limit", None))
        else:
            response = client.shutdown()
    except ServeRequestError as err:
        print(f"client: {err}", file=sys.stderr)
        return EXIT_DIAGNOSTICS
    except (ConnectionError, OSError) as err:
        print(f"client: {err}", file=sys.stderr)
        return EXIT_INTERNAL
    finally:
        client.close()
    if args.json:
        print(json.dumps(response, indent=2, sort_keys=True))
        return EXIT_OK
    return _render_client_response(args.op, response)


def _format_latency_ms(value) -> str:
    return f"{value * 1000:.3f}" if value is not None else "-"


def _render_obs_snapshot(result: dict) -> None:
    """Human rendering of one ``obs`` op payload — shared by
    ``repro client obs`` and each ``repro top`` refresh."""
    threshold = result.get("slow_threshold_s")
    print(
        f"requests seen: {result.get('requests_seen', 0)}  "
        f"(ring window {result.get('window')}, "
        f"slow {result.get('slow_requests', 0)}, "
        f"slow threshold "
        f"{f'{threshold}s' if threshold is not None else 'off'})"
    )
    latency = result.get("latency") or {}
    populated = {
        name: stats for name, stats in latency.items()
        if stats.get("count")
    }
    if populated:
        print(f"{'histogram':<34} {'count':>7} {'p50 ms':>10} "
              f"{'p95 ms':>10} {'p99 ms':>10}")
        for name in sorted(populated):
            stats = populated[name]
            print(
                f"{name:<34} {stats.get('count', 0):>7} "
                f"{_format_latency_ms(stats.get('p50')):>10} "
                f"{_format_latency_ms(stats.get('p95')):>10} "
                f"{_format_latency_ms(stats.get('p99')):>10}"
            )
    recent = result.get("recent") or []
    if recent:
        print()
        print(
            f"{'request':<10} {'op':<10} {'status':<16} "
            f"{'queue':>8} {'parse':>8} {'solve':>8} {'opt':>8} "
            f"{'render':>8} {'total':>9}"
        )
        for entry in recent:
            cells = " ".join(
                f"{entry.get(f'{bucket}_ms', 0):>8.1f}"
                for bucket in ("queue", "parse", "solve", "opt", "render")
            )
            print(
                f"{str(entry.get('request_id', '?')):<10} "
                f"{str(entry.get('op', '')):<10} "
                f"{str(entry.get('status', '?')):<16} "
                f"{cells} {entry.get('total_ms', 0):>9.1f}"
            )


def _render_client_response(op: str, response: dict) -> int:
    """Human rendering of a successful daemon response; the exit code
    mirrors the local subcommands (0 clean, 1 diagnostics/error)."""
    import json

    for note in response.get("degraded", []):
        print(f"[degraded: {note}]", file=sys.stderr)
    result = response.get("result", {})
    if "project" in result and "path" not in result:
        # Project responses carry the manifest; render one joined label.
        result = dict(result, path="+".join(result["project"]))
    if op in ("analyze", "explain"):
        status = result.get("status")
        if status == "error":
            print(f"{result.get('path')}: error: {result.get('error')}")
            return EXIT_DIAGNOSTICS
        if status == "diagnostics":
            print(result.get("diagnostics", ""), file=sys.stderr)
            return EXIT_DIAGNOSTICS
        suffix = "  [replayed]" if result.get("replayed") else ""
        print(
            f"{result.get('path')}: {result.get('total_pairs')} "
            f"constant(s), {result.get('substituted')} substituted{suffix}"
        )
        report = result.get("constants_report")
        if report:
            print(report)
        if "explain" in result:
            sys.stdout.write(result["explain"])
        if "explain_error" in result:
            print(f"explain: {result['explain_error']}", file=sys.stderr)
            return EXIT_DIAGNOSTICS
        if result.get("diagnostics"):
            print(result["diagnostics"], file=sys.stderr)
        return EXIT_OK
    if op == "invalidate":
        verdict = "evicted" if result.get("invalidated") else "not cached"
        print(f"{result.get('path')}: {verdict}")
        if result.get("error"):
            print(f"invalidate: {result['error']}", file=sys.stderr)
            return EXIT_DIAGNOSTICS
        return EXIT_OK
    if op == "status":
        for key in ("socket", "jobs", "queue_depth", "queue_limit",
                    "pool_demoted", "stopping", "cache_dir"):
            print(f"{key}: {result.get(key)}")
        for line in result.get("faults", []):
            print(f"fault: {line}")
        counters = result.get("counters", {})
        for name in sorted(counters):
            print(f"  {name} {counters[name]}")
        return EXIT_OK
    if op == "obs":
        _render_obs_snapshot(result)
        return EXIT_OK
    print(json.dumps(result))  # shutdown and anything future
    return EXIT_OK


def _cmd_top(args: argparse.Namespace) -> int:
    """Poll the daemon's ``obs`` op and render a live per-request view.

    Each refresh opens a fresh connection so the view survives daemon
    restarts; ``--iterations 0`` polls until interrupted."""
    import time as time_module

    from repro.serve.client import ReproClient, ServeRequestError

    iteration = 0
    try:
        while True:
            iteration += 1
            try:
                with ReproClient(
                    args.socket, timeout=args.timeout
                ) as client:
                    response = client.obs(limit=args.limit)
            except ServeRequestError as err:
                print(f"top: {err}", file=sys.stderr)
                return EXIT_DIAGNOSTICS
            except (ConnectionError, OSError) as err:
                print(f"top: {err}", file=sys.stderr)
                return EXIT_INTERNAL
            if iteration > 1:
                print()
            print(f"--- repro top: {args.socket} (refresh {iteration}) ---")
            _render_obs_snapshot(response.get("result", {}))
            if args.iterations and iteration >= args.iterations:
                return EXIT_OK
            time_module.sleep(args.interval)
    except KeyboardInterrupt:
        return EXIT_OK


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs import timeline as obs_timeline

    artifacts = []
    for path in args.artifact:
        try:
            kind, parsed = obs_timeline.load_artifact(path)
        except (OSError, UnicodeDecodeError, ValueError) as err:
            print(f"obs report: cannot read {path}: {err}",
                  file=sys.stderr)
            return EXIT_INTERNAL
        if kind == "unknown":
            print(
                f"obs report: {path}: not a recognized log, trace, or "
                f"metrics artifact (skipped)",
                file=sys.stderr,
            )
            continue
        artifacts.append((kind, parsed))
    if not artifacts:
        print("obs report: no usable artifacts", file=sys.stderr)
        return EXIT_DIAGNOSTICS
    report = obs_timeline.build_report(artifacts)
    sys.stdout.write(obs_timeline.render_report(report))
    return EXIT_OK


def _cmd_compare(args: argparse.Namespace) -> int:
    header = f"{'jump function':>16} {'constants':>10} {'substituted refs':>17}"
    print(header)
    print("-" * len(header))
    for kind in JumpFunctionKind:
        result = analyze_file(args.file, AnalysisConfig(jump_function=kind))
        print(
            f"{kind.value:>16} {result.constants.total_pairs():>10} "
            f"{result.substituted_constants:>17}"
        )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.frontend.parser import parse_file
    from repro.frontend.source import SourceFile
    from repro.ir.interp import run_program
    from repro.ir.lowering import lower_module

    with open(args.file, "r", encoding="utf-8") as handle:
        text = handle.read()
    program = lower_module(
        parse_file(args.file), SourceFile(args.file, text)
    )
    trace = run_program(program, inputs=args.input, fuel=args.fuel)
    for line in trace.output:
        print(line)
    print(f"[{trace.steps} instructions executed]")
    return 0


def _cmd_clone(args: argparse.Namespace) -> int:
    from repro.frontend.parser import parse_file
    from repro.frontend.source import SourceFile
    from repro.ipcp.cloning import clone_for_constants
    from repro.ir.lowering import lower_module

    with open(args.file, "r", encoding="utf-8") as handle:
        text = handle.read()
    program = lower_module(parse_file(args.file), SourceFile(args.file, text))
    report = clone_for_constants(
        program, max_clones_per_procedure=args.max_clones
    )
    print(f"substituted references before cloning: "
          f"{report.base.substituted_constants}")
    for original, clones in report.clones.items():
        print(f"  cloned {original} -> {', '.join(clones)}")
    print(f"substituted references after cloning:  "
          f"{report.final.substituted_constants} "
          f"(+{report.constants_gained})")
    return 0


def _cmd_integrate(args: argparse.Namespace) -> int:
    from repro.frontend.parser import parse_file
    from repro.frontend.source import SourceFile
    from repro.ipcp.inlining import integrate_and_propagate
    from repro.ir.lowering import lower_module

    with open(args.file, "r", encoding="utf-8") as handle:
        text = handle.read()
    baseline = analyze_file(args.file, AnalysisConfig())
    program = lower_module(parse_file(args.file), SourceFile(args.file, text))
    report = integrate_and_propagate(program, max_depth=args.depth)
    print(f"jump-function framework:  {baseline.substituted_constants} "
          f"substituted references")
    print(f"procedure integration:    {report.substituted_references} "
          f"substituted references")
    print(f"  calls inlined: {report.inlined_calls}, remaining: "
          f"{report.remaining_calls}, code growth: {report.code_growth:.1f}x")
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    from repro.suite.programs import write_suite

    paths = write_suite(args.out)
    for path in paths:
        print(path)
    print(f"[{len(paths)} programs written to {args.out}]")
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.suite.tables import format_table1, format_table2, format_table3

    wanted = (args.table,) if args.table else (1, 2, 3)
    formatters = {1: format_table1, 2: format_table2, 3: format_table3}
    for number in wanted:
        print(formatters[number]())
        print()
    return 0


def _cmd_oracle(args: argparse.Namespace) -> int:
    from dataclasses import replace as dc_replace

    from repro.oracle.harness import (
        DEFAULT_ORACLE_CONFIG,
        PROPERTIES,
        run_oracle,
    )

    if args.link_trials is not None:
        return _cmd_oracle_link(args)
    if args.opt_trials is not None:
        return _cmd_oracle_opt(args)

    generator_config = DEFAULT_ORACLE_CONFIG
    if args.procedures is not None:
        generator_config = dc_replace(generator_config, procedures=args.procedures)
    if args.max_statements is not None:
        generator_config = dc_replace(
            generator_config, max_statements_per_procedure=args.max_statements
        )
    properties = tuple(args.property) if args.property else PROPERTIES

    profile = None
    if args.profile is not None:
        from repro.profiling import PipelineProfile

        profile = PipelineProfile()

    dots = {"count": 0}

    def progress(trial) -> None:
        sys.stderr.write("s" if trial.skipped else "." if trial.ok else "F")
        dots["count"] += 1
        if dots["count"] % 50 == 0:
            sys.stderr.write(f" {dots['count']}/{args.trials}\n")
        sys.stderr.flush()

    report = run_oracle(
        trials=args.trials,
        seed=args.seed,
        generator_config=generator_config,
        properties=properties,
        corpus_dir=args.corpus,
        minimize=not args.no_minimize,
        progress=progress,
        profile=profile,
    )
    sys.stderr.write("\n")
    print(report.summary())
    if profile is not None:
        text = profile.to_json()
        if args.profile == "-":
            print("\n--- profile ---")
            print(text)
        else:
            with open(args.profile, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(f"[profile written to {args.profile}]")
    if not report.ok:
        if args.corpus:
            print(f"minimized counterexamples written to {args.corpus}/")
        return EXIT_DIAGNOSTICS
    return EXIT_OK


def _cmd_oracle_link(args: argparse.Namespace) -> int:
    from dataclasses import replace as dc_replace

    from repro.oracle.harness import DEFAULT_ORACLE_CONFIG
    from repro.oracle.partition import run_link_trials

    generator_config = DEFAULT_ORACLE_CONFIG
    if args.procedures is not None:
        generator_config = dc_replace(
            generator_config, procedures=args.procedures
        )
    if args.max_statements is not None:
        generator_config = dc_replace(
            generator_config, max_statements_per_procedure=args.max_statements
        )

    dots = {"count": 0}

    def progress(trial) -> None:
        sys.stderr.write("." if trial.ok else "F")
        dots["count"] += 1
        if dots["count"] % 50 == 0:
            sys.stderr.write(f" {dots['count']}/{args.link_trials}\n")
        sys.stderr.flush()

    report = run_link_trials(
        trials=args.link_trials,
        seed=args.seed,
        generator_config=generator_config,
        max_partitions=args.max_partitions,
        progress=progress,
    )
    sys.stderr.write("\n")
    print(report.summary())
    return EXIT_OK if report.ok else EXIT_DIAGNOSTICS


def _cmd_oracle_opt(args: argparse.Namespace) -> int:
    from dataclasses import replace as dc_replace

    from repro.oracle.equivalence import run_opt_oracle
    from repro.oracle.harness import DEFAULT_ORACLE_CONFIG

    generator_config = DEFAULT_ORACLE_CONFIG
    if args.procedures is not None:
        generator_config = dc_replace(
            generator_config, procedures=args.procedures
        )
    if args.max_statements is not None:
        generator_config = dc_replace(
            generator_config, max_statements_per_procedure=args.max_statements
        )

    dots = {"count": 0}

    def progress(trial) -> None:
        sys.stderr.write("s" if trial.skipped else "." if trial.ok else "F")
        dots["count"] += 1
        if dots["count"] % 50 == 0:
            sys.stderr.write(f" {dots['count']}/{args.opt_trials}\n")
        sys.stderr.flush()

    report = run_opt_oracle(
        trials=args.opt_trials,
        seed=args.seed,
        generator_config=generator_config,
        corpus_dir=args.corpus,
        minimize=not args.no_minimize,
        progress=progress,
    )
    sys.stderr.write("\n")
    print(report.summary())
    if not report.ok:
        if args.corpus:
            print(f"minimized counterexamples written to {args.corpus}/")
        return EXIT_DIAGNOSTICS
    return EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "analyze": _cmd_analyze,
        "link": _cmd_link,
        "batch": _cmd_batch,
        "optimize": _cmd_optimize,
        "serve": _cmd_serve,
        "client": _cmd_client,
        "top": _cmd_top,
        "obs": _cmd_obs,
        "compare": _cmd_compare,
        "run": _cmd_run,
        "clone": _cmd_clone,
        "integrate": _cmd_integrate,
        "suite": _cmd_suite,
        "tables": _cmd_tables,
        "oracle": _cmd_oracle,
    }
    try:
        return handlers[args.command](args)
    except FrontendError as err:
        location = f"{err.location}: " if err.location is not None else ""
        print(f"{location}error: {err.message}", file=sys.stderr)
        return EXIT_DIAGNOSTICS
    except BudgetExceeded as err:
        print(f"internal error: {err}", file=sys.stderr)
        return EXIT_INTERNAL
    except VerificationError as err:
        print(f"internal error: {err}", file=sys.stderr)
        return EXIT_INTERNAL


if __name__ == "__main__":
    sys.exit(main())
