"""Client side of the analysis daemon protocol.

:class:`ReproClient` is deliberately small — one blocking unix-socket
connection, NDJSON frames in request order — because every consumer of
the daemon (the ``repro client`` subcommand, the robustness tests, the
chaos-smoke harness) should exercise the *same* code path. The only
policy it adds is :meth:`ReproClient.call`: honor the server's
``retry_after`` hint on ``overloaded`` responses a bounded number of
times, because shedding is the server telling the client *when* to come
back, not a hard failure.
"""

from __future__ import annotations

import socket
import time
from typing import Optional

from repro.serve import protocol


class ServeRequestError(RuntimeError):
    """The server answered ``ok: false``; carries the error envelope."""

    def __init__(self, code: str, message: str,
                 retry_after: Optional[float] = None):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.retry_after = retry_after


class ReproClient:
    """One connection to a running ``repro serve`` daemon."""

    def __init__(self, socket_path: str, timeout: float = 30.0):
        self.socket_path = socket_path
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(socket_path)
        self._stream = self._sock.makefile("rb")
        self._next_id = 0

    # -- plumbing ------------------------------------------------------------

    def request(self, op: str, path: Optional[str] = None,
                params: Optional[dict] = None) -> dict:
        """One round trip. Returns the full response envelope; raises
        :class:`ServeRequestError` on ``ok: false``."""
        self._next_id += 1
        frame: dict = {"op": op, "id": self._next_id}
        if path is not None:
            frame["path"] = path
        if params:
            frame["params"] = params
        self._sock.sendall(protocol.encode_message(frame))
        line = self._stream.readline(protocol.MAX_FRAME + 1)
        if not line:
            raise ConnectionError(
                "server closed the connection without responding"
            )
        response = protocol.decode_frame(line)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServeRequestError(
                str(error.get("code", protocol.E_INTERNAL)),
                str(error.get("message", "unknown server error")),
                error.get("retry_after"),
            )
        return response

    def call(self, op: str, path: Optional[str] = None,
             params: Optional[dict] = None, retries: int = 3) -> dict:
        """Like :meth:`request`, but back off and retry when the server
        sheds the request (``overloaded``), up to ``retries`` times."""
        attempt = 0
        while True:
            try:
                return self.request(op, path, params)
            except ServeRequestError as err:
                if err.code != protocol.E_OVERLOADED or attempt >= retries:
                    raise
                attempt += 1
                time.sleep(err.retry_after or 0.05)

    # -- op helpers ----------------------------------------------------------

    def analyze(self, path: str, deadline_ms: Optional[int] = None,
                explain: Optional[str] = None, retries: int = 3) -> dict:
        params: dict = {}
        if deadline_ms is not None:
            params["deadline_ms"] = deadline_ms
        if explain is not None:
            params["explain"] = explain
        return self.call("analyze", path, params or None, retries=retries)

    def explain(self, path: str, cell: str,
                deadline_ms: Optional[int] = None) -> dict:
        params: dict = {"cell": cell}
        if deadline_ms is not None:
            params["deadline_ms"] = deadline_ms
        return self.call("explain", path, params)

    def invalidate(self, path: str) -> dict:
        return self.call("invalidate", path)

    # -- project (linked multi-file) helpers ---------------------------------

    def analyze_project(self, paths, entry: Optional[str] = None,
                        deadline_ms: Optional[int] = None,
                        explain: Optional[str] = None,
                        retries: int = 3) -> dict:
        """Analyze a linked multi-file project (``params.project``)."""
        params: dict = {"project": list(paths)}
        if entry is not None:
            params["entry"] = entry
        if deadline_ms is not None:
            params["deadline_ms"] = deadline_ms
        if explain is not None:
            params["explain"] = explain
        return self.call("analyze", None, params, retries=retries)

    def invalidate_project(self, paths, entry: Optional[str] = None) -> dict:
        params: dict = {"project": list(paths)}
        if entry is not None:
            params["entry"] = entry
        return self.call("invalidate", None, params)

    def status(self) -> dict:
        return self.call("status")

    def obs(self, limit: Optional[int] = None) -> dict:
        """Live telemetry: latency percentiles per stage bucket plus
        the newest ring-buffer request entries (``limit`` caps them)."""
        params: dict = {}
        if limit is not None:
            params["limit"] = int(limit)
        return self.call("obs", None, params)

    def shutdown(self) -> dict:
        return self.request("shutdown")

    def close(self) -> None:
        try:
            self._stream.close()
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def wait_for_server(socket_path: str, timeout: float = 5.0) -> bool:
    """Poll until a daemon accepts connections on ``socket_path``
    (True) or ``timeout`` elapses (False). Used by scripts and tests
    that just forked/spawned the server."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        probe.settimeout(0.25)
        try:
            probe.connect(socket_path)
        except OSError:
            time.sleep(0.05)
        else:
            return True
        finally:
            probe.close()
    return False
