"""Wire protocol of the analysis daemon.

Framing is newline-delimited JSON over a ``SOCK_STREAM`` unix socket:
one request object per line in, one response object per line out, in
request order per connection. JSON never contains a raw newline, so the
framing is unambiguous; a frame larger than :data:`MAX_FRAME` is a
protocol error (a defense against a confused or hostile client, not a
real limit — requests are small).

Request shape::

    {"op": "analyze", "id": 7, "path": "prog.f",
     "params": {"deadline_ms": 2000, "explain": "N@FOO"}}

``op`` is one of :data:`OPS`; ``id`` is an opaque client token echoed
back verbatim (clients that pipeline requests use it to correlate);
``path`` names the input file for the per-file ops; ``params`` carries
op-specific options. The per-file ops alternatively accept a *project
manifest* — ``params.project`` is a list of file paths resolved into
one whole program by the linker (:mod:`repro.linkage`), with an
optional ``params.entry`` selecting the main PROGRAM unit::

    {"op": "analyze", "id": 8,
     "params": {"project": ["main.f", "lib.f"], "entry": "main"}}

Response shape::

    {"v": 1, "id": 7, "op": "analyze", "ok": true,
     "result": {...}, "degraded": ["..."]}
    {"v": 1, "id": 7, "op": "analyze", "ok": false,
     "error": {"code": "overloaded", "message": "...",
               "retry_after": 0.1}}

The split between the two is deliberate: *analysis-level* outcomes
(diagnostics in the source, an unreadable file) are successful protocol
responses whose ``result.status`` says what happened — the daemon did
its job. ``ok: false`` is reserved for *request-level* failures: the
queue shed the request, its deadline expired, the server is draining,
the request was malformed, or the handler crashed. ``degraded`` lists
human-readable notes whenever the analysis completed in a degraded mode
(component demotions, pool fallback) — present so a degraded-but-sound
answer is never silently indistinguishable from a clean one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

#: Bump on incompatible wire changes; echoed in every response.
PROTOCOL_VERSION = 1

#: Supported operations.
OPS = ("analyze", "explain", "invalidate", "status", "obs", "shutdown")

#: Ops that require an input: either ``path`` (one file) or
#: ``params.project`` (a linked multi-file program).
PATH_OPS = ("analyze", "explain", "invalidate")

#: Largest accepted frame (request line) in bytes.
MAX_FRAME = 4 * 1024 * 1024

# -- error codes --------------------------------------------------------------

E_BAD_REQUEST = "bad_request"
E_OVERLOADED = "overloaded"
E_DEADLINE = "deadline_expired"
E_SHUTTING_DOWN = "shutting_down"
E_INTERNAL = "internal"


class ProtocolError(ValueError):
    """A frame that does not parse into a valid request."""


@dataclass
class Request:
    """One parsed client request."""

    op: str
    id: object = None
    path: Optional[str] = None
    params: Dict[str, object] = field(default_factory=dict)


def parse_request(payload: object) -> Request:
    """Validate a decoded frame into a :class:`Request`."""
    if not isinstance(payload, dict):
        raise ProtocolError("request frame must be a JSON object")
    op = payload.get("op")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r} (known: {', '.join(OPS)})"
        )
    path = payload.get("path")
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("'params' must be an object")
    project = params.get("project")
    if project is not None:
        if (
            not isinstance(project, list)
            or not project
            or not all(isinstance(p, str) and p for p in project)
        ):
            raise ProtocolError(
                "'params.project' must be a non-empty list of file paths"
            )
        entry = params.get("entry")
        if entry is not None and (not isinstance(entry, str) or not entry):
            raise ProtocolError("'params.entry' must be a non-empty string")
    if op in PATH_OPS:
        if project is not None:
            if path is not None:
                raise ProtocolError(
                    f"op {op!r} takes either 'path' or 'params.project', "
                    "not both"
                )
        elif not isinstance(path, str) or not path:
            raise ProtocolError(
                f"op {op!r} requires a non-empty 'path' "
                "(or a 'params.project' manifest)"
            )
    elif path is not None and not isinstance(path, str):
        raise ProtocolError("'path' must be a string")
    deadline_ms = params.get("deadline_ms")
    if deadline_ms is not None and (
        not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0
    ):
        raise ProtocolError("'deadline_ms' must be a positive number")
    return Request(op=op, id=payload.get("id"), path=path, params=params)


def encode_message(message: dict) -> bytes:
    """One frame: compact JSON plus the newline terminator."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_frame(line: bytes) -> dict:
    if len(line) > MAX_FRAME:
        raise ProtocolError(f"frame exceeds {MAX_FRAME} bytes")
    try:
        payload = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as err:
        raise ProtocolError(f"undecodable frame: {err}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("frame must be a JSON object")
    return payload


def ok_response(
    request_id: object,
    op: str,
    result: dict,
    degraded: Sequence[str] = (),
) -> dict:
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "op": op,
        "ok": True,
        "result": result,
        "degraded": list(degraded),
    }


def error_response(
    request_id: object,
    code: str,
    message: str,
    op: Optional[str] = None,
    retry_after: Optional[float] = None,
) -> dict:
    error: Dict[str, object] = {"code": code, "message": message}
    if retry_after is not None:
        error["retry_after"] = retry_after
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "op": op,
        "ok": False,
        "error": error,
    }
