"""The analysis daemon: a long-lived, fault-tolerant ``repro`` server.

One :class:`ReproServer` owns a unix listening socket, a bounded
request queue, and a single dispatcher thread driving a persistent
:class:`~repro.engine.core.Engine` (summary + run caches, optional
worker pool). Connection handler threads do only cheap work — frame
parsing, admission control — so a slow analysis can never stop the
daemon from *answering* (with a shed or shutdown error) even while it
is busy.

The robustness core, mapped to code:

- **bounded queue, explicit shedding** — admission is ``put_nowait``
  into a queue of ``queue_limit`` tickets; a full queue answers
  ``overloaded`` with a ``retry_after`` hint immediately. The daemon
  never builds an unbounded backlog, so its memory and its worst-case
  latency stay bounded under any client load.
- **deadlines with cooperative cancellation** — every ticket carries a
  :class:`~repro.serve.lifecycle.Deadline` (per-request override or
  server default), checked at lifecycle checkpoints and between engine
  scheduling waves (the engine's ``checkpoint`` hook). Expiry unwinds
  into a ``deadline_expired`` error; the abandoned work was idempotent
  cache-backed computation, so nothing is torn.
- **worker-crash recovery** — a killed pool worker surfaces as
  ``BrokenProcessPool`` inside the engine, which rebuilds the pool
  once (jittered backoff) and then degrades to in-process serial
  analysis; the response's ``degraded`` notes and the
  ``engine_pool_*`` counters make the demotion visible. Results are
  byte-identical either way.
- **cache-integrity quarantine** — corrupt summary/run entries are
  detected by checksum at read time, quarantined as ``.corrupt``
  sidecars, and recomputed (``cache_quarantined`` counter).
- **graceful drain** — SIGTERM/SIGINT (or a ``shutdown`` request) stop
  admission, let in-flight and queued work finish within
  ``drain_timeout_s``, cancel the rest with ``shutting_down``, flush
  the ``--metrics``/``--trace`` artifacts, and exit with the
  conventional code (0 requested, 130 SIGINT, 143 SIGTERM).
"""

from __future__ import annotations

import json
import os
import queue
import socket
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import faults
from repro.config import AnalysisConfig
from repro.engine import fingerprint
from repro.engine.core import Engine
from repro.obs import context as obs_context
from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs import timeline as obs_timeline
from repro.obs import trace
from repro.serve import protocol
from repro.serve.lifecycle import Cancelled, Deadline, DeadlineExpired, Ticket

#: Exit codes of :meth:`ReproServer.serve_forever`.
EXIT_OK = 0
EXIT_SIGINT = 130
EXIT_SIGTERM = 143

#: Analysis-outcome statuses inside a successful response.
STATUS_OK = "ok"
STATUS_DIAGNOSTICS = "diagnostics"
STATUS_ERROR = "error"

#: Counter-name prefixes surfaced by the ``status`` op.
_STATUS_COUNTER_PREFIXES = (
    "serve_", "engine_pool_", "batch_pool_", "cache_", "faults_",
    "recomputed_", "run_cache_", "summary_cache_", "demotions_",
    "arena_", "engine_pickle_",
)


@dataclass
class ServeConfig:
    """Everything one daemon instance needs to run."""

    socket_path: str
    analysis: AnalysisConfig = field(default_factory=AnalysisConfig)
    jobs: int = 1
    cache_dir: Optional[str] = None
    queue_limit: int = 16
    default_deadline_s: Optional[float] = 30.0
    drain_timeout_s: float = 5.0
    metrics_path: Optional[str] = None
    trace_path: Optional[str] = None
    #: Structured JSONL log destination (path or ``"-"`` for stderr).
    log_path: Optional[str] = None
    log_level: str = "info"
    #: Requests slower than this (queue + service, seconds) emit a
    #: ``request.slow`` log record with their stage timings and
    #: cache-hit profile. None disables the slow-request log.
    slow_request_s: Optional[float] = None
    #: Capacity of the per-request ring buffer behind ``repro top``
    #: and the ``obs`` protocol op.
    obs_window: int = 256
    #: Shared-memory arena policy for the persistent engine: None
    #: (auto: on whenever ``jobs > 1``) or False (``--no-arena``).
    arena: Optional[bool] = None


class SocketBusyError(RuntimeError):
    """Another live daemon already serves on the requested socket."""


class ReproServer:
    """See module docstring. Lifecycle: :meth:`start` → requests →
    :meth:`request_stop` (signal, ``shutdown`` op, or test) →
    :meth:`finish`; :meth:`serve_forever` bundles all four for the CLI.
    """

    def __init__(self, config: ServeConfig):
        self.config = config
        self.engine = Engine(
            jobs=config.jobs, cache_dir=config.cache_dir,
            arena=config.arena,
        )
        self._queue: "queue.Queue[Ticket]" = queue.Queue(
            maxsize=max(1, config.queue_limit)
        )
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._dispatch_thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._done = threading.Event()
        self._exit_code = EXIT_OK
        self._exit_lock = threading.Lock()
        self._stop_requested = False
        self._drain_deadline: Optional[Deadline] = None
        self._tracer = None
        self._logger = None
        self._registry = obs_metrics.default_registry()
        # The registry is process-global; baseline it so the ``obs``
        # op reports this server's lifetime only, not whatever an
        # earlier daemon in the same process already observed.
        self._metrics_baseline = self._registry.snapshot()
        # Request-scoped telemetry: monotonically numbered request ids
        # under one session trace id, a per-request ring buffer behind
        # the ``obs`` op, and the idle context every server thread
        # carries when no request is in flight.
        self._request_seq = 0
        self._seq_lock = threading.Lock()
        self._session_trace_id = f"s-{os.getpid()}"
        self._server_ctx = obs_context.RequestContext(
            "server", self._session_trace_id
        )
        self._ring = obs_timeline.TimelineRing(max(1, config.obs_window))

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Bind the socket and start the accept + dispatcher threads."""
        # A previous daemon that died hard (SIGKILL, OOM) can leak
        # arena segments in /dev/shm; reap anything whose owner pid is
        # gone before this instance starts creating its own.
        from repro.engine import arena as arena_mod

        reaped = arena_mod.reap_stale()
        if reaped:
            print(
                f"[repro serve: reaped {len(reaped)} stale arena "
                f"segment(s)]",
                file=sys.stderr,
            )
        if self.config.trace_path is not None:
            self._tracer = trace.enable()
        if self.config.log_path is not None:
            self._logger = obs_log.enable(
                self.config.log_path, level=self.config.log_level
            )
        obs_context.set_context(self._server_ctx)
        if obs_log.ENABLED:
            obs_log.info(
                "server.start",
                socket=self.config.socket_path,
                jobs=self.config.jobs,
                queue_limit=self.config.queue_limit,
            )
        self._listener = self._bind(self.config.socket_path)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        self._dispatch_thread = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch",
            daemon=True,
        )
        self._accept_thread.start()
        self._dispatch_thread.start()

    @staticmethod
    def _bind(path: str) -> socket.socket:
        """Bind the unix socket, reclaiming a stale file but refusing
        to steal a live daemon's socket."""
        if os.path.exists(path):
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                probe.settimeout(0.5)
                probe.connect(path)
            except OSError:
                os.unlink(path)  # stale leftover from a dead daemon
            else:
                probe.close()
                raise SocketBusyError(
                    f"another daemon is already serving on {path!r}"
                )
            finally:
                probe.close()
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(path)
        listener.listen(64)
        listener.settimeout(0.2)
        return listener

    def request_stop(self, exit_code: int = EXIT_OK) -> None:
        """Begin the drain; the first requested exit code wins (a
        SIGTERM arriving during a ``shutdown``-requested drain does not
        rewrite history)."""
        with self._exit_lock:
            if not self._stop_requested:
                self._stop_requested = True
                self._exit_code = exit_code
                self._drain_deadline = Deadline(self.config.drain_timeout_s)
        self._stop.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._stop.wait(timeout)

    def finish(self) -> int:
        """Complete the drain: join the worker threads, reject whatever
        could not be served, flush observability artifacts, release the
        engine and the socket. Returns the exit code."""
        self._stop.set()
        if self._dispatch_thread is not None:
            grace = self.config.drain_timeout_s + 2.0
            self._dispatch_thread.join(timeout=grace)
        self._done.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        while True:  # anything still queued is now unservable
            try:
                ticket = self._queue.get_nowait()
            except queue.Empty:
                break
            self._reject_draining(ticket)
        self.engine.close()
        self._flush_artifacts()
        try:
            os.unlink(self.config.socket_path)
        except OSError:
            pass
        return self._exit_code

    def serve_forever(self, install_signals: bool = True) -> int:
        """The CLI entry point: run until a signal or ``shutdown``
        request, then drain and return the exit code."""
        import signal

        if install_signals:
            signal.signal(
                signal.SIGTERM,
                lambda signum, frame: self.request_stop(EXIT_SIGTERM),
            )
            signal.signal(
                signal.SIGINT,
                lambda signum, frame: self.request_stop(EXIT_SIGINT),
            )
        self.start()
        print(
            f"[repro serve: listening on {self.config.socket_path} "
            f"(jobs={self.config.jobs}, queue={self.config.queue_limit})]",
            file=sys.stderr,
        )
        while not self._stop.wait(0.2):
            pass
        code = self.finish()
        print(
            f"[repro serve: drained, exit {code}]", file=sys.stderr
        )
        return code

    def _flush_artifacts(self) -> None:
        """Flush ``--metrics``/``--trace`` on the way out — the drain
        contract says the artifacts of a killed daemon are still valid,
        just truncated at the drain point."""
        if self.config.metrics_path is not None:
            try:
                with open(
                    self.config.metrics_path, "w", encoding="utf-8"
                ) as handle:
                    handle.write(self._registry.to_prometheus())
            except OSError:
                pass
        if self._tracer is not None:
            trace.disable()
            try:
                with open(
                    self.config.trace_path, "w", encoding="utf-8"
                ) as handle:
                    json.dump(self._tracer.to_chrome(), handle)
                    handle.write("\n")
            except OSError:
                pass
            self._tracer = None
        if self._logger is not None:
            obs_log.info(
                "server.stop",
                exit_code=self._exit_code,
                requests_seen=self._ring.total_added,
            )
            obs_log.disable()
            self._logger = None
        # Drop the server context so a host process (tests, a CLI that
        # embeds the daemon) is not left with this session's ids.
        if obs_context.current() is self._server_ctx:
            obs_context.clear()

    # -- admission (connection threads) --------------------------------------

    def _accept_loop(self) -> None:
        # Keeps accepting through the drain (until finish() closes the
        # listener): a draining server answers every knock with an
        # explicit ``shutting_down``, it does not leave clients hanging
        # in the listen backlog.
        while not self._done.is_set():
            try:
                connection, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            handler = threading.Thread(
                target=self._handle_connection,
                args=(connection,),
                name="repro-serve-conn",
                daemon=True,
            )
            handler.start()

    def _handle_connection(self, connection: socket.socket) -> None:
        # Pin this handler thread to the idle server context: while a
        # request is being executed the dispatcher installs that
        # request's context as the process global (so fork workers
        # inherit it), and an unpinned handler thread would fall
        # through to it and mis-attribute its own records.
        obs_context.set_thread_context(self._server_ctx)
        write_lock = threading.Lock()

        def respond(message: dict) -> None:
            payload = protocol.encode_message(message)
            try:
                with write_lock:
                    connection.sendall(payload)
            except OSError:
                obs_metrics.inc("serve_client_gone")

        stream = connection.makefile("rb")
        try:
            while True:
                line = stream.readline(protocol.MAX_FRAME + 1)
                if not line:
                    break
                if not line.strip():
                    continue
                self._admit(line, respond)
        except OSError:
            pass
        finally:
            try:
                stream.close()
                connection.close()
            except OSError:
                pass

    def _admit(self, line: bytes, respond) -> None:
        """Parse one frame and either enqueue it or answer immediately
        (malformed, draining, or shed)."""
        try:
            request = protocol.parse_request(protocol.decode_frame(line))
        except protocol.ProtocolError as err:
            obs_metrics.inc("serve_bad_requests")
            if obs_log.ENABLED:
                obs_log.warn("request.rejected", reason="bad_request",
                             error=str(err))
            respond(
                protocol.error_response(
                    None, protocol.E_BAD_REQUEST, str(err)
                )
            )
            return
        if self._stop.is_set():
            respond(
                protocol.error_response(
                    request.id, protocol.E_SHUTTING_DOWN,
                    "server is draining", op=request.op,
                )
            )
            return
        with self._seq_lock:
            self._request_seq += 1
            request_id = f"r{self._request_seq:06d}"
        ticket = Ticket(
            request=request,
            deadline=Deadline.from_request(
                request, self.config.default_deadline_s
            ),
            respond=respond,
            request_id=request_id,
        )
        try:
            self._queue.put_nowait(ticket)
        except queue.Full:
            obs_metrics.inc("serve_shed")
            if obs_log.ENABLED:
                # explicit request_id: the shed request never reaches
                # the dispatcher, so no context is ever installed for it
                obs_log.warn(
                    "request.shed", request_id=request_id, op=request.op,
                    queue_limit=self.config.queue_limit,
                )
            respond(
                protocol.error_response(
                    request.id, protocol.E_OVERLOADED,
                    f"request queue full ({self.config.queue_limit})",
                    op=request.op,
                    retry_after=round(
                        0.05 * max(1, self._queue.qsize()), 3
                    ),
                )
            )
            return
        self._registry.gauge("serve_queue_depth").set(self._queue.qsize())

    # -- dispatch (the single analysis thread) -------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            try:
                ticket = self._queue.get(timeout=0.1)
            except queue.Empty:
                if self._stop.is_set():
                    return
                continue
            self._registry.gauge("serve_queue_depth").set(self._queue.qsize())
            if self._drain_expired():
                self._reject_draining(ticket)
                continue
            self._execute(ticket)

    def _drain_expired(self) -> bool:
        return (
            self._stop.is_set()
            and self._drain_deadline is not None
            and self._drain_deadline.expired
        )

    def _drain_check(self) -> None:
        if self._drain_expired():
            raise Cancelled()

    def _reject_draining(self, ticket: Ticket) -> None:
        obs_metrics.inc("serve_cancelled_drain")
        ticket.respond(
            protocol.error_response(
                ticket.request.id, protocol.E_SHUTTING_DOWN,
                "server drained before this request could run",
                op=ticket.request.op,
            )
        )

    def _execute(self, ticket: Ticket) -> None:
        request = ticket.request
        queue_s = ticket.queue_seconds()
        began = time.perf_counter()
        obs_metrics.inc("serve_requests")
        obs_metrics.inc(f"serve_requests_{request.op}")
        self._registry.observe("serve_queue_seconds", queue_s)
        # Request-scoped telemetry bracket: install the request's
        # correlation context on both layers (the global is what fork
        # pool workers inherit), observe its pipeline stages through a
        # timeline, and scope the metrics registry so concurrent
        # handler-thread counters (sheds, bad frames) can never leak
        # into this request's per-request delta.
        request_id = ticket.request_id or "r?"
        request_ctx = obs_context.RequestContext(
            request_id, self._session_trace_id
        )
        obs_context.set_context(request_ctx)
        timeline = obs_timeline.RequestTimeline(
            request_id, op=request.op, path=request.path or "",
            queue_s=queue_s,
        )
        obs_timeline.push_observer(timeline)
        scoped = obs_metrics.push_scope()
        if obs_log.ENABLED:
            obs_log.info(
                "request.start", op=request.op, path=request.path or "",
                queue_ms=round(queue_s * 1000.0, 3),
            )
        status = "ok"
        replayed = False
        try:
            with trace.span(
                "serve.request", op=request.op, path=request.path or "",
                request_id=request_id,
            ):
                if trace.ENABLED:
                    # Root of this request's flow: workers emit "t"
                    # steps with the same id (stitching across pids).
                    flow = obs_context.flow_id(request_id)
                    trace.flow(
                        "request", "s", flow,
                        request_id=request_id, op=request.op,
                    )
                try:
                    ticket.deadline.check("queued")
                    faults.delay(
                        "delay-request", op=request.op,
                        path=request.path or "",
                    )
                    ticket.deadline.check("start")
                    result, degraded = self._dispatch_op(
                        request, ticket.deadline
                    )
                    response = protocol.ok_response(
                        request.id, request.op, result, degraded
                    )
                    obs_metrics.inc("serve_ok")
                    if isinstance(result, dict):
                        status = str(result.get("status", "ok"))
                        replayed = bool(result.get("replayed", False))
                except DeadlineExpired as err:
                    status = "deadline_expired"
                    obs_metrics.inc("serve_deadline_expired")
                    response = protocol.error_response(
                        request.id, protocol.E_DEADLINE, str(err),
                        op=request.op,
                    )
                except Cancelled:
                    status = "cancelled_drain"
                    obs_metrics.inc("serve_cancelled_drain")
                    response = protocol.error_response(
                        request.id, protocol.E_SHUTTING_DOWN,
                        "server drained mid-request", op=request.op,
                    )
                except protocol.ProtocolError as err:
                    status = "bad_request"
                    obs_metrics.inc("serve_bad_requests")
                    response = protocol.error_response(
                        request.id, protocol.E_BAD_REQUEST, str(err),
                        op=request.op,
                    )
                except Exception as err:  # noqa: BLE001 — one bad request
                    # must never take the dispatcher (and the daemon)
                    # down.
                    status = "internal_error"
                    obs_metrics.inc("serve_internal_errors")
                    response = protocol.error_response(
                        request.id, protocol.E_INTERNAL,
                        f"{type(err).__name__}: {err}", op=request.op,
                    )
                if trace.ENABLED:
                    trace.flow(
                        "request", "f", obs_context.flow_id(request_id)
                    )
        finally:
            obs_metrics.pop_scope(merge=True)
            obs_timeline.pop_observer()
            obs_context.set_context(self._server_ctx)
        timeline.finish(status, replayed=replayed)
        self._registry.observe(
            "serve_request_seconds", time.perf_counter() - began
        )
        self._finish_request_telemetry(timeline, scoped)
        ticket.respond(response)

    def _finish_request_telemetry(self, timeline, scoped) -> None:
        """Post-request accounting: stage-bucket histograms, the ring
        entry behind ``repro top``/``obs``, and the slow-request log."""
        buckets = timeline.buckets()
        for bucket, seconds in buckets.items():
            self._registry.observe(
                f"serve_stage_{bucket}_seconds", seconds
            )
        entry = timeline.entry()
        self._ring.add(entry)
        if obs_log.ENABLED:
            obs_log.info(
                "request.end",
                **{
                    key: value
                    for key, value in entry.items()
                    if key not in ("ts",)
                },
            )
        threshold = self.config.slow_request_s
        total_s = timeline.queue_s + timeline.total_s
        if threshold is not None and total_s >= threshold:
            obs_metrics.inc("serve_slow_requests")
            if obs_log.ENABLED:
                cache_profile = {
                    name: value
                    for name, value in scoped.counters().items()
                    if name.startswith(
                        ("cache_", "run_cache_", "summary_cache_",
                         "opt_cache_", "recomputed_", "serve_replayed")
                    )
                }
                obs_log.warn(
                    "request.slow",
                    request_id=timeline.request_id,
                    threshold_ms=round(threshold * 1000.0, 3),
                    stages={
                        name: round(seconds * 1000.0, 3)
                        for name, seconds in sorted(
                            timeline.stages.items()
                        )
                    },
                    cache=cache_profile,
                    **{
                        key: value
                        for key, value in entry.items()
                        if key not in ("ts", "request_id")
                    },
                )

    def _dispatch_op(self, request, deadline):
        """Returns ``(result, degraded_notes)`` for a successful
        response; raises for request-level failures."""
        project = request.params.get("project")
        entry = request.params.get("entry")
        if request.op == "analyze":
            explain = request.params.get("explain")
            if project is not None:
                return self._op_analyze_project(
                    list(project), entry, deadline, explain
                )
            return self._op_analyze(request.path, deadline, explain)
        if request.op == "explain":
            cell = request.params.get("cell")
            if not isinstance(cell, str) or not cell:
                raise protocol.ProtocolError(
                    "op 'explain' requires params.cell (NAME@PROC)"
                )
            if project is not None:
                return self._op_analyze_project(
                    list(project), entry, deadline, cell
                )
            return self._op_analyze(request.path, deadline, cell)
        if request.op == "invalidate":
            if project is not None:
                return self._op_invalidate_project(list(project), entry), []
            return self._op_invalidate(request.path), []
        if request.op == "status":
            return self._op_status(), []
        if request.op == "obs":
            return self._op_obs(request), []
        if request.op == "shutdown":
            self.request_stop(EXIT_OK)
            return {"stopping": True}, []
        raise protocol.ProtocolError(f"unhandled op {request.op!r}")

    # -- op: analyze / explain -----------------------------------------------

    def _op_analyze(
        self,
        path: str,
        deadline: Deadline,
        explain: Optional[str] = None,
    ):
        """The core serving path: replay-or-analyze ``path`` against
        the shared engine, mirroring ``repro batch``'s per-file unit
        but with deadline checkpoints and degradation notes.

        Per-request counter isolation follows the batch protocol:
        snapshot the process registry, attribute only the delta — the
        ``recomputed_ret``/``recomputed_fwd`` counters in the response
        are how clients (and the robustness tests) verify that a warm
        re-analysis touched exactly the dirty set."""
        from repro.frontend.errors import FrontendError
        from repro.ipcp.driver import analyze_file_resilient

        config = self.config.analysis
        # The dispatcher pushes a metrics scope per request, so the
        # *dynamic* registry holds exactly this request's counters —
        # concurrent handler-thread activity (sheds, bad frames) lands
        # in the global registry and can never pollute this delta.
        registry = obs_metrics.default_registry()
        snapshot = registry.snapshot()
        result_payload: Dict[str, object] = {
            "path": path,
            "status": STATUS_OK,
            "replayed": False,
        }
        degraded: List[str] = []

        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except (OSError, UnicodeDecodeError) as err:
            result_payload["status"] = STATUS_ERROR
            result_payload["error"] = str(err)
            result_payload["metrics"] = {}
            return result_payload, degraded

        payload = (
            self.engine.cached_run(text, config)
            if self.engine.cache is not None
            else None
        )
        if payload is not None and self._payload_serves(payload, explain):
            obs_metrics.inc("serve_replayed")
            result_payload.update(
                config=payload["config"],
                constants_report=payload["constants_report"],
                total_pairs=payload["total_pairs"],
                substituted=payload["substituted"],
                per_procedure=dict(payload["per_procedure"]),
                replayed=True,
                invalidation=self.engine.replayed_report(path).to_dict(),
            )
            if explain is not None:
                self._render_explain_from_payload(
                    payload, explain, result_payload
                )
        else:
            deadline.check("analysis")
            self.engine.checkpoint = lambda: (
                deadline.check("analysis"),
                self._drain_check(),
            )
            try:
                result, diagnostics = analyze_file_resilient(
                    path, config, engine=self.engine
                )
            except FrontendError as err:
                result_payload["status"] = STATUS_ERROR
                result_payload["error"] = str(err)
                result_payload["metrics"] = {}
                return result_payload, degraded
            finally:
                self.engine.checkpoint = None
            if result is None:
                result_payload["status"] = STATUS_DIAGNOSTICS
                result_payload["diagnostics"] = diagnostics.format()
            else:
                result_payload.update(
                    config=config.describe(),
                    constants_report=result.constants.format_report(),
                    total_pairs=result.constants.total_pairs(),
                    substituted=result.substituted_constants,
                    per_procedure=dict(result.substitution.per_procedure),
                )
                if len(diagnostics):
                    result_payload["diagnostics"] = diagnostics.format()
                if explain is not None:
                    self._render_explain_live(result, explain, result_payload)
                self.engine.record_run(text, config, result)
                report = self.engine.finish_incremental(path)
                if report is not None:
                    result_payload["invalidation"] = report.to_dict()
                if not result.resilience.ok:
                    degraded.extend(
                        demotion.render() for demotion in result.resilience
                    )
        if self.engine.pool_demoted:
            degraded.append(
                "analysis engine demoted to in-process serial execution "
                "(worker pool broke twice)"
            )
        delta = registry.delta_since(snapshot)
        result_payload["metrics"] = delta["counters"]
        return result_payload, degraded

    def _op_analyze_project(
        self,
        project: List[str],
        entry: Optional[str],
        deadline: Deadline,
        explain: Optional[str] = None,
    ):
        """Project-manifest variant of :meth:`_op_analyze`: link the
        manifest's files into one whole program (:mod:`repro.linkage`)
        and serve it through the same replay-or-analyze engine path.
        The run cache is keyed on the injective project bundle text and
        the incremental manifest on the synthetic project label, so a
        daemon alternating between a project and its member files never
        mixes their cache entries."""
        from repro.linkage import (
            analyze_linked_sources,
            project_bundle_text,
            project_label,
        )

        entry_name = entry if isinstance(entry, str) else None
        registry = obs_metrics.default_registry()  # scoped per request
        snapshot = registry.snapshot()
        result_payload: Dict[str, object] = {
            "project": list(project),
            "entry": entry_name,
            "status": STATUS_OK,
            "replayed": False,
        }
        degraded: List[str] = []

        named = []
        for path in project:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    named.append((path, handle.read()))
            except (OSError, UnicodeDecodeError) as err:
                result_payload["status"] = STATUS_ERROR
                result_payload["error"] = str(err)
                result_payload["metrics"] = {}
                return result_payload, degraded
        bundle = project_bundle_text(named, entry_name)
        label = project_label(project, entry_name)

        payload = (
            self.engine.cached_run(bundle, self.config.analysis)
            if self.engine.cache is not None
            else None
        )
        if payload is not None and self._payload_serves(payload, explain):
            obs_metrics.inc("serve_replayed")
            result_payload.update(
                config=payload["config"],
                constants_report=payload["constants_report"],
                total_pairs=payload["total_pairs"],
                substituted=payload["substituted"],
                per_procedure=dict(payload["per_procedure"]),
                replayed=True,
                invalidation=self.engine.replayed_report(label).to_dict(),
            )
            if explain is not None:
                self._render_explain_from_payload(
                    payload, explain, result_payload
                )
        else:
            deadline.check("analysis")
            self.engine.checkpoint = lambda: (
                deadline.check("analysis"),
                self._drain_check(),
            )
            try:
                result, link = analyze_linked_sources(
                    named,
                    self.config.analysis,
                    entry=entry_name,
                    engine=self.engine,
                )
            finally:
                self.engine.checkpoint = None
            if result is None:
                result_payload["status"] = STATUS_DIAGNOSTICS
                result_payload["diagnostics"] = link.diagnostics.format()
            else:
                result_payload.update(
                    config=self.config.analysis.describe(),
                    constants_report=result.constants.format_report(),
                    total_pairs=result.constants.total_pairs(),
                    substituted=result.substituted_constants,
                    per_procedure=dict(result.substitution.per_procedure),
                )
                if len(link.diagnostics):
                    result_payload["diagnostics"] = link.diagnostics.format()
                if explain is not None:
                    self._render_explain_live(result, explain, result_payload)
                self.engine.record_run(bundle, self.config.analysis, result)
                report = self.engine.finish_incremental(label)
                if report is not None:
                    result_payload["invalidation"] = report.to_dict()
                if not result.resilience.ok:
                    degraded.extend(
                        demotion.render() for demotion in result.resilience
                    )
        if self.engine.pool_demoted:
            degraded.append(
                "analysis engine demoted to in-process serial execution "
                "(worker pool broke twice)"
            )
        delta = registry.delta_since(snapshot)
        result_payload["metrics"] = delta["counters"]
        return result_payload, degraded

    @staticmethod
    def _payload_serves(payload: dict, explain: Optional[str]) -> bool:
        """A replayed run can serve an ``explain`` only when its
        provenance rendering was recorded; otherwise fall through to a
        live analysis rather than silently dropping the section."""
        if explain is None:
            return True
        from repro.obs.provenance import ConstantProvenance

        return (
            ConstantProvenance.from_payload(payload.get("provenance"))
            is not None
        )

    @staticmethod
    def _render_explain_from_payload(
        payload: dict, cell: str, result_payload: dict
    ) -> None:
        from repro.obs.provenance import ConstantProvenance

        provenance = ConstantProvenance.from_payload(payload["provenance"])
        try:
            result_payload["explain"] = provenance.explain(cell)
        except ValueError as err:
            result_payload["explain_error"] = str(err)

    @staticmethod
    def _render_explain_live(result, cell: str, result_payload: dict) -> None:
        from repro.obs.provenance import build_provenance

        try:
            result_payload["explain"] = build_provenance(result).explain(cell)
        except ValueError as err:
            result_payload["explain_error"] = str(err)

    # -- op: invalidate ------------------------------------------------------

    def _op_invalidate(self, path: str) -> dict:
        """Evict the whole-run replay entry for ``path``'s *current*
        content, forcing the next ``analyze`` through the engine (where
        the summary cache + manifest diff recompute exactly the dirty
        set — for an unchanged file, nothing)."""
        obs_metrics.inc("serve_invalidations")
        result: Dict[str, object] = {"path": path, "invalidated": False}
        if self.engine.cache is None:
            result["error"] = "server runs without a cache"
            return result
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except (OSError, UnicodeDecodeError) as err:
            result["error"] = str(err)
            return result
        key = fingerprint.run_key(text, self.config.analysis)
        result["invalidated"] = self.engine.cache.delete("run", key)
        return result

    def _op_invalidate_project(
        self, project: List[str], entry: Optional[str]
    ) -> dict:
        """Project variant of :meth:`_op_invalidate`: evict the replay
        entry keyed on the manifest's *current* bundle text."""
        from repro.linkage import project_bundle_text

        obs_metrics.inc("serve_invalidations")
        entry_name = entry if isinstance(entry, str) else None
        result: Dict[str, object] = {
            "project": list(project),
            "entry": entry_name,
            "invalidated": False,
        }
        if self.engine.cache is None:
            result["error"] = "server runs without a cache"
            return result
        named = []
        for path in project:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    named.append((path, handle.read()))
            except (OSError, UnicodeDecodeError) as err:
                result["error"] = str(err)
                return result
        key = fingerprint.run_key(
            project_bundle_text(named, entry_name), self.config.analysis
        )
        result["invalidated"] = self.engine.cache.delete("run", key)
        return result

    # -- op: obs (live SLO telemetry) ----------------------------------------

    def _op_obs(self, request) -> dict:
        """Live latency percentiles (histogram buckets since this
        server started — the registry outlives servers, the report
        must not) plus the newest ring-buffer entries — what
        ``repro top`` renders and clients poll for SLOs."""
        limit = request.params.get("limit")
        if not isinstance(limit, int) or limit < 0:
            limit = None
        delta = self._registry.delta_since(self._metrics_baseline)
        histograms = delta.get("histograms", {})
        latency: Dict[str, object] = {}
        names = ["serve_queue_seconds", "serve_request_seconds"]
        names.extend(
            f"serve_stage_{bucket}_seconds"
            for bucket in obs_timeline.BUCKETS
        )
        for name in names:
            payload = histograms.get(name)
            if not payload or not payload["count"]:
                continue
            buckets = payload["buckets"]
            counts = payload["counts"]
            count = payload["count"]
            latency[name] = {
                "count": count,
                "sum": round(payload["sum"], 6),
                "p50": obs_metrics.quantile_from_counts(
                    buckets, counts, count, 0.5
                ),
                "p95": obs_metrics.quantile_from_counts(
                    buckets, counts, count, 0.95
                ),
                "p99": obs_metrics.quantile_from_counts(
                    buckets, counts, count, 0.99
                ),
            }
        return {
            "window": self._ring.capacity,
            "requests_seen": self._ring.total_added,
            "slow_requests": delta.get("counters", {}).get(
                "serve_slow_requests", 0
            ),
            "slow_threshold_s": self.config.slow_request_s,
            "latency": latency,
            "recent": self._ring.entries(limit),
        }

    # -- op: status ----------------------------------------------------------

    def _op_status(self) -> dict:
        counters = {
            name: value
            for name, value in self._registry.counters().items()
            if name.startswith(_STATUS_COUNTER_PREFIXES)
        }
        plan = faults.active()
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "socket": self.config.socket_path,
            "jobs": self.config.jobs,
            "queue_depth": self._queue.qsize(),
            "queue_limit": self.config.queue_limit,
            "default_deadline_s": self.config.default_deadline_s,
            "pool_demoted": self.engine.pool_demoted,
            "cache": (
                self.engine.cache.stats.as_dict()
                if self.engine.cache is not None
                else None
            ),
            "cache_dir": self.config.cache_dir,
            "config": self.config.analysis.describe(),
            "faults": plan.describe() if plan is not None else [],
            "stopping": self._stop.is_set(),
            "counters": counters,
        }
