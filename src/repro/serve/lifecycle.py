"""Request lifecycle: deadlines and cooperative cancellation.

Analysis work is CPU-bound Python; it cannot be preempted, only asked
to stop. A :class:`Deadline` is therefore *checked*, never enforced:
the daemon calls :meth:`Deadline.check` at each lifecycle checkpoint
(dequeue, post-injection-delay, pre-analysis) and installs it as the
engine's between-waves ``checkpoint`` hook, so a request that runs past
its budget unwinds at the next scheduling boundary — a bounded, small
lag — rather than holding the dispatcher hostage. The analysis it
abandons was all cache-backed idempotent work, so a retried request
simply resumes from the summaries already computed.

:class:`Cancelled` is the drain-time cousin: when the server is asked
to stop and the grace period runs out, the same hook raises
``Cancelled`` instead, and the client sees ``shutting_down`` rather
than ``deadline_expired`` — the request did nothing wrong.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.serve.protocol import Request


class DeadlineExpired(Exception):
    """A request ran past its deadline; ``stage`` names the checkpoint
    that noticed."""

    def __init__(self, stage: str):
        super().__init__(f"deadline expired at {stage}")
        self.stage = stage


class Cancelled(Exception):
    """The server is draining and this request's grace period is gone."""


class Deadline:
    """A monotonic-clock budget. ``seconds=None`` means unlimited."""

    __slots__ = ("expires_at",)

    def __init__(self, seconds: Optional[float]):
        self.expires_at = (
            time.monotonic() + seconds if seconds is not None else None
        )

    @classmethod
    def from_request(
        cls, request: Request, default_seconds: Optional[float]
    ) -> "Deadline":
        deadline_ms = request.params.get("deadline_ms")
        if deadline_ms is not None:
            return cls(float(deadline_ms) / 1000.0)
        return cls(default_seconds)

    def remaining(self) -> Optional[float]:
        if self.expires_at is None:
            return None
        return self.expires_at - time.monotonic()

    @property
    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0

    def check(self, stage: str = "request") -> None:
        if self.expired:
            raise DeadlineExpired(stage)


@dataclass
class Ticket:
    """One admitted request, from enqueue to response.

    ``respond`` is the connection's serialized writer; calling it more
    than once is a bug (the dispatcher owns the single response)."""

    request: Request
    deadline: Deadline
    respond: Callable[[dict], None]
    #: Correlation id stamped at admission (``r000001``, ...) — the
    #: request_id every log record, trace flow, and ring entry of this
    #: request carries.
    request_id: str = ""
    enqueued_at: float = field(default_factory=time.monotonic)

    def queue_seconds(self) -> float:
        return time.monotonic() - self.enqueued_at
