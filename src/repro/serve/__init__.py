"""``repro serve``: the fault-tolerant analysis daemon.

CCKT86's pitch is that jump functions are cheap enough to re-run
interprocedural constant propagation *continuously inside a programming
environment*. That only pays off when the analysis lives in a
long-running service: the summary and run caches stay hot on disk, the
interned lattice and imports stay hot in memory, and a client query
costs one unix-socket round trip instead of a cold interpreter start.

The package splits along the request path:

- :mod:`repro.serve.protocol` — the JSON-over-unix-socket wire format
  (newline-delimited frames, request/response shapes, error codes);
- :mod:`repro.serve.lifecycle` — per-request deadlines and cooperative
  cancellation;
- :mod:`repro.serve.server` — the daemon itself: bounded request queue
  with explicit overload shedding, worker-crash recovery, graceful
  signal-driven drain, observability artifact flushing;
- :mod:`repro.serve.client` — the client used by the CLI
  (``repro client``), the tests, and the chaos harness.

Robustness is the design driver throughout: a long-lived daemon is
exactly where worker crashes, torn caches, slow requests, and
signal-driven shutdown stop being one-off failures and become
steady-state events. Every degradation path here is exercised by the
fault-injection matrix (:mod:`repro.faults`, ``tests/robustness``)
rather than trusted.
"""

from repro.serve.client import ReproClient, ServeRequestError, wait_for_server
from repro.serve.server import ReproServer, ServeConfig

__all__ = [
    "ReproClient",
    "ReproServer",
    "ServeConfig",
    "ServeRequestError",
    "wait_for_server",
]
