"""Abstract syntax tree for MiniFortran.

The tree is deliberately small: one node class per construct, all plain
dataclasses carrying a :class:`SourceLocation`. Lowering to the IR
(:mod:`repro.ir.lowering`) consumes this tree; nothing else mutates it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.frontend.source import SourceLocation

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    """Base class for expression nodes."""

    location: SourceLocation


@dataclass
class IntLiteral(Expr):
    """An integer literal such as ``42``."""

    value: int


@dataclass
class VarRef(Expr):
    """A reference to a scalar variable (or a whole array, as an actual
    argument)."""

    name: str


@dataclass
class ArrayRef(Expr):
    """A subscripted array reference ``A(I, J)``."""

    name: str
    indices: List[Expr]


@dataclass
class FunctionCall(Expr):
    """A call to an INTEGER FUNCTION appearing inside an expression."""

    name: str
    args: List[Expr]


@dataclass
class UnaryOp(Expr):
    """Unary minus or ``.NOT.``; ``op`` is ``'-'`` or ``'not'``."""

    op: str
    operand: Expr


@dataclass
class BinaryOp(Expr):
    """Integer arithmetic; ``op`` is one of ``+ - * /``."""

    op: str
    left: Expr
    right: Expr


@dataclass
class Compare(Expr):
    """A relational comparison; ``op`` is ``eq ne lt le gt ge``."""

    op: str
    left: Expr
    right: Expr


@dataclass
class LogicalOp(Expr):
    """``.AND.`` / ``.OR.``; ``op`` is ``'and'`` or ``'or'``."""

    op: str
    left: Expr
    right: Expr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    """Base class for statement nodes; ``label`` is the numeric statement
    label when one is present in the label field."""

    location: SourceLocation
    label: Optional[int] = None


@dataclass
class Assign(Stmt):
    """``target = value`` where target is a VarRef or ArrayRef."""

    target: Union[VarRef, ArrayRef] = None
    value: Expr = None


@dataclass
class CallStmt(Stmt):
    """``CALL name(args)``."""

    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class IfStmt(Stmt):
    """Block IF with optional ELSEIF arms and ELSE body.

    A logical IF (``IF (cond) stmt``) parses to an IfStmt whose then-body
    holds the single statement.
    """

    cond: Expr = None
    then_body: List[Stmt] = field(default_factory=list)
    elifs: List[Tuple[Expr, List[Stmt]]] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)


@dataclass
class DoStmt(Stmt):
    """``DO var = start, stop [, step]`` ... ``ENDDO``.

    ``step`` must be an integer-literal expression (possibly negated);
    this restriction keeps the loop lowering direction-deterministic and
    is checked during lowering.
    """

    var: str = ""
    start: Expr = None
    stop: Expr = None
    step: Optional[Expr] = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class DoWhileStmt(Stmt):
    """``DO WHILE (cond)`` ... ``ENDDO``."""

    cond: Expr = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class GotoStmt(Stmt):
    """``GOTO label``."""

    target: int = 0


@dataclass
class ContinueStmt(Stmt):
    """``CONTINUE`` — a no-op, typically a GOTO target."""


@dataclass
class ReturnStmt(Stmt):
    """``RETURN``."""


@dataclass
class StopStmt(Stmt):
    """``STOP`` — terminate the program."""


@dataclass
class ReadStmt(Stmt):
    """``READ *, targets`` — assigns run-time (unknowable) values."""

    targets: List[Union[VarRef, ArrayRef]] = field(default_factory=list)


@dataclass
class PrintStmt(Stmt):
    """``PRINT *, items`` (WRITE is accepted as a synonym); items are
    expressions or string literals."""

    items: List[Union[Expr, str]] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class Decl:
    """Base class for specification statements."""

    location: SourceLocation


@dataclass
class DeclItem:
    """One name in a declaration list, with optional array dimensions."""

    name: str
    dims: Optional[List[int]] = None

    @property
    def is_array(self) -> bool:
        return self.dims is not None


@dataclass
class IntegerDecl(Decl):
    """``INTEGER a, b(10), c`` — type (and possibly shape) declarations."""

    items: List[DeclItem] = field(default_factory=list)


@dataclass
class DimensionDecl(Decl):
    """``DIMENSION a(10)`` — shape declarations."""

    items: List[DeclItem] = field(default_factory=list)


@dataclass
class CommonDecl(Decl):
    """``COMMON /block/ a, b(5)`` — global storage declaration."""

    block: str = ""
    items: List[DeclItem] = field(default_factory=list)


@dataclass
class ParameterDecl(Decl):
    """``PARAMETER (n = 10, m = n * 2)`` — named compile-time constants."""

    bindings: List[Tuple[str, Expr]] = field(default_factory=list)


@dataclass
class ExternalDecl(Decl):
    """``EXTERNAL f, g`` — the named procedures are defined in another
    program unit (possibly another file). Within a single-file analysis
    an external callee is modeled conservatively (a call clobbers every
    by-reference argument and every visible global); the linkage layer
    (:mod:`repro.linkage`) resolves the names against the whole
    program's symbol table instead."""

    names: List[str] = field(default_factory=list)


@dataclass
class DataDecl(Decl):
    """``DATA a, b /1, 2/`` — static initial values. MiniFortran allows
    DATA only inside BLOCK DATA units, initializing scalar COMMON
    members (the FORTRAN idiom interprocedural constant propagation
    cares about: compile-time-known global configuration)."""

    bindings: List[Tuple[str, int]] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Program units
# ---------------------------------------------------------------------------


class ProcedureKind(enum.Enum):
    """The three kinds of program unit."""

    PROGRAM = "program"
    SUBROUTINE = "subroutine"
    FUNCTION = "function"
    BLOCK_DATA = "block_data"


@dataclass
class ProcedureUnit:
    """One program unit: PROGRAM, SUBROUTINE, or INTEGER FUNCTION.

    ``is_stub`` marks a unit whose body could not be parsed during
    error recovery: only the header survived. Lowering replaces a stub
    body with a single maximally conservative statement (every scalar
    the unit could touch is treated as assigned an unknown value), so
    the rest of the module still analyzes soundly.
    """

    kind: ProcedureKind
    name: str
    params: List[str]
    decls: List[Decl]
    body: List[Stmt]
    location: SourceLocation
    is_stub: bool = False


@dataclass
class Module:
    """A whole source file: a list of program units."""

    units: List[ProcedureUnit]
    filename: str = "<string>"

    def unit(self, name: str) -> ProcedureUnit:
        """Look up a unit by (case-insensitive) name."""
        lowered = name.lower()
        for unit in self.units:
            if unit.name == lowered:
                return unit
        raise KeyError(name)


def walk_statements(body: List[Stmt]):
    """Yield every statement in ``body``, recursing into compound bodies."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, IfStmt):
            yield from walk_statements(stmt.then_body)
            for _, arm in stmt.elifs:
                yield from walk_statements(arm)
            yield from walk_statements(stmt.else_body)
        elif isinstance(stmt, (DoStmt, DoWhileStmt)):
            yield from walk_statements(stmt.body)


def walk_expressions(expr: Expr):
    """Yield ``expr`` and every sub-expression."""
    yield expr
    if isinstance(expr, (BinaryOp, Compare, LogicalOp)):
        yield from walk_expressions(expr.left)
        yield from walk_expressions(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from walk_expressions(expr.operand)
    elif isinstance(expr, (FunctionCall, ArrayRef)):
        children = expr.args if isinstance(expr, FunctionCall) else expr.indices
        for child in children:
            yield from walk_expressions(child)
