"""A line-oriented lexer for MiniFortran.

MiniFortran keeps FORTRAN's statement-per-line structure but relaxes the
fixed-column card format:

- a line whose first column is ``C`` or ``*`` followed by whitespace (or
  nothing), or whose first non-blank character is ``!``, is a comment;
- ``!`` starts an inline comment anywhere outside a string;
- an integer at the very start of a statement is a statement *label*;
- statements end at end of line (a NEWLINE token); there are no
  continuation cards.

Identifiers and keywords are case-insensitive; identifier tokens carry
their lower-cased spelling in ``value``.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, TYPE_CHECKING

from repro.frontend.errors import LexError
from repro.frontend.source import SourceFile, SourceLocation
from repro.frontend.tokens import DOTTED_OPERATORS, KEYWORDS, Token, TokenKind

if TYPE_CHECKING:
    from repro.diagnostics import DiagnosticEngine

_SINGLE_CHAR_TOKENS = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ",": TokenKind.COMMA,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "=": TokenKind.EQUALS,
}


def _is_comment_line(line: str) -> bool:
    """True for classic FORTRAN comment cards and ``!`` comment lines."""
    stripped = line.strip()
    if not stripped:
        return True
    if stripped.startswith("!"):
        return True
    first = line[:1].upper()
    if first in ("C", "*") and (len(line) == 1 or line[1:2] in (" ", "\t")):
        return True
    return False


class Lexer:
    """Tokenizes one :class:`SourceFile` into a stream of tokens.

    Without a :class:`~repro.diagnostics.DiagnosticEngine` the lexer
    raises :class:`LexError` on the first bad character (the historic
    contract). With one, it *recovers*: the error is recorded and the
    offending character skipped (an unterminated string consumes the
    rest of its line), so one typo no longer hides every later
    diagnostic in the file.
    """

    def __init__(
        self,
        source: SourceFile,
        diagnostics: Optional["DiagnosticEngine"] = None,
    ):
        self.source = source
        self.diagnostics = diagnostics

    def _lex_error(self, message: str, location: SourceLocation) -> None:
        """Raise or record, depending on recovery mode."""
        if self.diagnostics is None:
            raise LexError(message, location)
        from repro.diagnostics import E_LEX

        self.diagnostics.error(E_LEX, message, location)

    def tokens(self) -> List[Token]:
        """Tokenize the whole file, ending with a single EOF token."""
        result: List[Token] = []
        line_count = len(self.source.lines)
        for line_number, line in enumerate(self.source.lines, start=1):
            if _is_comment_line(line):
                continue
            line_tokens = list(self._lex_line(line, line_number))
            if line_tokens:
                result.extend(line_tokens)
                result.append(
                    Token(
                        TokenKind.NEWLINE,
                        "\n",
                        self.source.location(line_number, len(line) + 1),
                    )
                )
        result.append(
            Token(TokenKind.EOF, "", self.source.location(line_count + 1, 1))
        )
        return result

    def _lex_line(self, line: str, line_number: int) -> Iterator[Token]:
        pos = 0
        length = len(line)
        at_statement_start = True
        while pos < length:
            char = line[pos]
            if char in (" ", "\t"):
                pos += 1
                continue
            if char == "!":
                return  # inline comment: rest of line ignored
            location = self.source.location(line_number, pos + 1)
            if char.isdigit():
                end = pos
                while end < length and line[end].isdigit():
                    end += 1
                text = line[pos:end]
                kind = TokenKind.LABEL if at_statement_start else TokenKind.INT_LITERAL
                yield Token(kind, text, location, int(text))
                pos = end
                at_statement_start = False
                continue
            at_statement_start = False
            if char == "." and self._looks_like_dotted_operator(line, pos):
                end = line.index(".", pos + 1) + 1
                spelled = line[pos:end].lower()
                yield Token(DOTTED_OPERATORS[spelled], line[pos:end], location)
                pos = end
                continue
            if char.isalpha() or char == "_":
                end = pos
                while end < length and (line[end].isalnum() or line[end] == "_"):
                    end += 1
                text = line[pos:end]
                lowered = text.lower()
                kind = KEYWORDS.get(lowered, TokenKind.IDENT)
                yield Token(kind, text, location, lowered)
                pos = end
                continue
            if char == "'":
                end = line.find("'", pos + 1)
                if end < 0:
                    self._lex_error("unterminated string literal", location)
                    # Recovery: treat the rest of the line as the string.
                    yield Token(
                        TokenKind.STRING, line[pos:], location, line[pos + 1 :]
                    )
                    return
                yield Token(
                    TokenKind.STRING, line[pos : end + 1], location, line[pos + 1 : end]
                )
                pos = end + 1
                continue
            if char in _SINGLE_CHAR_TOKENS:
                yield Token(_SINGLE_CHAR_TOKENS[char], char, location)
                pos += 1
                continue
            self._lex_error(f"unexpected character {char!r}", location)
            pos += 1  # recovery: skip the offending character

    @staticmethod
    def _looks_like_dotted_operator(line: str, pos: int) -> bool:
        """True when the text at ``pos`` spells one of ``.EQ.`` etc."""
        close = line.find(".", pos + 1)
        if close < 0:
            return False
        spelled = line[pos : close + 1].lower()
        return spelled in DOTTED_OPERATORS


def tokenize(text: str, filename: str = "<string>") -> List[Token]:
    """Convenience wrapper: tokenize ``text`` as file ``filename``."""
    return Lexer(SourceFile(filename, text)).tokens()
