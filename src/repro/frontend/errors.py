"""Diagnostics raised by the MiniFortran frontend."""

from __future__ import annotations

from typing import Optional

from repro.frontend.source import SourceLocation


class FrontendError(Exception):
    """Base class for all frontend diagnostics.

    Carries an optional :class:`SourceLocation`; the message is rendered
    with a ``file:line:col`` prefix when the location is known.
    """

    def __init__(self, message: str, location: Optional[SourceLocation] = None):
        self.message = message
        self.location = location
        if location is not None:
            super().__init__(f"{location}: {message}")
        else:
            super().__init__(message)


class LexError(FrontendError):
    """Raised when the lexer encounters text it cannot tokenize."""


class ParseError(FrontendError):
    """Raised when the parser encounters an unexpected token."""


class SemanticError(FrontendError):
    """Raised for ill-formed programs that lex and parse but cannot be
    lowered (undeclared arrays used with subscripts, duplicate procedure
    names, mismatched COMMON declarations, and similar)."""
