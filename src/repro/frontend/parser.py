"""Recursive-descent parser for MiniFortran.

The grammar is statement-per-line (NEWLINE-terminated). Declarations must
precede executable statements inside each program unit, which lets the
parser track declared array names and disambiguate ``A(I)`` between an
array reference and an INTEGER FUNCTION call.

Supported loop forms::

    DO I = 1, N [, STEP] ... ENDDO        (also END DO)
    DO 10 I = 1, N ... 10 CONTINUE        (labeled classic form)
    DO WHILE (cond) ... ENDDO

Block IF supports ELSEIF/ELSE IF arms and ELSE; ``IF (cond) stmt`` is the
logical-IF sugar.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple, Union, TYPE_CHECKING

from repro.frontend import ast
from repro.frontend.errors import ParseError
from repro.frontend.lexer import Lexer
from repro.frontend.source import SourceFile, SourceLocation
from repro.frontend.tokens import Token, TokenKind

if TYPE_CHECKING:
    from repro.diagnostics import DiagnosticEngine

_RELATIONAL = {
    TokenKind.EQ: "eq",
    TokenKind.NE: "ne",
    TokenKind.LT: "lt",
    TokenKind.LE: "le",
    TokenKind.GT: "gt",
    TokenKind.GE: "ge",
}

#: Statement keywords allowed after a logical IF: ``IF (cond) stmt``.
_SIMPLE_STMT_STARTERS = {
    TokenKind.IDENT,
    TokenKind.CALL,
    TokenKind.GOTO,
    TokenKind.CONTINUE,
    TokenKind.RETURN,
    TokenKind.STOP,
    TokenKind.READ,
    TokenKind.PRINT,
    TokenKind.WRITE,
}


class Parser:
    """Parses a token stream into a :class:`repro.frontend.ast.Module`.

    Without a :class:`~repro.diagnostics.DiagnosticEngine` the parser
    raises on the first :class:`ParseError` (the historic contract).
    With one, it performs **panic-mode recovery**: a bad statement is
    reported and the parser synchronizes at the next statement boundary
    to keep collecting diagnostics; a unit that contained any error is
    degraded to a *stub* (header only, ``is_stub=True``) so downstream
    analysis treats it maximally conservatively instead of trusting a
    half-parsed body; a unit whose header is unreadable is skipped to
    its closing ``END``.
    """

    def __init__(
        self,
        tokens: List[Token],
        filename: str = "<string>",
        diagnostics: Optional["DiagnosticEngine"] = None,
    ):
        self._tokens = tokens
        self._pos = 0
        self._filename = filename
        self._array_names: Set[str] = set()
        self._parameter_names: Set[str] = set()
        self.diagnostics = diagnostics
        self._unit_errors = 0

    # -- token helpers ----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _at(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _expect(self, kind: TokenKind, what: str = "") -> Token:
        token = self._peek()
        if token.kind is not kind:
            wanted = what or kind.value
            raise ParseError(
                f"expected {wanted}, found {token.kind.value!r} ({token.text!r})",
                token.location,
            )
        return self._advance()

    def _accept(self, kind: TokenKind) -> Optional[Token]:
        if self._at(kind):
            return self._advance()
        return None

    def _skip_newlines(self) -> None:
        while self._at(TokenKind.NEWLINE):
            self._advance()

    def _end_statement(self) -> None:
        if self._at(TokenKind.EOF):
            return
        self._expect(TokenKind.NEWLINE, "end of statement")
        self._skip_newlines()

    # -- error recovery ----------------------------------------------------

    def _report_parse_error(self, err: ParseError) -> None:
        """Record a recovered :class:`ParseError` on the engine."""
        from repro.diagnostics import E_PARSE

        self._unit_errors += 1
        self.diagnostics.error(E_PARSE, err.message, err.location)

    def _at_statement_start(self) -> bool:
        if self._pos == 0:
            return True
        return self._tokens[self._pos - 1].kind is TokenKind.NEWLINE

    def _synchronize_to_statement_boundary(self, until: Set[TokenKind]) -> bool:
        """Skip tokens to the next statement boundary.

        Returns True when positioned at the start of the next statement
        (or at a block terminator from ``until``), False at EOF. Always
        consumes at least one token unless already at EOF or a
        terminator, so recovery loops make progress.
        """
        while True:
            token = self._peek()
            if token.kind is TokenKind.EOF:
                return False
            if token.kind is TokenKind.NEWLINE:
                self._advance()
                self._skip_newlines()
                return True
            if token.kind in until and token.kind is not TokenKind.IDENT:
                return True
            self._advance()

    def _synchronize_to_unit_end(self) -> None:
        """Skip to just past the ``END`` that closes the current unit.

        ``END`` only counts when it sits at a statement start and is
        followed by NEWLINE/EOF (so ``END IF`` / ``END DO`` inside the
        broken unit do not end the synchronization early).
        """
        while not self._at(TokenKind.EOF):
            if (
                self._at(TokenKind.END)
                and self._at_statement_start()
                and self._peek(1).kind in (TokenKind.NEWLINE, TokenKind.EOF)
            ):
                self._advance()
                self._accept(TokenKind.NEWLINE)
                return
            self._advance()

    # -- entry point -------------------------------------------------------

    def parse_module(self) -> ast.Module:
        """Parse the whole token stream into a Module of program units."""
        units: List[ast.ProcedureUnit] = []
        self._skip_newlines()
        while not self._at(TokenKind.EOF):
            unit = self._parse_unit()
            if unit is not None:
                units.append(unit)
            self._skip_newlines()
        if not units:
            if self.diagnostics is None:
                raise ParseError("empty source file", self._peek().location)
            if not self.diagnostics.has_errors:
                from repro.diagnostics import E_PARSE

                self.diagnostics.error(
                    E_PARSE, "empty source file", self._peek().location
                )
            return ast.Module([], self._filename)
        return ast.Module(units, self._filename)

    # -- program units -----------------------------------------------------

    def _parse_unit(self) -> Optional[ast.ProcedureUnit]:
        self._array_names = set()
        self._parameter_names = set()
        self._unit_errors = 0
        location = self._peek().location
        try:
            kind, name, params = self._parse_unit_header()
            self._end_statement()
        except ParseError as err:
            if self.diagnostics is None:
                raise
            # Header unreadable: nothing to stub, skip the whole unit.
            self._report_parse_error(err)
            self._synchronize_to_unit_end()
            return None
        try:
            decls = self._parse_declarations()
            body = self._parse_statement_list(until={TokenKind.END})
            self._expect(TokenKind.END)
            if not self._at(TokenKind.EOF):
                self._end_statement()
        except ParseError as err:
            if self.diagnostics is None:
                raise
            self._report_parse_error(err)
            self._synchronize_to_unit_end()
            return self._degraded_unit(kind, name, params, [], location)
        if self._unit_errors:
            # Statement-level recovery succeeded, but a half-parsed body
            # must not be analyzed as if it were the real program.
            return self._degraded_unit(kind, name, params, decls, location)
        return ast.ProcedureUnit(kind, name, params, decls, body, location)

    def _degraded_unit(
        self,
        kind: ast.ProcedureKind,
        name: str,
        params: List[str],
        decls: List[ast.Decl],
        location: SourceLocation,
    ) -> ast.ProcedureUnit:
        from repro.diagnostics import W_UNIT_DEGRADED

        self.diagnostics.warning(
            W_UNIT_DEGRADED,
            f"unit {name!r} had {self._unit_errors} syntax error(s); "
            "analyzed as an opaque stub",
            location,
        )
        return ast.ProcedureUnit(
            kind, name, params, decls, [], location, is_stub=True
        )

    def _parse_unit_header(self):
        token = self._peek()
        if self._accept(TokenKind.BLOCKDATA):
            return ast.ProcedureKind.BLOCK_DATA, self._block_data_name(), []
        if (
            token.kind is TokenKind.IDENT
            and token.value == "block"
            and self._peek(1).kind is TokenKind.DATA
        ):
            self._advance()
            self._advance()
            return ast.ProcedureKind.BLOCK_DATA, self._block_data_name(), []
        if self._accept(TokenKind.PROGRAM):
            name = self._expect(TokenKind.IDENT, "program name").value
            return ast.ProcedureKind.PROGRAM, name, []
        if self._accept(TokenKind.SUBROUTINE):
            name = self._expect(TokenKind.IDENT, "subroutine name").value
            return ast.ProcedureKind.SUBROUTINE, name, self._parse_param_list()
        if self._at(TokenKind.INTEGER) and self._peek(1).kind is TokenKind.FUNCTION:
            self._advance()
            self._advance()
            name = self._expect(TokenKind.IDENT, "function name").value
            return ast.ProcedureKind.FUNCTION, name, self._parse_param_list()
        raise ParseError(
            "expected PROGRAM, SUBROUTINE, or INTEGER FUNCTION", token.location
        )

    def _parse_param_list(self) -> List[str]:
        params: List[str] = []
        if not self._accept(TokenKind.LPAREN):
            return params
        if not self._at(TokenKind.RPAREN):
            params.append(self._expect(TokenKind.IDENT, "parameter name").value)
            while self._accept(TokenKind.COMMA):
                params.append(self._expect(TokenKind.IDENT, "parameter name").value)
        self._expect(TokenKind.RPAREN)
        return params

    # -- declarations ------------------------------------------------------

    def _parse_declarations(self) -> List[ast.Decl]:
        decls: List[ast.Decl] = []
        while True:
            token = self._peek()
            if token.kind is TokenKind.INTEGER:
                self._advance()
                decls.append(ast.IntegerDecl(token.location, self._parse_decl_items()))
            elif token.kind is TokenKind.DIMENSION:
                self._advance()
                decls.append(
                    ast.DimensionDecl(token.location, self._parse_decl_items())
                )
            elif token.kind is TokenKind.COMMON:
                self._advance()
                self._expect(TokenKind.SLASH)
                block = self._expect(TokenKind.IDENT, "common block name").value
                self._expect(TokenKind.SLASH)
                decls.append(
                    ast.CommonDecl(token.location, block, self._parse_decl_items())
                )
            elif token.kind is TokenKind.PARAMETER:
                self._advance()
                decls.append(self._parse_parameter_decl(token.location))
            elif token.kind is TokenKind.DATA:
                self._advance()
                decls.append(self._parse_data_decl(token.location))
            elif token.kind is TokenKind.EXTERNAL:
                self._advance()
                names = [
                    self._expect(TokenKind.IDENT, "external procedure name").value
                ]
                while self._accept(TokenKind.COMMA):
                    names.append(
                        self._expect(TokenKind.IDENT, "external procedure name").value
                    )
                decls.append(ast.ExternalDecl(token.location, names))
            else:
                break
            self._end_statement()
        return decls

    def _block_data_name(self) -> str:
        if self._at(TokenKind.IDENT):
            return self._advance().value
        return "blockdata"

    def _parse_data_decl(self, location: SourceLocation) -> ast.DataDecl:
        """``DATA a /1/, b, c /2, 3/`` — name groups with value groups."""
        bindings: List[Tuple[str, int]] = []
        while True:
            names = [self._expect(TokenKind.IDENT, "variable name").value]
            while self._accept(TokenKind.COMMA):
                names.append(self._expect(TokenKind.IDENT, "variable name").value)
            self._expect(TokenKind.SLASH)
            values = [self._parse_data_value()]
            while self._accept(TokenKind.COMMA):
                values.append(self._parse_data_value())
            self._expect(TokenKind.SLASH)
            if len(names) != len(values):
                raise ParseError(
                    f"DATA group has {len(names)} names but {len(values)} values",
                    location,
                )
            bindings.extend(zip(names, values))
            if not self._accept(TokenKind.COMMA):
                break
        return ast.DataDecl(location, bindings)

    def _parse_data_value(self) -> int:
        negative = bool(self._accept(TokenKind.MINUS))
        token = self._expect(TokenKind.INT_LITERAL, "integer value")
        value = int(token.value)
        return -value if negative else value

    def _parse_decl_items(self) -> List[ast.DeclItem]:
        items = [self._parse_decl_item()]
        while self._accept(TokenKind.COMMA):
            items.append(self._parse_decl_item())
        return items

    def _parse_decl_item(self) -> ast.DeclItem:
        name = self._expect(TokenKind.IDENT, "variable name").value
        dims: Optional[List[int]] = None
        if self._accept(TokenKind.LPAREN):
            dims = [self._parse_dimension()]
            while self._accept(TokenKind.COMMA):
                dims.append(self._parse_dimension())
            self._expect(TokenKind.RPAREN)
            self._array_names.add(name)
        return ast.DeclItem(name, dims)

    def _parse_dimension(self) -> int:
        token = self._expect(TokenKind.INT_LITERAL, "array dimension")
        return int(token.value)

    def _parse_parameter_decl(self, location: SourceLocation) -> ast.ParameterDecl:
        self._expect(TokenKind.LPAREN)
        bindings: List[Tuple[str, ast.Expr]] = []
        while True:
            name = self._expect(TokenKind.IDENT, "parameter constant name").value
            self._expect(TokenKind.EQUALS)
            bindings.append((name, self._parse_expression()))
            self._parameter_names.add(name)
            if not self._accept(TokenKind.COMMA):
                break
        self._expect(TokenKind.RPAREN)
        return ast.ParameterDecl(location, bindings)

    # -- statements ----------------------------------------------------------

    def _parse_statement_list(
        self, until: Set[TokenKind], stop_label: Optional[int] = None
    ) -> List[ast.Stmt]:
        """Parse statements until a terminator keyword in ``until`` (left
        unconsumed), or — for labeled DO loops — until the statement whose
        label equals ``stop_label`` has been parsed (inclusive)."""
        body: List[ast.Stmt] = []
        while True:
            self._skip_newlines()
            token = self._peek()
            if token.kind is TokenKind.EOF:
                if until:
                    raise ParseError("unexpected end of file", token.location)
                return body
            if token.kind in until and token.kind is not TokenKind.IDENT:
                return body
            try:
                stmt = self._parse_statement()
            except ParseError as err:
                if self.diagnostics is None:
                    raise
                self._report_parse_error(err)
                if not self._synchronize_to_statement_boundary(until):
                    return body  # hit EOF; the unit-level END check reports it
                continue
            body.append(stmt)
            if stop_label is not None and stmt.label == stop_label:
                return body

    def _parse_statement(self) -> ast.Stmt:
        label: Optional[int] = None
        if self._at(TokenKind.LABEL):
            label = int(self._advance().value)
        stmt = self._parse_unlabeled_statement()
        stmt.label = label
        return stmt

    def _parse_unlabeled_statement(self) -> ast.Stmt:
        token = self._peek()
        kind = token.kind
        if kind is TokenKind.IDENT:
            return self._parse_assignment()
        if kind is TokenKind.CALL:
            return self._parse_call()
        if kind is TokenKind.IF:
            return self._parse_if()
        if kind is TokenKind.DO:
            return self._parse_do()
        if kind is TokenKind.GOTO:
            self._advance()
            target = self._expect(TokenKind.INT_LITERAL, "statement label")
            self._end_statement()
            return ast.GotoStmt(token.location, target=int(target.value))
        if kind is TokenKind.CONTINUE:
            self._advance()
            self._end_statement()
            return ast.ContinueStmt(token.location)
        if kind is TokenKind.RETURN:
            self._advance()
            self._end_statement()
            return ast.ReturnStmt(token.location)
        if kind is TokenKind.STOP:
            self._advance()
            self._accept(TokenKind.INT_LITERAL)  # optional STOP code
            self._end_statement()
            return ast.StopStmt(token.location)
        if kind is TokenKind.READ:
            return self._parse_read()
        if kind in (TokenKind.PRINT, TokenKind.WRITE):
            return self._parse_print()
        raise ParseError(
            f"unexpected token {token.text!r} at start of statement", token.location
        )

    def _parse_assignment(self) -> ast.Assign:
        location = self._peek().location
        target = self._parse_designator()
        self._expect(TokenKind.EQUALS)
        value = self._parse_expression()
        self._end_statement()
        return ast.Assign(location, target=target, value=value)

    def _parse_designator(self) -> Union[ast.VarRef, ast.ArrayRef]:
        token = self._expect(TokenKind.IDENT, "variable name")
        if self._at(TokenKind.LPAREN):
            self._advance()
            indices = [self._parse_expression()]
            while self._accept(TokenKind.COMMA):
                indices.append(self._parse_expression())
            self._expect(TokenKind.RPAREN)
            return ast.ArrayRef(token.location, token.value, indices)
        return ast.VarRef(token.location, token.value)

    def _parse_call(self) -> ast.CallStmt:
        location = self._advance().location  # CALL
        name = self._expect(TokenKind.IDENT, "subroutine name").value
        args: List[ast.Expr] = []
        if self._accept(TokenKind.LPAREN):
            if not self._at(TokenKind.RPAREN):
                args.append(self._parse_expression())
                while self._accept(TokenKind.COMMA):
                    args.append(self._parse_expression())
            self._expect(TokenKind.RPAREN)
        self._end_statement()
        return ast.CallStmt(location, name=name, args=args)

    def _parse_if(self) -> ast.IfStmt:
        location = self._advance().location  # IF
        self._expect(TokenKind.LPAREN)
        cond = self._parse_expression()
        self._expect(TokenKind.RPAREN)
        if self._accept(TokenKind.THEN):
            self._end_statement()
            return self._parse_block_if(location, cond)
        # Logical IF: a single simple statement on the same line.
        if self._peek().kind not in _SIMPLE_STMT_STARTERS:
            raise ParseError(
                "expected THEN or a simple statement after IF (...)",
                self._peek().location,
            )
        stmt = self._parse_unlabeled_statement()
        return ast.IfStmt(location, cond=cond, then_body=[stmt])

    def _parse_block_if(self, location: SourceLocation, cond: ast.Expr) -> ast.IfStmt:
        terminators = {TokenKind.ELSEIF, TokenKind.ELSE, TokenKind.ENDIF, TokenKind.END}
        then_body = self._parse_statement_list(until=terminators)
        elifs: List[Tuple[ast.Expr, List[ast.Stmt]]] = []
        else_body: List[ast.Stmt] = []
        while True:
            if self._at_elseif():
                arm_cond = self._consume_elseif_condition()
                elifs.append(
                    (arm_cond, self._parse_statement_list(until=terminators))
                )
                continue
            if self._at(TokenKind.ELSE):
                self._advance()
                self._end_statement()
                else_body = self._parse_statement_list(
                    until={TokenKind.ENDIF, TokenKind.END}
                )
            self._consume_endif()
            self._end_statement()
            return ast.IfStmt(
                location,
                cond=cond,
                then_body=then_body,
                elifs=elifs,
                else_body=else_body,
            )

    def _at_elseif(self) -> bool:
        if self._at(TokenKind.ELSEIF):
            return True
        return self._at(TokenKind.ELSE) and self._peek(1).kind is TokenKind.IF

    def _consume_elseif_condition(self) -> ast.Expr:
        if self._accept(TokenKind.ELSEIF):
            pass
        else:
            self._expect(TokenKind.ELSE)
            self._expect(TokenKind.IF)
        self._expect(TokenKind.LPAREN)
        cond = self._parse_expression()
        self._expect(TokenKind.RPAREN)
        self._expect(TokenKind.THEN)
        self._end_statement()
        return cond

    def _consume_endif(self) -> None:
        if self._accept(TokenKind.ENDIF):
            return
        if self._at(TokenKind.END) and self._peek(1).kind is TokenKind.IF:
            self._advance()
            self._advance()
            return
        raise ParseError("expected ENDIF", self._peek().location)

    def _parse_do(self) -> ast.Stmt:
        location = self._advance().location  # DO
        if self._accept(TokenKind.WHILE):
            self._expect(TokenKind.LPAREN)
            cond = self._parse_expression()
            self._expect(TokenKind.RPAREN)
            self._end_statement()
            body = self._parse_statement_list(until={TokenKind.ENDDO, TokenKind.END})
            self._consume_enddo()
            self._end_statement()
            return ast.DoWhileStmt(location, cond=cond, body=body)

        do_label: Optional[int] = None
        if self._at(TokenKind.INT_LITERAL):
            do_label = int(self._advance().value)
        var = self._expect(TokenKind.IDENT, "loop variable").value
        self._expect(TokenKind.EQUALS)
        start = self._parse_expression()
        self._expect(TokenKind.COMMA)
        stop = self._parse_expression()
        step: Optional[ast.Expr] = None
        if self._accept(TokenKind.COMMA):
            step = self._parse_expression()
        self._end_statement()
        if do_label is not None:
            body = self._parse_statement_list(until=set(), stop_label=do_label)
            if not body or body[-1].label != do_label:
                raise ParseError(f"missing terminal statement {do_label}", location)
        else:
            body = self._parse_statement_list(until={TokenKind.ENDDO, TokenKind.END})
            self._consume_enddo()
            self._end_statement()
        return ast.DoStmt(location, var=var, start=start, stop=stop, step=step, body=body)

    def _consume_enddo(self) -> None:
        if self._accept(TokenKind.ENDDO):
            return
        if self._at(TokenKind.END) and self._peek(1).kind is TokenKind.DO:
            self._advance()
            self._advance()
            return
        raise ParseError("expected ENDDO", self._peek().location)

    def _parse_read(self) -> ast.ReadStmt:
        location = self._advance().location  # READ
        self._expect(TokenKind.STAR)
        self._expect(TokenKind.COMMA)
        targets = [self._parse_designator()]
        while self._accept(TokenKind.COMMA):
            targets.append(self._parse_designator())
        self._end_statement()
        return ast.ReadStmt(location, targets=targets)

    def _parse_print(self) -> ast.PrintStmt:
        location = self._advance().location  # PRINT or WRITE
        self._expect(TokenKind.STAR)
        items: List[Union[ast.Expr, str]] = []
        if self._accept(TokenKind.COMMA):
            items.append(self._parse_print_item())
            while self._accept(TokenKind.COMMA):
                items.append(self._parse_print_item())
        self._end_statement()
        return ast.PrintStmt(location, items=items)

    def _parse_print_item(self) -> Union[ast.Expr, str]:
        if self._at(TokenKind.STRING):
            return str(self._advance().value)
        return self._parse_expression()

    # -- expressions ---------------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._at(TokenKind.OR):
            location = self._advance().location
            right = self._parse_and()
            left = ast.LogicalOp(location, "or", left, right)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self._at(TokenKind.AND):
            location = self._advance().location
            right = self._parse_not()
            left = ast.LogicalOp(location, "and", left, right)
        return left

    def _parse_not(self) -> ast.Expr:
        if self._at(TokenKind.NOT):
            location = self._advance().location
            return ast.UnaryOp(location, "not", self._parse_not())
        return self._parse_relational()

    def _parse_relational(self) -> ast.Expr:
        left = self._parse_arith()
        kind = self._peek().kind
        if kind in _RELATIONAL:
            location = self._advance().location
            right = self._parse_arith()
            return ast.Compare(location, _RELATIONAL[kind], left, right)
        return left

    def _parse_arith(self) -> ast.Expr:
        left = self._parse_term()
        while self._peek().kind in (TokenKind.PLUS, TokenKind.MINUS):
            token = self._advance()
            right = self._parse_term()
            left = ast.BinaryOp(token.location, token.text, left, right)
        return left

    def _parse_term(self) -> ast.Expr:
        left = self._parse_factor()
        while self._peek().kind in (TokenKind.STAR, TokenKind.SLASH):
            token = self._advance()
            right = self._parse_factor()
            left = ast.BinaryOp(token.location, token.text, left, right)
        return left

    def _parse_factor(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.MINUS:
            self._advance()
            return ast.UnaryOp(token.location, "-", self._parse_factor())
        if token.kind is TokenKind.PLUS:
            self._advance()
            return self._parse_factor()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.INT_LITERAL:
            self._advance()
            return ast.IntLiteral(token.location, int(token.value))
        if token.kind is TokenKind.LPAREN:
            self._advance()
            expr = self._parse_expression()
            self._expect(TokenKind.RPAREN)
            return expr
        if token.kind is TokenKind.IDENT:
            self._advance()
            name = token.value
            if self._at(TokenKind.LPAREN):
                self._advance()
                args = []
                if not self._at(TokenKind.RPAREN):
                    args.append(self._parse_expression())
                    while self._accept(TokenKind.COMMA):
                        args.append(self._parse_expression())
                self._expect(TokenKind.RPAREN)
                if name in self._array_names:
                    return ast.ArrayRef(token.location, name, args)
                return ast.FunctionCall(token.location, name, args)
            return ast.VarRef(token.location, name)
        raise ParseError(
            f"unexpected token {token.text!r} in expression", token.location
        )


def parse_source(
    text: str,
    filename: str = "<string>",
    diagnostics: Optional["DiagnosticEngine"] = None,
) -> ast.Module:
    """Parse MiniFortran source ``text`` into an AST module.

    With a ``diagnostics`` engine, lexer and parser recover from errors
    (recording them on the engine) instead of raising; check
    ``diagnostics.has_errors`` and per-unit ``is_stub`` flags afterward.
    """
    from repro import profiling

    profiling.bump("parses")
    source = SourceFile(filename, text)
    tokens = Lexer(source, diagnostics).tokens()
    return Parser(tokens, filename, diagnostics).parse_module()


def parse_file(path: str) -> ast.Module:
    """Parse the MiniFortran file at ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return parse_source(text, filename=path)
