"""MiniFortran frontend: lexer, parser, and abstract syntax tree.

MiniFortran is a FORTRAN-77 subset covering the constructs that matter to
interprocedural constant propagation: program units (PROGRAM, SUBROUTINE,
INTEGER FUNCTION), call-by-reference parameter passing, COMMON blocks,
integer arithmetic, DO loops, block and logical IF, GOTO with labels, and
READ (the source of unknowable values).

The public entry points are :func:`parse_source` and :func:`parse_file`.
"""

from repro.frontend.ast import (
    ArrayRef,
    Assign,
    BinaryOp,
    CallStmt,
    CommonDecl,
    Compare,
    DimensionDecl,
    DoStmt,
    FunctionCall,
    GotoStmt,
    IfStmt,
    IntegerDecl,
    IntLiteral,
    LogicalOp,
    Module,
    ParameterDecl,
    PrintStmt,
    ProcedureKind,
    ProcedureUnit,
    ReadStmt,
    ReturnStmt,
    StopStmt,
    UnaryOp,
    VarRef,
)
from repro.frontend.errors import FrontendError, LexError, ParseError
from repro.frontend.lexer import Lexer, tokenize
from repro.frontend.parser import Parser, parse_file, parse_source
from repro.frontend.source import SourceFile, SourceLocation
from repro.frontend.tokens import Token, TokenKind

__all__ = [
    "ArrayRef",
    "Assign",
    "BinaryOp",
    "CallStmt",
    "CommonDecl",
    "Compare",
    "DimensionDecl",
    "DoStmt",
    "FrontendError",
    "FunctionCall",
    "GotoStmt",
    "IfStmt",
    "IntLiteral",
    "IntegerDecl",
    "LexError",
    "Lexer",
    "LogicalOp",
    "Module",
    "ParameterDecl",
    "ParseError",
    "Parser",
    "PrintStmt",
    "ProcedureKind",
    "ProcedureUnit",
    "ReadStmt",
    "ReturnStmt",
    "SourceFile",
    "SourceLocation",
    "StopStmt",
    "Token",
    "TokenKind",
    "UnaryOp",
    "VarRef",
    "parse_file",
    "parse_source",
    "tokenize",
]
