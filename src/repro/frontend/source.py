"""Source text handling: files, locations, and line extraction.

Every token and AST node carries a :class:`SourceLocation` so that
diagnostics (and the constant-substitution report) can point back at the
original text.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class SourceLocation:
    """A position in a source file (1-based line and column).

    ``slots=True``: every token and instruction carries one, so these
    outnumber even Variables.
    """

    filename: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


#: Location used for synthesized nodes that have no source counterpart.
UNKNOWN_LOCATION = SourceLocation("<unknown>", 0, 0)


@dataclass
class SourceFile:
    """A named body of MiniFortran source text.

    Provides line-level access used by error reporting and by the
    source-to-source constant substitution pass.
    """

    name: str
    text: str
    _lines: list = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._lines = self.text.splitlines()

    @property
    def lines(self) -> list:
        """The source split into lines (without trailing newlines)."""
        return list(self._lines)

    def line(self, number: int) -> str:
        """Return the 1-based line ``number``, or '' if out of range."""
        if 1 <= number <= len(self._lines):
            return self._lines[number - 1]
        return ""

    def location(self, line: int, column: int) -> SourceLocation:
        """Build a :class:`SourceLocation` inside this file."""
        return SourceLocation(self.name, line, column)

    def count_code_lines(self) -> int:
        """Number of non-comment, non-blank lines.

        This is the "line count" reported in the study's Table 1 ("The
        line counts exclude comments and blank lines").
        """
        count = 0
        for raw in self._lines:
            stripped = raw.strip()
            if not stripped:
                continue
            if stripped.startswith("!"):
                continue
            first = raw[:1].upper()
            if first in ("C", "*") and (len(raw) == 1 or raw[1:2] in (" ", "\t")):
                # FORTRAN comment card: 'C' or '*' in column 1.
                continue
            count += 1
        return count
