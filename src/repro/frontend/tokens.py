"""Token definitions for the MiniFortran lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.frontend.source import SourceLocation


class TokenKind(enum.Enum):
    """Every kind of token the lexer can produce."""

    # Literals and names
    INT_LITERAL = "int_literal"
    IDENT = "ident"
    LABEL = "label"  # statement label in the label field

    # Punctuation and operators
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    EQUALS = "="
    STRING = "string"

    # Relational operators (.EQ. etc.)
    EQ = ".eq."
    NE = ".ne."
    LT = ".lt."
    LE = ".le."
    GT = ".gt."
    GE = ".ge."

    # Logical operators
    AND = ".and."
    OR = ".or."
    NOT = ".not."

    # Keywords
    PROGRAM = "program"
    SUBROUTINE = "subroutine"
    FUNCTION = "function"
    INTEGER = "integer"
    DIMENSION = "dimension"
    COMMON = "common"
    PARAMETER = "parameter"
    DATA = "data"
    EXTERNAL = "external"
    BLOCKDATA = "blockdata"
    CALL = "call"
    IF = "if"
    THEN = "then"
    ELSE = "else"
    ELSEIF = "elseif"
    ENDIF = "endif"
    DO = "do"
    ENDDO = "enddo"
    WHILE = "while"
    GOTO = "goto"
    CONTINUE = "continue"
    RETURN = "return"
    STOP = "stop"
    READ = "read"
    PRINT = "print"
    WRITE = "write"
    END = "end"

    # Structure
    NEWLINE = "newline"
    EOF = "eof"


#: Keywords recognized after identifier scanning (lower-cased spelling).
KEYWORDS = {
    "program": TokenKind.PROGRAM,
    "subroutine": TokenKind.SUBROUTINE,
    "function": TokenKind.FUNCTION,
    "integer": TokenKind.INTEGER,
    "dimension": TokenKind.DIMENSION,
    "common": TokenKind.COMMON,
    "parameter": TokenKind.PARAMETER,
    "data": TokenKind.DATA,
    "external": TokenKind.EXTERNAL,
    "blockdata": TokenKind.BLOCKDATA,
    "call": TokenKind.CALL,
    "if": TokenKind.IF,
    "then": TokenKind.THEN,
    "else": TokenKind.ELSE,
    "elseif": TokenKind.ELSEIF,
    "endif": TokenKind.ENDIF,
    "do": TokenKind.DO,
    "enddo": TokenKind.ENDDO,
    "while": TokenKind.WHILE,
    "goto": TokenKind.GOTO,
    "continue": TokenKind.CONTINUE,
    "return": TokenKind.RETURN,
    "stop": TokenKind.STOP,
    "read": TokenKind.READ,
    "print": TokenKind.PRINT,
    "write": TokenKind.WRITE,
    "end": TokenKind.END,
}

#: Dotted operators (.EQ. and friends), lower-cased spelling -> kind.
DOTTED_OPERATORS = {
    ".eq.": TokenKind.EQ,
    ".ne.": TokenKind.NE,
    ".lt.": TokenKind.LT,
    ".le.": TokenKind.LE,
    ".gt.": TokenKind.GT,
    ".ge.": TokenKind.GE,
    ".and.": TokenKind.AND,
    ".or.": TokenKind.OR,
    ".not.": TokenKind.NOT,
}


@dataclass(frozen=True, slots=True)
class Token:
    """A single lexical token.

    ``value`` holds the integer value for INT_LITERAL / LABEL tokens and
    the (lower-cased) spelling for identifiers and strings.
    """

    kind: TokenKind
    text: str
    location: SourceLocation
    value: Optional[object] = None

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})"
