"""Multivariate polynomials with integer coefficients.

The polynomial parameter jump function represents an actual parameter as
a polynomial over the *entry values* of the calling procedure's formals
and globals (paper §3.1.4); return jump functions use the same
representation over the callee's entry values (§3.2). Variables are
:class:`repro.ir.symbols.Variable` objects.

A polynomial is a mapping ``monomial -> coefficient`` where a monomial is
a sorted tuple of ``(variable, exponent)`` pairs; the empty monomial is
the constant term. The representation is canonical: zero coefficients are
dropped, exponents are >= 1, and variables within a monomial are sorted,
so ``==`` is mathematical equality.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.analysis.expr import ConstExpr, EntryExpr, Expr, OpExpr, UnknownExpr
from repro.ir.symbols import Variable

Monomial = Tuple[Tuple[Variable, int], ...]

_CONST_MONOMIAL: Monomial = ()


def _sorted_monomial(pairs: Iterable[Tuple[Variable, int]]) -> Monomial:
    return tuple(sorted(pairs, key=lambda pair: (pair[0].uid, pair[0].name)))


class Polynomial:
    """An immutable multivariate polynomial over Variables."""

    __slots__ = ("_terms",)

    def __init__(self, terms: Optional[Mapping[Monomial, int]] = None):
        cleaned: Dict[Monomial, int] = {}
        if terms:
            for monomial, coefficient in terms.items():
                if coefficient != 0:
                    cleaned[monomial] = coefficient
        self._terms = cleaned

    # -- constructors -------------------------------------------------------

    @classmethod
    def constant(cls, value: int) -> "Polynomial":
        if value == 0:
            return cls()
        return cls({_CONST_MONOMIAL: value})

    @classmethod
    def variable(cls, var: Variable) -> "Polynomial":
        return cls({((var, 1),): 1})

    # -- queries ------------------------------------------------------------

    @property
    def terms(self) -> Mapping[Monomial, int]:
        return dict(self._terms)

    def is_zero(self) -> bool:
        return not self._terms

    def is_constant(self) -> bool:
        return not self._terms or (
            len(self._terms) == 1 and _CONST_MONOMIAL in self._terms
        )

    def constant_value(self) -> Optional[int]:
        """The constant this polynomial denotes, or None if non-constant."""
        if self.is_zero():
            return 0
        if self.is_constant():
            return self._terms[_CONST_MONOMIAL]
        return None

    def support(self) -> frozenset:
        """Exactly the variables with a nonzero occurrence — the jump
        function's *support* set (paper §2)."""
        result = set()
        for monomial in self._terms:
            for variable, _exp in monomial:
                result.add(variable)
        return frozenset(result)

    def degree(self) -> int:
        best = 0
        for monomial in self._terms:
            best = max(best, sum(exp for _v, exp in monomial))
        return best

    def is_single_variable_identity(self) -> Optional[Variable]:
        """If this polynomial is exactly ``1 * v``, return ``v`` — the
        pass-through pattern."""
        if len(self._terms) != 1:
            return None
        (monomial, coefficient), = self._terms.items()
        if coefficient != 1 or len(monomial) != 1:
            return None
        variable, exponent = monomial[0]
        if exponent != 1:
            return None
        return variable

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other: "Polynomial") -> "Polynomial":
        terms = dict(self._terms)
        for monomial, coefficient in other._terms.items():
            terms[monomial] = terms.get(monomial, 0) + coefficient
        return Polynomial(terms)

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        terms = dict(self._terms)
        for monomial, coefficient in other._terms.items():
            terms[monomial] = terms.get(monomial, 0) - coefficient
        return Polynomial(terms)

    def __neg__(self) -> "Polynomial":
        return Polynomial({m: -c for m, c in self._terms.items()})

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        terms: Dict[Monomial, int] = {}
        for mono_a, coeff_a in self._terms.items():
            for mono_b, coeff_b in other._terms.items():
                product = _multiply_monomials(mono_a, mono_b)
                terms[product] = terms.get(product, 0) + coeff_a * coeff_b
        return Polynomial(terms)

    def exact_divide(self, divisor: int) -> Optional["Polynomial"]:
        """Divide by an integer when every coefficient divides exactly;
        None otherwise. (Exactness makes integer truncation irrelevant,
        so the result is a faithful polynomial for FORTRAN division.)"""
        if divisor == 0:
            return None
        if any(coefficient % divisor for coefficient in self._terms.values()):
            return None
        return Polynomial(
            {m: coefficient // divisor for m, coefficient in self._terms.items()}
        )

    # -- evaluation ------------------------------------------------------------

    def evaluate(self, env: Mapping[Variable, int]) -> Optional[int]:
        """Fully evaluate; None when a support variable is missing."""
        total = 0
        for monomial, coefficient in self._terms.items():
            product = coefficient
            for variable, exponent in monomial:
                if variable not in env:
                    return None
                product *= env[variable] ** exponent
            total += product
        return total

    def partial_evaluate(self, env: Mapping[Variable, int]) -> "Polynomial":
        """Substitute known variables; the rest remain symbolic."""
        result = Polynomial()
        for monomial, coefficient in self._terms.items():
            value = coefficient
            remaining = []
            for variable, exponent in monomial:
                if variable in env:
                    value *= env[variable] ** exponent
                else:
                    remaining.append((variable, exponent))
            term = Polynomial({_sorted_monomial(remaining): value})
            result = result + term
        return result

    def substitute(self, bindings: Mapping[Variable, "Polynomial"]) -> "Polynomial":
        """Replace variables by polynomials (function composition)."""
        result = Polynomial()
        for monomial, coefficient in self._terms.items():
            term = Polynomial.constant(coefficient)
            for variable, exponent in monomial:
                factor = bindings.get(variable, Polynomial.variable(variable))
                for _ in range(exponent):
                    term = term * factor
            result = result + term
        return result

    # -- protocol ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Polynomial) and other._terms == self._terms

    def __hash__(self) -> int:
        return hash(frozenset(self._terms.items()))

    def __repr__(self) -> str:
        if self.is_zero():
            return "0"
        parts = []
        for monomial, coefficient in sorted(
            self._terms.items(),
            key=lambda item: (-sum(e for _v, e in item[0]), repr(item[0])),
        ):
            factors = "*".join(
                variable.name if exponent == 1 else f"{variable.name}^{exponent}"
                for variable, exponent in monomial
            )
            if not factors:
                parts.append(str(coefficient))
            elif coefficient == 1:
                parts.append(factors)
            elif coefficient == -1:
                parts.append(f"-{factors}")
            else:
                parts.append(f"{coefficient}*{factors}")
        return " + ".join(parts).replace("+ -", "- ")


def _multiply_monomials(a: Monomial, b: Monomial) -> Monomial:
    exponents: Dict[Variable, int] = {}
    for variable, exponent in a:
        exponents[variable] = exponents.get(variable, 0) + exponent
    for variable, exponent in b:
        exponents[variable] = exponents.get(variable, 0) + exponent
    return _sorted_monomial(exponents.items())


def expr_to_polynomial(expr: Expr) -> Optional[Polynomial]:
    """Convert a symbolic expression to a polynomial over its entry
    variables, or None when it is not (faithfully) polynomial.

    Division converts only when the divisor is a constant that divides
    every numerator coefficient exactly, so FORTRAN truncation cannot
    diverge from polynomial evaluation. Unknown leaves, comparisons, MOD,
    MIN/MAX, and ABS are not polynomial.
    """
    if isinstance(expr, ConstExpr):
        return Polynomial.constant(expr.value)
    if isinstance(expr, EntryExpr):
        return Polynomial.variable(expr.var)
    if isinstance(expr, UnknownExpr):
        return None
    if isinstance(expr, OpExpr):
        if expr.op == "neg":
            inner = expr_to_polynomial(expr.args[0])
            return None if inner is None else -inner
        if expr.op in ("+", "-", "*"):
            left = expr_to_polynomial(expr.args[0])
            right = expr_to_polynomial(expr.args[1])
            if left is None or right is None:
                return None
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            return left * right
        if expr.op == "/":
            left = expr_to_polynomial(expr.args[0])
            right = expr_to_polynomial(expr.args[1])
            if left is None or right is None:
                return None
            divisor = right.constant_value()
            if divisor is None:
                return None
            return left.exact_divide(divisor)
    return None
