"""Multivariate integer polynomials used by the polynomial parameter jump
function and the return jump functions."""

from repro.poly.polynomial import Polynomial, expr_to_polynomial

__all__ = ["Polynomial", "expr_to_polynomial"]
