"""The MiniFortran linker: many files -> one whole-program module.

Linking happens on the AST, before lowering: each file is parsed
(resiliently — parse errors degrade units to conservative stubs exactly
as in single-file analysis), a program-level symbol table is built over
every unit of every file, deterministic link diagnostics (``E_LINK``)
are reported for undefined or duplicate symbols and COMMON shape
mismatches, and the surviving units are merged in file order into one
:class:`~repro.frontend.ast.Module`. The merged module then flows
through the unchanged pipeline — one call graph, one SCC condensation,
one IPCP solve — so a constant born in ``a.f`` propagates into a call
site in ``b.f`` precisely as if the two files had been concatenated.

The linked program carries no single source file (``Program.source`` is
None): substitution is still *measured*, but ``--transform`` style
source rewriting is a per-file operation and stays out of scope.
"""

from __future__ import annotations

import hashlib
import os
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import AnalysisConfig
from repro.diagnostics import E_IO, E_LINK, E_SEMANTIC, W_LINK, DiagnosticEngine
from repro.frontend import ast
from repro.frontend.errors import SemanticError
from repro.frontend.parser import parse_source
from repro.frontend.source import SourceLocation

#: Canonical filename attached to the merged module.
LINKED_FILENAME = "<linked>"


@dataclass(frozen=True)
class LinkUnit:
    """One entry of the program-level symbol table: a unit name bound
    to its defining file."""

    name: str
    kind: ast.ProcedureKind
    filename: str
    location: SourceLocation

    def describe(self) -> str:
        return f"{self.kind.value} {self.name} ({self.location})"


@dataclass
class LinkResult:
    """Everything one link produced.

    ``module`` is None when linking failed (any ``E_LINK``/``E_IO``
    diagnostic); per-file *parse* errors alone do not fail the link —
    the affected units are analyzed as conservative stubs, matching
    single-file resilient analysis.
    """

    module: Optional[ast.Module]
    units: List[LinkUnit] = field(default_factory=list)
    #: COMMON block name -> (defining file of the first declaration,
    #: member names in declaration order).
    commons: Dict[str, Tuple[str, List[str]]] = field(default_factory=dict)
    diagnostics: DiagnosticEngine = field(default_factory=DiagnosticEngine)
    entry: Optional[str] = None
    files: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.module is not None

    def format_symbol_table(self) -> str:
        """Deterministic render of the program-level symbol table."""
        lines = []
        for unit in sorted(self.units, key=lambda u: u.name):
            lines.append(
                f"unit    {unit.name:<12} {unit.kind.value:<11} "
                f"{unit.filename}"
            )
        for block in sorted(self.commons):
            filename, members = self.commons[block]
            lines.append(
                f"common  /{block}/ {filename} ({', '.join(members)})"
            )
        return "\n".join(lines) if lines else "(empty program)"


# -- reference scanning ------------------------------------------------------


def _statement_expressions(stmt: ast.Stmt):
    """Yield the top-level expressions of one statement."""
    if isinstance(stmt, ast.Assign):
        yield stmt.target
        yield stmt.value
    elif isinstance(stmt, ast.CallStmt):
        yield from stmt.args
    elif isinstance(stmt, ast.IfStmt):
        yield stmt.cond
        for cond, _ in stmt.elifs:
            yield cond
    elif isinstance(stmt, ast.DoStmt):
        yield stmt.start
        yield stmt.stop
        if stmt.step is not None:
            yield stmt.step
    elif isinstance(stmt, ast.DoWhileStmt):
        yield stmt.cond
    elif isinstance(stmt, ast.ReadStmt):
        yield from stmt.targets
    elif isinstance(stmt, ast.PrintStmt):
        for item in stmt.items:
            if not isinstance(item, str):
                yield item


def _unit_references(unit: ast.ProcedureUnit):
    """Yield ``(name, location, is_call)`` for every procedure
    reference in ``unit``'s body (CALL statements and function-call
    expressions). Stub units have no surviving body and yield nothing.
    """
    for stmt in ast.walk_statements(unit.body):
        if isinstance(stmt, ast.CallStmt):
            yield stmt.name, stmt.location, True
        for top in _statement_expressions(stmt):
            if top is None:
                continue
            for expr in ast.walk_expressions(top):
                if isinstance(expr, ast.FunctionCall):
                    yield expr.name, expr.location, False


def _unit_externals(unit: ast.ProcedureUnit):
    """``(name, location)`` for every EXTERNAL declaration in ``unit``."""
    for decl in unit.decls:
        if isinstance(decl, ast.ExternalDecl):
            for name in decl.names:
                yield name, decl.location


# -- the linker --------------------------------------------------------------


def link_sources(
    named: Sequence[Tuple[str, str]],
    entry: Optional[str] = None,
    diagnostics: Optional[DiagnosticEngine] = None,
) -> LinkResult:
    """Link ``named`` — a sequence of ``(filename, text)`` pairs — into
    one whole-program module.

    Deterministic: diagnostics are reported in file order, then unit
    order, so two runs over the same inputs render identically.
    """
    diag = diagnostics if diagnostics is not None else DiagnosticEngine()
    entry = entry.lower() if entry else None
    result = LinkResult(
        module=None,
        diagnostics=diag,
        entry=entry,
        files=[name for name, _ in named],
    )
    if not named:
        diag.error(E_LINK, "nothing to link: no input files")
        return result

    modules: List[Tuple[str, ast.Module]] = []
    for filename, text in named:
        modules.append((filename, parse_source(text, filename, diag)))

    # 1. Program-level symbol table + duplicate detection.
    by_name: Dict[str, List[LinkUnit]] = {}
    for filename, module in modules:
        for unit in module.units:
            link_unit = LinkUnit(unit.name, unit.kind, filename, unit.location)
            result.units.append(link_unit)
            by_name.setdefault(unit.name, []).append(link_unit)
    link_ok = True
    for name, bound in by_name.items():
        if len(bound) > 1:
            where = ", ".join(u.describe() for u in bound)
            diag.error(
                E_LINK,
                f"duplicate definition of {name!r}: {where}",
                bound[1].location,
            )
            link_ok = False

    # 2. Entry selection.
    programs = [u for u in result.units if u.kind is ast.ProcedureKind.PROGRAM]
    selected: Optional[str] = None
    if entry is not None:
        matches = [u for u in result.units if u.name == entry]
        if not matches:
            diag.error(E_LINK, f"entry point {entry!r} is not defined by any file")
            link_ok = False
        elif matches[0].kind is not ast.ProcedureKind.PROGRAM:
            diag.error(
                E_LINK,
                f"entry point {entry!r} is a {matches[0].kind.value}, "
                f"not a PROGRAM unit",
                matches[0].location,
            )
            link_ok = False
        else:
            selected = entry
    elif len(programs) > 1:
        where = ", ".join(u.describe() for u in programs)
        diag.error(
            E_LINK,
            f"multiple PROGRAM units ({where}); select one with --entry",
            programs[1].location,
        )
        link_ok = False
    elif not programs:
        diag.error(E_LINK, "linked program has no PROGRAM unit")
        link_ok = False
    else:
        selected = programs[0].name

    result.entry = selected
    dropped: set = set()
    if selected is not None:
        for unit in programs:
            if unit.name != selected:
                dropped.add(unit.name)
                diag.warning(
                    W_LINK,
                    f"PROGRAM unit {unit.name!r} dropped "
                    f"(entry point is {selected!r})",
                    unit.location,
                )

    defined = set(by_name) - dropped

    # 3. Undefined symbols: EXTERNAL declarations that resolve to no
    # unit, and call references to names no linked file defines.
    from repro.ir.lowering import _INTRINSICS

    for filename, module in modules:
        for unit in module.units:
            if unit.name in dropped:
                continue
            externals = set()
            for name, location in _unit_externals(unit):
                externals.add(name)
                if name not in defined:
                    diag.error(
                        E_LINK,
                        f"EXTERNAL {name!r} (declared in {unit.name}) is "
                        f"not defined by any linked file",
                        location,
                    )
                    link_ok = False
            if unit.is_stub:
                continue
            reported: set = set()
            for name, location, is_call in _unit_references(unit):
                if name in defined or name in reported or name in externals:
                    continue
                if not is_call and name in _INTRINSICS:
                    continue
                reported.add(name)
                diag.error(
                    E_LINK,
                    f"undefined symbol {name!r} referenced from {unit.name}",
                    location,
                )
                link_ok = False

    # 4. Cross-file COMMON consistency: the first declaration (file
    # order, unit order) fixes a block's member names; later
    # declarations must list the same names, and two array
    # declarations of one member must agree on shape.
    shapes: Dict[str, Dict[str, Tuple[int, ...]]] = {}
    for filename, module in modules:
        for unit in module.units:
            if unit.name in dropped:
                continue
            for decl in unit.decls:
                if not isinstance(decl, ast.CommonDecl):
                    continue
                names = [item.name for item in decl.items]
                if decl.block not in result.commons:
                    result.commons[decl.block] = (filename, names)
                    shapes[decl.block] = {
                        item.name: tuple(item.dims)
                        for item in decl.items
                        if item.is_array
                    }
                    continue
                first_file, first_names = result.commons[decl.block]
                if names != first_names:
                    diag.error(
                        E_LINK,
                        f"COMMON /{decl.block}/ in {unit.name} declares "
                        f"members ({', '.join(names)}) but its first "
                        f"declaration in {first_file} has "
                        f"({', '.join(first_names)})",
                        decl.location,
                    )
                    link_ok = False
                    continue
                block_shapes = shapes[decl.block]
                for item in decl.items:
                    if not item.is_array:
                        continue
                    dims = tuple(item.dims)
                    if item.name in block_shapes and block_shapes[item.name] != dims:
                        diag.error(
                            E_LINK,
                            f"COMMON /{decl.block}/ member {item.name!r} "
                            f"declared with shape {dims} in {unit.name} "
                            f"but shape {block_shapes[item.name]} in "
                            f"{first_file}",
                            decl.location,
                        )
                        link_ok = False
                    block_shapes.setdefault(item.name, dims)

    if not link_ok:
        return result

    # 5. Merge, in (file, unit) order, minus dropped PROGRAM units.
    merged: List[ast.ProcedureUnit] = []
    for filename, module in modules:
        for unit in module.units:
            if unit.name not in dropped:
                merged.append(unit)
    if not merged:
        diag.error(E_LINK, "nothing to link: no units survived")
        return result
    result.module = ast.Module(merged, LINKED_FILENAME)
    return result


def link_files(
    paths: Sequence[str],
    entry: Optional[str] = None,
    diagnostics: Optional[DiagnosticEngine] = None,
) -> LinkResult:
    """Read and link the files at ``paths``. An unreadable file is an
    ``E_IO`` diagnostic and fails the link (an incomplete symbol table
    cannot be resolved honestly)."""
    diag = diagnostics if diagnostics is not None else DiagnosticEngine()
    named: List[Tuple[str, str]] = []
    io_failed = False
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                named.append((path, handle.read()))
        except (OSError, UnicodeDecodeError) as err:
            from repro.ipcp.driver import _located_io_error

            located = _located_io_error(path, err)
            diag.error(E_IO, located.message, located.location)
            io_failed = True
    if io_failed:
        return LinkResult(
            module=None,
            diagnostics=diag,
            entry=entry.lower() if entry else None,
            files=list(paths),
        )
    return link_sources(named, entry=entry, diagnostics=diag)


# -- linked analysis ---------------------------------------------------------


def analyze_linked_sources(
    named: Sequence[Tuple[str, str]],
    config: Optional[AnalysisConfig] = None,
    entry: Optional[str] = None,
    diagnostics: Optional[DiagnosticEngine] = None,
    engine=None,
):
    """Link ``(filename, text)`` pairs and analyze the whole program.

    Returns ``(result, link)`` where ``result`` is None when linking or
    semantic lowering failed (the diagnostics on ``link.diagnostics``
    say why). Mirrors :func:`repro.ipcp.driver.analyze_source_resilient`.
    """
    from repro.ipcp.driver import analyze_program

    link = link_sources(named, entry=entry, diagnostics=diagnostics)
    if link.module is None:
        return None, link
    from repro.ir.lowering import lower_module

    try:
        program = lower_module(link.module, None)
    except SemanticError as err:
        link.diagnostics.error(E_SEMANTIC, err.message, err.location)
        return None, link
    result = analyze_program(program, config, engine=engine)
    result.diagnostics = link.diagnostics
    return result, link


def analyze_linked_files(
    paths: Sequence[str],
    config: Optional[AnalysisConfig] = None,
    entry: Optional[str] = None,
    diagnostics: Optional[DiagnosticEngine] = None,
    engine=None,
):
    """File-path variant of :func:`analyze_linked_sources`."""
    from repro.ipcp.driver import analyze_program

    link = link_files(paths, entry=entry, diagnostics=diagnostics)
    if link.module is None:
        return None, link
    from repro.ir.lowering import lower_module

    try:
        program = lower_module(link.module, None)
    except SemanticError as err:
        link.diagnostics.error(E_SEMANTIC, err.message, err.location)
        return None, link
    result = analyze_program(program, config, engine=engine)
    result.diagnostics = link.diagnostics
    return result, link


# -- project identity (caching / incremental) --------------------------------


def project_bundle_text(
    named: Sequence[Tuple[str, str]], entry: Optional[str] = None
) -> str:
    """Canonical text standing for a linked project in the run cache.

    ``repro.engine.fingerprint.run_key`` hashes one text; a project is
    many. This join is injective (NUL/SOH separators cannot appear in
    MiniFortran source) and includes the entry selection, so two
    projects share a run-cache entry iff they link identically.
    """
    parts = [f"\x00repro-link\x00{entry or ''}"]
    for name, text in named:
        parts.append(f"{name}\x01{text}")
    return "\x00".join(parts)


def project_label(paths: Sequence[str], entry: Optional[str] = None) -> str:
    """Stable synthetic path naming a linked project in the incremental
    manifest namespace. Rooted at ``/`` so
    :func:`repro.engine.incremental.manifest_key`'s ``abspath`` cannot
    make it depend on the working directory."""
    digest = hashlib.sha256(
        "\x00".join([entry or ""] + [os.path.abspath(p) for p in paths]).encode()
    ).hexdigest()
    return f"/repro-linked/{digest[:24]}"


# -- cheap duplicate scan (per-file batch advisory) --------------------------

_UNIT_HEADER = re.compile(
    r"^\s{0,10}(?:PROGRAM|SUBROUTINE|INTEGER\s+FUNCTION|BLOCK\s*DATA)"
    r"\s+([A-Za-z][A-Za-z0-9_]*)",
    re.IGNORECASE | re.MULTILINE,
)


def scan_unit_names(text: str) -> List[str]:
    """Cheap lexical scan of the top-level unit names in ``text``
    (lower-cased, in order). Used by per-file batch mode to warn about
    duplicate names across files without paying for a second parse."""
    return [match.group(1).lower() for match in _UNIT_HEADER.finditer(text)]


def duplicate_units_across_files(paths: Sequence[str]) -> Dict[str, List[str]]:
    """Unit names defined by more than one of ``paths``, mapped to the
    defining files (in input order). Per-file batch mode uses this to
    diagnose the silent-collision hazard deterministically; unreadable
    files are skipped here (the batch itself reports their I/O errors).
    """
    seen: Dict[str, List[str]] = {}
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except (OSError, UnicodeDecodeError):
            continue
        for name in scan_unit_names(text):
            files = seen.setdefault(name, [])
            if path not in files:
                files.append(path)
    return {
        name: files for name, files in sorted(seen.items()) if len(files) > 1
    }
