"""Whole-program linkage: resolve many MiniFortran files into one program.

`repro batch` treats N files as N independent closed programs; the
paper's real subject (SPEC/PERFECT codes) is *one* program spread over
many Fortran files. This package is the linker for that world: it
parses each file, builds a program-level symbol table binding every
unresolved call and every named COMMON block to its defining unit
across files, reports deterministic diagnostics for undefined or
duplicate symbols and COMMON shape mismatches, and merges the units
into a single module so the call graph, jump/return functions, the
IPCP solver, provenance, and the summary/run caches all operate on the
linked program.
"""

from repro.linkage.linker import (
    LinkResult,
    LinkUnit,
    analyze_linked_files,
    analyze_linked_sources,
    duplicate_units_across_files,
    link_files,
    link_sources,
    project_bundle_text,
    project_label,
    scan_unit_names,
)

__all__ = [
    "LinkResult",
    "LinkUnit",
    "analyze_linked_files",
    "analyze_linked_sources",
    "duplicate_units_across_files",
    "link_files",
    "link_sources",
    "project_bundle_text",
    "project_label",
    "scan_unit_names",
]
