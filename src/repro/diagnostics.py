"""Structured diagnostics for the whole analysis pipeline.

The frontend used to raise on the first :class:`~repro.frontend.errors.
FrontendError` it met, which meant one malformed procedure hid every
other problem in a file and aborted whole-suite batch runs. A
:class:`DiagnosticEngine` decouples *detecting* a problem from
*aborting on it*: the lexer and parser report recoverable errors here
and synchronize, the driver records I/O and lowering failures here, and
the CLI renders the collected list with source locations at the end of
the run.

Severities follow the usual compiler convention (note < warning <
error); every diagnostic carries a stable machine-readable code from
the ``E_*``/``W_*`` constants below so tools (and tests) can filter
without string-matching messages. The engine caps how many errors it
*stores* (``max_errors``) — a pathological input producing thousands of
cascade errors keeps the first ``max_errors`` and counts the rest —
but never raises: recovery decisions belong to the parser, not here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.frontend.source import SourceLocation

# -- stable diagnostic codes ------------------------------------------------

#: Lexical error (bad character, unterminated string).
E_LEX = "E001"
#: Syntax error recovered by the parser.
E_PARSE = "E002"
#: Semantic error detected during lowering.
E_SEMANTIC = "E003"
#: File could not be read (missing, unreadable, not UTF-8 text).
E_IO = "E004"
#: Whole-program linkage failed (undefined/duplicate symbol across
#: files, COMMON shape mismatch, bad entry selection).
E_LINK = "E005"
#: A whole program unit was dropped or stubbed during recovery.
W_UNIT_DEGRADED = "W001"
#: An analysis component was demoted after a fault or budget overrun.
W_DEMOTION = "W002"
#: Linkage advisory (e.g. a non-entry PROGRAM unit dropped by --entry,
#: or duplicate unit names isolated in per-file batch mode).
W_LINK = "W003"


class Severity(enum.IntEnum):
    """Diagnostic severity; comparable (ERROR > WARNING > NOTE)."""

    NOTE = 0
    WARNING = 1
    ERROR = 2

    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One reported problem: severity + stable code + message + where."""

    severity: Severity
    code: str
    message: str
    location: Optional[SourceLocation] = None

    def render(self) -> str:
        prefix = f"{self.location}: " if self.location is not None else ""
        return f"{prefix}{self.severity.label()}[{self.code}]: {self.message}"


class DiagnosticEngine:
    """Collects :class:`Diagnostic` records for one frontend/analysis run.

    ``max_errors`` caps how many *error*-severity records are stored;
    overflow errors are counted (``suppressed_errors``) so the summary
    stays honest without unbounded memory on adversarial inputs.
    """

    def __init__(self, max_errors: int = 50):
        self.max_errors = max_errors
        self.diagnostics: List[Diagnostic] = []
        self.suppressed_errors = 0

    # -- reporting ---------------------------------------------------------

    def report(self, diagnostic: Diagnostic) -> None:
        if (
            diagnostic.severity is Severity.ERROR
            and self.error_count >= self.max_errors
        ):
            self.suppressed_errors += 1
            return
        self.diagnostics.append(diagnostic)

    def error(
        self, code: str, message: str, location: Optional[SourceLocation] = None
    ) -> None:
        self.report(Diagnostic(Severity.ERROR, code, message, location))

    def warning(
        self, code: str, message: str, location: Optional[SourceLocation] = None
    ) -> None:
        self.report(Diagnostic(Severity.WARNING, code, message, location))

    def note(
        self, code: str, message: str, location: Optional[SourceLocation] = None
    ) -> None:
        self.report(Diagnostic(Severity.NOTE, code, message, location))

    # -- queries -----------------------------------------------------------

    @property
    def error_count(self) -> int:
        return sum(
            1 for d in self.diagnostics if d.severity is Severity.ERROR
        ) + self.suppressed_errors

    @property
    def has_errors(self) -> bool:
        return self.error_count > 0

    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def format(self) -> str:
        """Render every stored diagnostic, one per line, plus a
        suppression footer when the cap was hit."""
        lines = [d.render() for d in self.diagnostics]
        if self.suppressed_errors:
            lines.append(
                f"... {self.suppressed_errors} further error(s) suppressed "
                f"(max-errors cap is {self.max_errors})"
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def __bool__(self) -> bool:
        # An engine is truthy as a container, even when empty; use
        # ``has_errors`` / ``len`` for content queries. Defined
        # explicitly so ``engine or default`` never silently replaces a
        # caller-provided engine.
        return True
