"""MOD/REF summary and call-effect annotation tests."""

from repro.callgraph.callgraph import build_call_graph
from repro.ir.instructions import Return
from repro.summary.modref import annotate_call_effects, compute_modref

from tests.conftest import lower

PROGRAM = (
    "      PROGRAM MAIN\n      COMMON /B/ G1, G2\n      N = 1\n"
    "      CALL OUTER(N)\n      END\n"
    "      SUBROUTINE OUTER(X)\n      COMMON /B/ G1, G2\n"
    "      CALL SETG(X)\n      END\n"
    "      SUBROUTINE SETG(Y)\n      COMMON /B/ G1, G2\n"
    "      G1 = Y\n      Y = 0\n      Z = G2\n      END\n"
)


def analyzed(text=PROGRAM):
    program = lower(text)
    graph = build_call_graph(program)
    return program, graph, compute_modref(program, graph)


def names(variables):
    return {v.name for v in variables}


class TestDirectEffects:
    def test_direct_mod(self):
        program, _, info = analyzed()
        setg = program.procedure("setg")
        mod = info.mod["setg"]
        assert "g1" in names(mod)
        assert "y" in names(mod)

    def test_direct_ref(self):
        _, _, info = analyzed()
        ref = info.ref["setg"]
        assert "g2" in names(ref)
        assert "y" in names(ref)

    def test_unmodified_global_not_in_mod(self):
        _, _, info = analyzed()
        assert "g2" not in names(info.mod["setg"])


class TestPropagation:
    def test_global_mod_propagates_up(self):
        _, _, info = analyzed()
        assert "g1" in names(info.mod["outer"])
        assert "g1" in names(info.mod["main"])

    def test_formal_mod_binds_through_actual(self):
        _, _, info = analyzed()
        # SETG modifies Y; OUTER passes X: so OUTER may modify X.
        assert "x" in names(info.mod["outer"])
        # MAIN passes N to OUTER: N may be modified.
        assert "n" in names(info.mod["main"])

    def test_ref_propagates(self):
        _, _, info = analyzed()
        assert "g2" in names(info.ref["outer"])

    def test_recursion_converges(self):
        _, _, info = analyzed(
            "      PROGRAM MAIN\n      COMMON /B/ G\n      CALL R(3)\n"
            "      END\n"
            "      SUBROUTINE R(N)\n      COMMON /B/ G\n"
            "      IF (N .GT. 0) THEN\n      G = N\n      CALL R(N - 1)\n"
            "      ENDIF\n      END\n"
        )
        assert "g" in names(info.mod["r"])
        assert "g" in names(info.mod["main"])

    def test_expression_actual_does_not_bind(self):
        # T passes J+0 (a temporary) to S, which modifies its formal:
        # the modification cannot reach J through the expression actual.
        _, _, info = analyzed(
            "      PROGRAM MAIN\n      N = 1\n      CALL T(N)\n      END\n"
            "      SUBROUTINE T(J)\n      CALL S(J + 0)\n      END\n"
            "      SUBROUTINE S(K)\n      K = 2\n      END\n"
        )
        assert "j" not in names(info.mod["t"])

    def test_array_actual_binds(self):
        _, _, info = analyzed(
            "      PROGRAM MAIN\n      INTEGER A(5)\n      CALL S(A)\n"
            "      END\n"
            "      SUBROUTINE S(B)\n      INTEGER B(5)\n      B(1) = 2\n"
            "      END\n"
        )
        assert "a" in names(info.mod["main"])

    def test_helpers(self):
        program, _, info = analyzed()
        setg = program.procedure("setg")
        assert info.may_modify("setg", setg.formals[0])
        modified = info.modified_formals(setg)
        assert names(modified) == {"y"}


class TestAnnotation:
    def test_with_mod_filters_kills(self):
        program, graph, info = analyzed()
        annotate_call_effects(program, graph, info)
        outer_call = program.procedure("outer").call_sites()[0]
        defined = names(d.var for d in outer_call.may_define)
        assert "g1" in defined  # really modified
        assert "g2" not in defined  # never modified
        assert "x" in defined  # bound to modified formal

    def test_worst_case_kills_everything(self):
        program, graph, _ = analyzed()
        annotate_call_effects(program, graph, None)
        outer_call = program.procedure("outer").call_sites()[0]
        defined = names(d.var for d in outer_call.may_define)
        assert {"g1", "g2", "x"} <= defined

    def test_entry_uses_cover_all_globals(self):
        program, graph, info = analyzed()
        annotate_call_effects(program, graph, info)
        for call in program.call_sites():
            assert names(u.var for u in call.entry_uses) == {"g1", "g2"}

    def test_return_exit_uses_cover_formals_and_globals(self):
        program, graph, info = analyzed()
        annotate_call_effects(program, graph, info)
        setg = program.procedure("setg")
        returns = [
            i for i in setg.cfg.instructions() if isinstance(i, Return)
        ]
        assert returns
        assert names(u.var for u in returns[0].exit_uses) == {"y", "g1", "g2"}

    def test_literal_actual_never_killed(self):
        program, graph, info = analyzed(
            "      PROGRAM MAIN\n      CALL S(3)\n      END\n"
            "      SUBROUTINE S(K)\n      K = 2\n      END\n"
        )
        annotate_call_effects(program, graph, info)
        call = program.procedure("main").call_sites()[0]
        assert call.may_define == []
