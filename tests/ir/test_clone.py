"""Procedure cloning (IR deep copy) tests."""

from repro.analysis.ssa import verify_ssa
from repro.config import AnalysisConfig
from repro.ipcp.driver import prepare_program
from repro.ir.clone import clone_procedure
from repro.ir.instructions import Call, Use

from tests.conftest import TRI_PROGRAM, lower


def cloned_foo(ssa=False):
    program = lower(TRI_PROGRAM)
    if ssa:
        prepare_program(program, AnalysisConfig())
    original = program.procedure("foo")
    clone, var_map = clone_procedure(original, "foo2")
    return program, original, clone, var_map


class TestCloneStructure:
    def test_same_block_count(self):
        _, original, clone, _ = cloned_foo()
        assert len(clone.cfg.blocks) == len(original.cfg.blocks)

    def test_same_instruction_counts(self):
        _, original, clone, _ = cloned_foo()
        assert len(list(clone.cfg.instructions())) == len(
            list(original.cfg.instructions())
        )

    def test_blocks_are_fresh_objects(self):
        _, original, clone, _ = cloned_foo()
        assert not set(original.cfg.blocks) & set(clone.cfg.blocks)

    def test_locals_and_formals_remapped(self):
        _, original, clone, var_map = cloned_foo()
        for old, new in var_map.items():
            assert old is not new
            assert old.name == new.name
            assert old.kind is new.kind
        assert clone.formals[0] is not original.formals[0]
        assert clone.formals[0].name == original.formals[0].name

    def test_globals_shared(self):
        _, original, clone, var_map = cloned_foo()
        original_globals = {
            v for v in original.symbols.variables() if v.is_global
        }
        clone_globals = {v for v in clone.symbols.variables() if v.is_global}
        assert original_globals == clone_globals
        assert not any(v.is_global for v in var_map)

    def test_branch_targets_point_into_clone(self):
        _, original, clone, _ = cloned_foo()
        original_blocks = set(original.cfg.blocks)
        for block in clone.cfg.blocks:
            for successor in block.successors():
                assert successor not in original_blocks

    def test_no_shared_operand_objects(self):
        _, original, clone, _ = cloned_foo()
        original_uses = set()
        for instruction in original.cfg.instructions():
            original_uses.update(id(u) for u in instruction.uses())
        for instruction in clone.cfg.instructions():
            for use in instruction.uses():
                assert id(use) not in original_uses


class TestCloneSSA:
    def test_clone_of_ssa_is_valid_ssa(self):
        _, _, clone, _ = cloned_foo(ssa=True)
        assert verify_ssa(clone) == []

    def test_versions_preserved(self):
        _, original, clone, _ = cloned_foo(ssa=True)
        original_versions = sorted(
            (d.var.name, d.version)
            for i in original.cfg.instructions()
            for d in i.defs()
        )
        clone_versions = sorted(
            (d.var.name, d.version)
            for i in clone.cfg.instructions()
            for d in i.defs()
        )
        assert original_versions == clone_versions

    def test_call_side_effect_slots_remapped(self):
        _, original, clone, var_map = cloned_foo(ssa=True)
        original_call = original.call_sites()[0]
        clone_call = clone.call_sites()[0]
        assert clone_call.callee == original_call.callee
        assert len(clone_call.may_define) == len(original_call.may_define)
        for old_def, new_def in zip(
            original_call.may_define, clone_call.may_define
        ):
            expected = var_map.get(old_def.var, old_def.var)
            assert new_def.var is expected
