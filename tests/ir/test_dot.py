"""Graphviz DOT rendering tests."""

from repro.config import AnalysisConfig
from repro.ipcp.driver import analyze_source
from repro.ir.dot import call_graph_to_dot, cfg_to_dot, write_dot_files

from tests.conftest import TRI_PROGRAM


def analyzed():
    return analyze_source(TRI_PROGRAM)


class TestCfgDot:
    def test_blocks_and_edges_present(self):
        result = analyzed()
        dot = cfg_to_dot(result.program.procedure("foo"))
        assert dot.startswith('digraph "foo"')
        assert '"entry"' in dot
        assert "->" in dot
        assert dot.rstrip().endswith("}")

    def test_branch_edges_labeled(self):
        result = analyzed()
        dot = cfg_to_dot(result.program.procedure("foo"))
        assert '[label="T"]' in dot
        assert '[label="F"]' in dot

    def test_instruction_cap(self):
        result = analyzed()
        dot = cfg_to_dot(result.program.procedure("main"), max_instructions=1)
        assert "more)" in dot

    def test_quotes_escaped(self):
        result = analyze_source(
            "      PROGRAM MAIN\n      PRINT *, 'it''s'\n      END\n"
            .replace("''", "x")  # avoid tricky quoting; just a string item
        )
        dot = cfg_to_dot(result.program.procedure("main"))
        assert "digraph" in dot


class TestCallGraphDot:
    def test_nodes_and_edges(self):
        result = analyzed()
        dot = call_graph_to_dot(result.callgraph)
        for name in ("main", "foo", "bar"):
            assert f'"{name}"' in dot
        assert '"main" -> "foo"' in dot
        assert '"foo" -> "bar"' in dot

    def test_constants_annotation(self):
        result = analyzed()
        dot = call_graph_to_dot(result.callgraph, result.constants)
        assert "x=100" in dot

    def test_main_highlighted(self):
        result = analyzed()
        dot = call_graph_to_dot(result.callgraph)
        assert "doubleoctagon" in dot


class TestWriteFiles:
    def test_writes_all_files(self, tmp_path):
        result = analyzed()
        paths = write_dot_files(
            result.program, result.callgraph, str(tmp_path), result.constants
        )
        assert len(paths) == 4  # callgraph + 3 CFGs
        for path in paths:
            content = open(path).read()
            assert content.startswith("digraph")
