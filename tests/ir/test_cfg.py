"""CFG structure tests."""

from repro.ir.cfg import BasicBlock, ControlFlowGraph
from repro.ir.instructions import CondBranch, Const, Def, Halt, Jump, Phi, Use
from repro.ir.symbols import Variable, VarKind


def diamond():
    """entry -> (left|right) -> join."""
    entry = BasicBlock("entry")
    cfg = ControlFlowGraph(entry)
    left = cfg.new_block("left")
    right = cfg.new_block("right")
    join = cfg.new_block("join")
    entry.append(CondBranch(Const(1), left, right))
    left.append(Jump(join))
    right.append(Jump(join))
    join.append(Halt())
    return cfg, entry, left, right, join


class TestSuccessorsPredecessors:
    def test_cond_branch_successors(self):
        cfg, entry, left, right, join = diamond()
        assert entry.successors() == [left, right]

    def test_same_target_branch_deduplicates(self):
        entry = BasicBlock("entry")
        target = BasicBlock("t")
        entry.append(CondBranch(Const(1), target, target))
        assert entry.successors() == [target]

    def test_predecessors(self):
        cfg, entry, left, right, join = diamond()
        preds = cfg.predecessors()
        assert set(preds[join]) == {left, right}
        assert preds[entry] == []

    def test_halt_has_no_successors(self):
        cfg, *_rest, join = diamond()
        assert join.successors() == []


class TestOrders:
    def test_reverse_postorder_starts_at_entry(self):
        cfg, entry, *_ = diamond()
        rpo = cfg.reverse_postorder()
        assert rpo[0] is entry
        assert len(rpo) == 4

    def test_rpo_visits_preds_before_join(self):
        cfg, entry, left, right, join = diamond()
        rpo = cfg.reverse_postorder()
        assert rpo.index(join) > rpo.index(left)
        assert rpo.index(join) > rpo.index(right)

    def test_rpo_handles_loops(self):
        entry = BasicBlock("entry")
        cfg = ControlFlowGraph(entry)
        head = cfg.new_block("head")
        body = cfg.new_block("body")
        exit_block = cfg.new_block("exit")
        entry.append(Jump(head))
        head.append(CondBranch(Const(1), body, exit_block))
        body.append(Jump(head))
        exit_block.append(Halt())
        rpo = cfg.reverse_postorder()
        assert len(rpo) == 4
        assert rpo.index(head) < rpo.index(body)


class TestUnreachableRemoval:
    def test_removes_disconnected_block(self):
        cfg, *_ = diamond()
        dead = cfg.new_block("dead")
        dead.append(Halt())
        removed = cfg.remove_unreachable()
        assert dead in removed
        assert dead not in cfg.blocks

    def test_prunes_phi_inputs_of_removed_preds(self):
        cfg, entry, left, right, join = diamond()
        var = Variable("x", VarKind.LOCAL)
        dead = cfg.new_block("dead")
        dead.append(Jump(join))
        phi = Phi(Def(var), {left: Const(1), right: Const(2), dead: Const(3)})
        join.insert_phi(phi)
        cfg.remove_unreachable()
        assert set(phi.incoming) == {left, right}

    def test_noop_when_all_reachable(self):
        cfg, *_ = diamond()
        assert cfg.remove_unreachable() == []


class TestBlockBasics:
    def test_terminator_detection(self):
        block = BasicBlock()
        assert block.terminator is None
        block.append(Halt())
        assert isinstance(block.terminator, Halt)

    def test_phis_are_prefix(self):
        block = BasicBlock()
        var = Variable("x", VarKind.LOCAL)
        block.append(Halt())
        block.insert_phi(Phi(Def(var), {}))
        assert len(block.phis()) == 1
        assert len(block.non_phi_instructions()) == 1

    def test_block_identity_hash(self):
        a, b = BasicBlock("same"), BasicBlock("same")
        assert a != b
        assert len({a, b}) == 2
